//! The `brokerd` wire protocol: a compact, dependency-free,
//! length-prefixed binary framing over TCP.
//!
//! Every frame is `[len: u32 LE][opcode: u8][payload]`, where `len`
//! counts the opcode plus payload and is capped at [`MAX_FRAME`].
//! Requests: `HELLO` (0x01), `QUERY` (0x02), `BATCH` (0x03), `STATS`
//! (0x04), `SHUTDOWN` (0x05). Responses: `HELLO_OK` (0x81), `ANSWER`
//! (0x82), `BATCH_ANSWERS` (0x83), `STATS` (0x84), `BYE` (0x85) and
//! `ERROR` (0xEE). See `DESIGN.md` §10 for the field-level table.
//!
//! Malformed input never panics the server: truncated prefixes,
//! oversize declarations, unknown opcodes and short payloads all turn
//! into a best-effort [`Response::Error`] reply (the connection closes
//! afterwards when the stream can no longer be resynchronized).
//!
//! This module is the only place in the repository allowed to name the
//! raw socket types (`TcpListener`/`TcpStream`; lint rule R14): the
//! binaries drive [`Listener`] and [`Conn`] instead, so every byte on
//! the wire goes through the codec below. Connection fan-out (threads)
//! stays in the binaries — batch evaluation inside a connection runs on
//! the persistent [`netgraph::par`] worker pool.

use brokerset::{ReachIndex, StitchAnswer};
use netgraph::NodeId;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Hard cap on a frame's declared length (opcode + payload), 1 MiB.
pub const MAX_FRAME: u32 = 1 << 20;

/// Per-entry wire size of a query: `s u32, t u32, l u16`.
const QUERY_BYTES: usize = 10;
/// Per-entry wire size of an answer: `flag u8, broker u32, hops u32 ×2`.
const ANSWER_BYTES: usize = 13;

/// Frame- and payload-level decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The payload ended before the declared contents.
    Truncated,
    /// The frame declared more than [`MAX_FRAME`] bytes.
    Oversize(u32),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// A structural invariant of the payload failed.
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::Oversize(len) => write!(f, "frame declares {len} bytes > {MAX_FRAME}"),
            FrameError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            FrameError::Malformed(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Error codes carried by [`Response::Error`].
pub mod errcode {
    /// The frame declared more than [`super::MAX_FRAME`] bytes.
    pub const OVERSIZE: u8 = 1;
    /// The frame or payload ended early.
    pub const TRUNCATED: u8 = 2;
    /// Unknown opcode.
    pub const BAD_OPCODE: u8 = 3;
    /// Structurally invalid payload.
    pub const MALFORMED: u8 = 4;
}

/// A client→server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake; the server answers with index dimensions.
    Hello,
    /// One stitch query `(s, t, l)`.
    Query {
        /// Source vertex id.
        s: u32,
        /// Destination vertex id.
        t: u32,
        /// Hop bound.
        l: u16,
    },
    /// Many stitch queries answered in one frame, evaluated on the
    /// worker pool.
    Batch(Vec<(u32, u32, u16)>),
    /// Ask for the serving counters.
    Stats,
    /// Ask the server to stop accepting connections.
    Shutdown,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake reply: the served index's shape.
    HelloOk {
        /// Vertices covered by the index.
        n: u32,
        /// Broker roster size.
        k: u32,
        /// Fault epoch the index reflects.
        epoch: u32,
        /// Hop cap of the index.
        max_l: u8,
    },
    /// Answer to a single [`Request::Query`].
    Answer(Option<StitchAnswer>),
    /// Answers to a [`Request::Batch`], in request order.
    BatchAnswers(Vec<Option<StitchAnswer>>),
    /// Serving counters snapshot.
    Stats(ServeStats),
    /// Acknowledges a [`Request::Shutdown`].
    Bye,
    /// The request could not be honored; the connection may close.
    Error {
        /// One of the [`errcode`] constants.
        code: u8,
        /// Human-readable description.
        message: String,
    },
}

/// A snapshot of the serving counters, as carried by
/// [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Single queries plus batch entries evaluated.
    pub queries_served: u64,
    /// Queries answered `Some` (a stitch exists within the bound).
    pub hits: u64,
    /// Batch frames evaluated.
    pub batches: u64,
    /// Cumulative shards invalidated on the served index.
    pub shards_invalidated: u64,
    /// Fault epoch of the served index.
    pub epoch: u32,
}

/// Shared serving counters (one per server, across all connections).
#[derive(Debug, Default)]
pub struct ServeCounters {
    queries: AtomicU64,
    hits: AtomicU64,
    batches: AtomicU64,
}

impl ServeCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the counters against the index being served.
    pub fn snapshot(&self, index: &ReachIndex) -> ServeStats {
        ServeStats {
            queries_served: self.queries.load(Ordering::SeqCst),
            hits: self.hits.load(Ordering::SeqCst),
            batches: self.batches.load(Ordering::SeqCst),
            shards_invalidated: index.shards_invalidated(),
            epoch: index.epoch(),
        }
    }

    fn record(&self, answered: usize, hits: usize, batch: bool) {
        self.queries.fetch_add(answered as u64, Ordering::SeqCst);
        self.hits.fetch_add(hits as u64, Ordering::SeqCst);
        if batch {
            self.batches.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl netgraph::Validate for ServeCounters {
    /// Monotone-counter sanity: hits can never exceed queries served
    /// (every hit is a served query), and all counters stay within u64
    /// by construction.
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("proto::ServeCounters");
        let queries = self.queries.load(Ordering::SeqCst);
        let hits = self.hits.load(Ordering::SeqCst);
        rep.check("proto.hits-bounded", hits <= queries, || {
            format!("{hits} hits recorded against {queries} served queries")
        });
        rep
    }
}

fn put_answer(buf: &mut Vec<u8>, ans: Option<StitchAnswer>) {
    match ans {
        Some(a) => {
            buf.push(1);
            buf.extend_from_slice(&a.broker.0.to_le_bytes());
            buf.extend_from_slice(&a.hops_s.to_le_bytes());
            buf.extend_from_slice(&a.hops_t.to_le_bytes());
        }
        None => buf.extend_from_slice(&[0u8; ANSWER_BYTES]),
    }
}

/// Encode a request into a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::new();
    match req {
        Request::Hello => body.push(0x01),
        Request::Query { s, t, l } => {
            body.push(0x02);
            body.extend_from_slice(&s.to_le_bytes());
            body.extend_from_slice(&t.to_le_bytes());
            body.extend_from_slice(&l.to_le_bytes());
        }
        Request::Batch(entries) => {
            body.push(0x03);
            body.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for &(s, t, l) in entries {
                body.extend_from_slice(&s.to_le_bytes());
                body.extend_from_slice(&t.to_le_bytes());
                body.extend_from_slice(&l.to_le_bytes());
            }
        }
        Request::Stats => body.push(0x04),
        Request::Shutdown => body.push(0x05),
    }
    frame(body)
}

/// Encode a response into a complete frame (length prefix included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::new();
    match resp {
        Response::HelloOk { n, k, epoch, max_l } => {
            body.push(0x81);
            body.extend_from_slice(&n.to_le_bytes());
            body.extend_from_slice(&k.to_le_bytes());
            body.extend_from_slice(&epoch.to_le_bytes());
            body.push(*max_l);
        }
        Response::Answer(ans) => {
            body.push(0x82);
            put_answer(&mut body, *ans);
        }
        Response::BatchAnswers(answers) => {
            body.push(0x83);
            body.extend_from_slice(&(answers.len() as u32).to_le_bytes());
            for &a in answers {
                put_answer(&mut body, a);
            }
        }
        Response::Stats(s) => {
            body.push(0x84);
            body.extend_from_slice(&s.queries_served.to_le_bytes());
            body.extend_from_slice(&s.hits.to_le_bytes());
            body.extend_from_slice(&s.batches.to_le_bytes());
            body.extend_from_slice(&s.shards_invalidated.to_le_bytes());
            body.extend_from_slice(&s.epoch.to_le_bytes());
        }
        Response::Bye => body.push(0x85),
        Response::Error { code, message } => {
            body.push(0xEE);
            body.push(*code);
            let msg = message.as_bytes();
            let len = msg.len().min(u16::MAX as usize);
            body.extend_from_slice(&(len as u16).to_le_bytes());
            body.extend_from_slice(&msg[..len]);
        }
    }
    frame(body)
}

fn frame(body: Vec<u8>) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME as usize);
    let mut out = Vec::with_capacity(4 + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend(body);
    out
}

/// Little-endian checked reader over a frame body.
struct Rd<'a>(&'a [u8]);

impl Rd<'_> {
    fn u8(&mut self) -> Result<u8, FrameError> {
        let (&b, rest) = self.0.split_first().ok_or(FrameError::Truncated)?;
        self.0 = rest;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.chunk::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.chunk::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.chunk::<8>()?))
    }

    fn chunk<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        if self.0.len() < N {
            return Err(FrameError::Truncated);
        }
        let mut word = [0u8; N];
        word.copy_from_slice(&self.0[..N]);
        self.0 = &self.0[N..];
        Ok(word)
    }

    fn done(&self) -> Result<(), FrameError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(FrameError::Malformed("trailing bytes"))
        }
    }
}

fn get_answer(rd: &mut Rd<'_>) -> Result<Option<StitchAnswer>, FrameError> {
    let flag = rd.u8()?;
    let broker = rd.u32()?;
    let hops_s = rd.u32()?;
    let hops_t = rd.u32()?;
    match flag {
        0 => Ok(None),
        1 => Ok(Some(StitchAnswer {
            broker: NodeId(broker),
            hops_s,
            hops_t,
        })),
        _ => Err(FrameError::Malformed("answer flag not 0/1")),
    }
}

/// Decode a request from a frame body (after the length prefix).
///
/// # Errors
///
/// [`FrameError`] on empty bodies, unknown opcodes or short payloads.
pub fn decode_request(body: &[u8]) -> Result<Request, FrameError> {
    let mut rd = Rd(body);
    let op = rd.u8().map_err(|_| FrameError::Malformed("empty frame"))?;
    let req = match op {
        0x01 => Request::Hello,
        0x02 => Request::Query {
            s: rd.u32()?,
            t: rd.u32()?,
            l: rd.u16()?,
        },
        0x03 => {
            let count = rd.u32()? as usize;
            if count * QUERY_BYTES != rd.0.len() {
                return Err(FrameError::Malformed("batch count disagrees with length"));
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                entries.push((rd.u32()?, rd.u32()?, rd.u16()?));
            }
            Request::Batch(entries)
        }
        0x04 => Request::Stats,
        0x05 => Request::Shutdown,
        other => return Err(FrameError::BadOpcode(other)),
    };
    rd.done()?;
    Ok(req)
}

/// Decode a response from a frame body (after the length prefix).
///
/// # Errors
///
/// [`FrameError`] on empty bodies, unknown opcodes or short payloads.
pub fn decode_response(body: &[u8]) -> Result<Response, FrameError> {
    let mut rd = Rd(body);
    let op = rd.u8().map_err(|_| FrameError::Malformed("empty frame"))?;
    let resp = match op {
        0x81 => Response::HelloOk {
            n: rd.u32()?,
            k: rd.u32()?,
            epoch: rd.u32()?,
            max_l: rd.u8()?,
        },
        0x82 => Response::Answer(get_answer(&mut rd)?),
        0x83 => {
            let count = rd.u32()? as usize;
            if count * ANSWER_BYTES != rd.0.len() {
                return Err(FrameError::Malformed("answer count disagrees with length"));
            }
            let mut answers = Vec::with_capacity(count);
            for _ in 0..count {
                answers.push(get_answer(&mut rd)?);
            }
            Response::BatchAnswers(answers)
        }
        0x84 => Response::Stats(ServeStats {
            queries_served: rd.u64()?,
            hits: rd.u64()?,
            batches: rd.u64()?,
            shards_invalidated: rd.u64()?,
            epoch: rd.u32()?,
        }),
        0x85 => Response::Bye,
        0xEE => {
            let code = rd.u8()?;
            let len = rd.u16()? as usize;
            if rd.0.len() != len {
                return Err(FrameError::Malformed("error message length"));
            }
            let message = String::from_utf8_lossy(rd.0).into_owned();
            rd.0 = &[];
            Response::Error { code, message }
        }
        other => return Err(FrameError::BadOpcode(other)),
    };
    rd.done()?;
    Ok(resp)
}

/// One read frame, or the reason there is none.
enum Framed {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream ended inside a prefix or body.
    Truncated,
    /// The prefix declared more than [`MAX_FRAME`] bytes; nothing was
    /// consumed past the prefix (the stream cannot be resynchronized).
    Oversize(u32),
    /// A complete frame body.
    Body(Vec<u8>),
}

fn read_framed(r: &mut impl Read) -> io::Result<Framed> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                return Ok(if got == 0 {
                    Framed::Eof
                } else {
                    Framed::Truncated
                });
            }
            Ok(read) => got += read,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Ok(Framed::Oversize(len));
    }
    let mut body = vec![0u8; len as usize];
    match r.read_exact(&mut body) {
        Ok(()) => Ok(Framed::Body(body)),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(Framed::Truncated),
        Err(e) => Err(e),
    }
}

/// A bound server socket. Wraps the raw listener so binaries never
/// touch socket types directly (lint rule R14).
#[derive(Debug)]
pub struct Listener {
    inner: TcpListener,
}

impl Listener {
    /// Bind to `127.0.0.1:port`; `port = 0` picks an ephemeral port.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(port: u16) -> io::Result<Self> {
        Ok(Listener {
            inner: TcpListener::bind(("127.0.0.1", port))?,
        })
    }

    /// The actually bound port.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures.
    pub fn port(&self) -> io::Result<u16> {
        Ok(self.inner.local_addr()?.port())
    }

    /// Block until a client connects.
    ///
    /// # Errors
    ///
    /// Propagates accept failures.
    pub fn accept(&self) -> io::Result<Conn> {
        let (stream, _) = self.inner.accept()?;
        Ok(Conn { inner: stream })
    }
}

/// One protocol connection (either side). Wraps the raw stream so
/// binaries never touch socket types directly (lint rule R14).
#[derive(Debug)]
pub struct Conn {
    inner: TcpStream,
}

impl Conn {
    /// Connect to a `brokerd` on `127.0.0.1:port`.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(port: u16) -> io::Result<Self> {
        let stream = TcpStream::connect(("127.0.0.1", port))?;
        stream.set_nodelay(true)?;
        Ok(Conn { inner: stream })
    }

    /// Connect to `127.0.0.1:port`, retrying until the listener
    /// accepts or `attempts` tries are exhausted.
    ///
    /// This is the sleep-free half of the readiness handshake used by
    /// the serve benches and the CI smoke: a freshly spawned `brokerd`
    /// may not have bound its socket yet, so instead of a fixed delay
    /// the caller spins on connect with a scheduler yield between
    /// tries. Pair with [`Conn::handshake`] to also wait for the
    /// serving loop (bound socket ≠ serving: the accept queue can hold
    /// a connection before the index is ready to answer).
    ///
    /// # Errors
    ///
    /// The last connect failure once every attempt is spent.
    pub fn connect_retry(port: u16, attempts: usize) -> io::Result<Self> {
        let mut last: Option<io::Error> = None;
        for _ in 0..attempts.max(1) {
            match Self::connect(port) {
                Ok(conn) => return Ok(conn),
                Err(e) => {
                    last = Some(e);
                    std::thread::yield_now();
                }
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "connect_retry: no attempts",
            )
        }))
    }

    /// Full readiness handshake: connect (with retries) and block on a
    /// [`Request::Hello`] until the server answers
    /// [`Response::HelloOk`]. Returns the ready connection plus the
    /// served index's shape. No sleeps anywhere: the blocking read on
    /// the HELLO reply *is* the readiness signal.
    ///
    /// # Errors
    ///
    /// Connect failures propagate; a non-`HelloOk` reply surfaces as
    /// [`io::ErrorKind::InvalidData`].
    pub fn handshake(port: u16, attempts: usize) -> io::Result<(Self, Response)> {
        let mut conn = Self::connect_retry(port, attempts)?;
        match conn.request(&Request::Hello)? {
            ok @ Response::HelloOk { .. } => Ok((conn, ok)),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("handshake expected HelloOk, got {other:?}"),
            )),
        }
    }

    /// Send one request and read its response.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; decode failures and unexpected EOF
    /// surface as [`io::ErrorKind::InvalidData`] /
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.inner.write_all(&encode_request(req))?;
        self.read_response()?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Write raw bytes — the fuzz tests' door for malformed frames.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.inner.write_all(bytes)
    }

    /// Read one response frame; `None` on clean EOF.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; malformed response frames surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_response(&mut self) -> io::Result<Option<Response>> {
        match read_framed(&mut self.inner)? {
            Framed::Eof | Framed::Truncated => Ok(None),
            Framed::Oversize(len) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                FrameError::Oversize(len),
            )),
            Framed::Body(body) => decode_response(&body)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e)),
        }
    }
}

/// Serve one connection until the peer hangs up or asks for shutdown.
/// Returns `true` when the peer requested server shutdown.
///
/// Single queries are answered inline; batch frames fan out on the
/// persistent [`netgraph::par`] worker pool (`threads` as in
/// [`netgraph::par::resolve_threads`]). Malformed frames get an error
/// reply; the connection closes when the stream cannot be
/// resynchronized (oversize or truncated frames).
///
/// # Errors
///
/// Propagates unexpected transport failures (never decode errors).
pub fn serve(
    mut conn: Conn,
    index: &Arc<ReachIndex>,
    counters: &ServeCounters,
    threads: usize,
) -> io::Result<bool> {
    loop {
        let body = match read_framed(&mut conn.inner)? {
            Framed::Eof => return Ok(false),
            Framed::Truncated => {
                // Best-effort reply; the peer is usually gone already.
                let reply = encode_response(&Response::Error {
                    code: errcode::TRUNCATED,
                    message: FrameError::Truncated.to_string(),
                });
                let _ = conn.inner.write_all(&reply);
                return Ok(false);
            }
            Framed::Oversize(len) => {
                let reply = encode_response(&Response::Error {
                    code: errcode::OVERSIZE,
                    message: FrameError::Oversize(len).to_string(),
                });
                conn.inner.write_all(&reply)?;
                return Ok(false);
            }
            Framed::Body(body) => body,
        };
        let resp = match decode_request(&body) {
            Ok(Request::Hello) => Response::HelloOk {
                n: index.node_count() as u32,
                k: index.broker_count() as u32,
                epoch: index.epoch(),
                max_l: index.max_l() as u8,
            },
            Ok(Request::Query { s, t, l }) => {
                let ans = index.query(NodeId(s), NodeId(t), usize::from(l));
                counters.record(1, usize::from(ans.is_some()), false);
                Response::Answer(ans)
            }
            Ok(Request::Batch(entries)) => {
                let answers = eval_batch(index, &entries, threads);
                let hits = answers.iter().filter(|a| a.is_some()).count();
                counters.record(entries.len(), hits, true);
                Response::BatchAnswers(answers)
            }
            Ok(Request::Stats) => Response::Stats(counters.snapshot(index)),
            Ok(Request::Shutdown) => {
                conn.inner.write_all(&encode_response(&Response::Bye))?;
                return Ok(true);
            }
            Err(e) => {
                let code = match e {
                    FrameError::BadOpcode(_) => errcode::BAD_OPCODE,
                    FrameError::Truncated => errcode::TRUNCATED,
                    FrameError::Oversize(_) => errcode::OVERSIZE,
                    FrameError::Malformed(_) => errcode::MALFORMED,
                };
                Response::Error {
                    code,
                    message: e.to_string(),
                }
            }
        };
        conn.inner.write_all(&encode_response(&resp))?;
    }
}

/// Evaluate a batch in request order; large batches fan out on the
/// worker pool in fixed chunks, so results are identical at every
/// thread count.
pub fn eval_batch(
    index: &Arc<ReachIndex>,
    entries: &[(u32, u32, u16)],
    threads: usize,
) -> Vec<Option<StitchAnswer>> {
    const POOL_CUTOVER: usize = 1024;
    if entries.len() < POOL_CUTOVER || threads == 1 {
        return entries
            .iter()
            .map(|&(s, t, l)| index.query(NodeId(s), NodeId(t), usize::from(l)))
            .collect();
    }
    let shared = Arc::clone(index);
    netgraph::par::map_chunks(entries, 256, threads, move |chunk| {
        chunk
            .iter()
            .map(|&(s, t, l)| shared.query(NodeId(s), NodeId(t), usize::from(l)))
            .collect::<Vec<_>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_roundtrip() {
        let reqs = [
            Request::Hello,
            Request::Query { s: 3, t: 9, l: 6 },
            Request::Batch(vec![(1, 2, 3), (4, 5, 6)]),
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let frame = encode_request(&req);
            let len = u32::from_le_bytes(frame[..4].try_into().unwrap()) as usize;
            assert_eq!(len, frame.len() - 4);
            assert_eq!(decode_request(&frame[4..]).unwrap(), req);
        }
    }

    #[test]
    fn response_frames_roundtrip() {
        let resps = [
            Response::HelloOk {
                n: 100,
                k: 7,
                epoch: 3,
                max_l: 6,
            },
            Response::Answer(Some(StitchAnswer {
                broker: NodeId(5),
                hops_s: 1,
                hops_t: 2,
            })),
            Response::Answer(None),
            Response::BatchAnswers(vec![
                None,
                Some(StitchAnswer {
                    broker: NodeId(0),
                    hops_s: 0,
                    hops_t: 4,
                }),
            ]),
            Response::Stats(ServeStats {
                queries_served: 10,
                hits: 7,
                batches: 1,
                shards_invalidated: 4,
                epoch: 2,
            }),
            Response::Bye,
            Response::Error {
                code: errcode::BAD_OPCODE,
                message: "unknown opcode 0x7f".into(),
            },
        ];
        for resp in resps {
            let frame = encode_response(&resp);
            assert_eq!(decode_response(&frame[4..]).unwrap(), resp);
        }
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert_eq!(
            decode_request(&[]),
            Err(FrameError::Malformed("empty frame"))
        );
        assert_eq!(decode_request(&[0x7f]), Err(FrameError::BadOpcode(0x7f)));
        assert_eq!(decode_request(&[0x02, 1, 2]), Err(FrameError::Truncated));
        // Batch declaring 2 entries but carrying 1.
        let mut bad = vec![0x03];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; QUERY_BYTES]);
        assert_eq!(
            decode_request(&bad),
            Err(FrameError::Malformed("batch count disagrees with length"))
        );
        // Trailing garbage after a well-formed query.
        let mut frame = encode_request(&Request::Query { s: 1, t: 2, l: 3 });
        frame.push(0xAA);
        assert_eq!(
            decode_request(&frame[4..]),
            Err(FrameError::Malformed("trailing bytes"))
        );
        assert!(FrameError::Oversize(MAX_FRAME + 1)
            .to_string()
            .contains("declares"));
    }

    #[test]
    fn framed_reader_handles_eof_truncation_oversize() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_framed(&mut empty).unwrap(), Framed::Eof));
        let mut partial: &[u8] = &[3, 0];
        assert!(matches!(
            read_framed(&mut partial).unwrap(),
            Framed::Truncated
        ));
        let mut short_body: &[u8] = &[5, 0, 0, 0, 1, 2];
        assert!(matches!(
            read_framed(&mut short_body).unwrap(),
            Framed::Truncated
        ));
        let huge = (MAX_FRAME + 1).to_le_bytes();
        let mut oversize: &[u8] = &huge;
        assert!(matches!(
            read_framed(&mut oversize).unwrap(),
            Framed::Oversize(_)
        ));
    }
}
