//! Bridge from topology to the economic model: derive a Stackelberg
//! customer population from an [`Internet`]'s tier structure.
//!
//! The economics crate is deliberately topology-agnostic; this module
//! does the wiring the Section 7 discussion implies: lower-tier ASes
//! displace more transit spend when the alliance includes their
//! upstreams (higher `transit_scale`), well-connected ASes have more
//! QoS-sensitive revenue at stake (`qos_revenue` scaled by log-degree).

use economics::{CustomerAs, StackelbergGame};
use netgraph::NodeId;
use topology::{Internet, NodeKind, Tier};

/// Parameters of the derivation.
#[derive(Debug, Clone, Copy)]
pub struct BridgeConfig {
    /// Base QoS revenue scale per unit log-degree.
    pub qos_revenue_per_logdeg: f64,
    /// Transit-displacement scale for tier-2 / tier-3 customers.
    pub transit_scale_by_tier: [f64; 2],
    /// Transit-displacement peak for tier-2 / tier-3 customers.
    pub transit_peak_by_tier: [f64; 2],
    /// Legacy adoption floor.
    pub adoption_floor: f64,
    /// Alliance marginal routing cost per adopted unit.
    pub unit_cost: f64,
    /// Expected employee overhead per adopted unit.
    pub hire_overhead: f64,
    /// Price cap.
    pub max_price: f64,
    /// Cap on the number of customers (sampling stride applied beyond).
    pub max_customers: usize,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            qos_revenue_per_logdeg: 1.2,
            transit_scale_by_tier: [1.5, 2.5],
            transit_peak_by_tier: [0.55, 0.7],
            adoption_floor: 0.05,
            unit_cost: 0.4,
            hire_overhead: 0.2,
            max_price: 40.0,
            max_customers: 400,
        }
    }
}

/// Build the pricing game for a given alliance: customers are the
/// non-broker ASes (IXPs don't buy transit), parameterized by tier and
/// degree.
pub fn game_from_topology(
    net: &Internet,
    brokers: &netgraph::NodeSet,
    cfg: &BridgeConfig,
) -> StackelbergGame {
    let g = net.graph();
    let candidates: Vec<NodeId> = g
        .nodes()
        .filter(|&v| net.kind(v).is_as() && !brokers.contains(v) && net.tier(v) != Tier::One)
        .collect();
    let stride = candidates.len().div_ceil(cfg.max_customers.max(1)).max(1);
    let customers: Vec<CustomerAs> = candidates
        .iter()
        .step_by(stride)
        .map(|&v| {
            let tier_idx = usize::from(net.tier(v) == Tier::Three);
            let deg = g.degree(v).max(1) as f64;
            let content_boost = if net.kind(v) == NodeKind::Content {
                1.6
            } else {
                1.0
            };
            CustomerAs {
                qos_revenue: cfg.qos_revenue_per_logdeg * (1.0 + deg.ln()) * content_boost,
                qos_saturation: 2.0,
                transit_scale: cfg.transit_scale_by_tier[tier_idx],
                transit_peak: cfg.transit_peak_by_tier[tier_idx],
                adoption_floor: cfg.adoption_floor,
            }
        })
        .collect();
    StackelbergGame {
        customers,
        unit_cost: cfg.unit_cost,
        hire_overhead: cfg.hire_overhead,
        max_price: cfg.max_price,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    #[test]
    fn derived_game_has_equilibrium() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(5);
        let sel = max_subgraph_greedy(net.graph(), 60);
        let game = game_from_topology(&net, sel.brokers(), &BridgeConfig::default());
        assert!(!game.customers.is_empty());
        assert!(game.customers.len() <= 400);
        let eq = game.equilibrium().expect("equilibrium exists");
        assert!(eq.price > 0.0);
        assert!(eq.leader_utility > 0.0);
        assert!(eq.total_adoption > game.customers.len() as f64 * 0.05);
    }

    #[test]
    fn brokers_and_ixps_excluded() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(6);
        let sel = max_subgraph_greedy(net.graph(), 40);
        let cfg = BridgeConfig {
            max_customers: usize::MAX,
            ..Default::default()
        };
        let game = game_from_topology(&net, sel.brokers(), &cfg);
        let expected = net
            .graph()
            .nodes()
            .filter(|&v| {
                net.kind(v).is_as()
                    && !sel.brokers().contains(v)
                    && net.tier(v) != topology::Tier::One
            })
            .count();
        assert_eq!(game.customers.len(), expected);
    }
}
