//! `broker-cli` — command-line front end for the broker-net library.
//!
//! ```text
//! broker-cli generate  <scale> <seed> <out.json>     write a topology snapshot
//! broker-cli stats     <snapshot.json>               Table-2 style statistics
//! broker-cli select    <snapshot.json> <alg> <k>     select brokers (prints ranks)
//! broker-cli eval      <snapshot.json> <alg> <k>     saturated + l-hop connectivity
//! broker-cli export    <snapshot.json> <out.dot> [k] DOT dump, brokers highlighted
//! broker-cli audit     <snapshot.json> [alg] [k]      invariant audit (exit 1 on findings)
//! broker-cli chaos     <snapshot.json> <alg> <k>      scripted fault timeline + certificate
//! broker-cli evolve    <snapshot.json> <epochs> <k> [seed]  grow the topology, maintain brokers
//! broker-cli index build <snapshot.json> <alg> <k> <out.bri>  precompute the reachability index
//! broker-cli index query <index.bri> <s> <t> <l>     answer one stitch query from the index
//! broker-cli plan      <snapshot.json> <alg> <k_from> <k_to>  dependency-DAG reconfiguration plan
//! ```
//!
//! Algorithms: `maxsg`, `greedy`, `approx`, `db`, `prb`, `ixpb`, `tier1`.
//!
//! A global `--obs PATH` (any position) dumps a `netgraph::obs` metrics
//! snapshot after a successful command and prints a one-line engine
//! digest to stderr. Meaningful in `--features obs` builds; otherwise
//! the snapshot is empty and the digest says so.
//!
//! `evolve` additionally honors a global `--record PATH`: the growth
//! delta stream plus the per-epoch maintenance ledger are written as
//! JSON (the stream round-trips bit-identically, so a recorded run can
//! be replayed elsewhere).

use brokerset::{
    approx_mcbg, chaos_trace, degree_based, greedy_mcb, ixp_based, lhop_curve, max_subgraph_greedy,
    pagerank_based, ranked_brokers, saturated_connectivity, tier1_only, ApproxConfig,
    BrokerMaintainer, BrokerSelection, CoverageCertificate, DegradationCertificate, MaintainConfig,
    ReachIndex, SourceMode, Validate,
};
use rand::{Rng, SeedableRng};
use topology::{
    evolve, load_snapshot, save_snapshot, GrowthConfig, Internet, InternetConfig, Scale,
};

/// Print to stdout, ignoring broken pipes (`broker_cli ... | head` must
/// exit quietly, not panic).
macro_rules! say {
    ($($t:tt)*) => {{
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), $($t)*);
    }};
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs_path = extract_path_flag(&mut args, "--obs");
    let record_path = extract_path_flag(&mut args, "--record");
    let code = match run(&args, record_path.as_deref()) {
        Ok(()) => {
            if let Some(path) = &obs_path {
                dump_obs(path);
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Strip a global `--obs PATH` / `--record PATH` style flag from the
/// argument list, if present. A flag without its path is a usage error.
fn extract_path_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("error: {flag} expects a file path");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    let path = args.remove(i + 1);
    args.remove(i);
    Some(path)
}

/// Write the metrics snapshot and print the run summary to stderr.
fn dump_obs(path: &str) {
    let snap = netgraph::obs::snapshot();
    if let Err(e) = std::fs::write(path, snap.to_json()) {
        eprintln!("error: writing obs snapshot to {path}: {e}");
        std::process::exit(2);
    }
    if netgraph::obs::enabled() {
        let c = |name: &str| snap.counter(name).unwrap_or(0);
        eprintln!(
            "[obs] arena runs {} (pool {}/{} acquire/fresh) | msbfs runs {} levels {} | \
             valley-free expansions {} | snapshot -> {path}",
            c("arena.runs"),
            c("arena.pool.acquire"),
            c("arena.pool.fresh"),
            c("msbfs.runs"),
            c("msbfs.levels"),
            c("valleyfree.state_expansions"),
        );
    } else {
        eprintln!("[obs] instrumentation off (rebuild with --features obs) | snapshot -> {path}");
    }
}

const USAGE: &str = "\
usage:
  broker-cli generate <tiny|quarter|full> <seed> <out.json>
  broker-cli stats    <snapshot.json>
  broker-cli select   <snapshot.json> <alg> <k>
  broker-cli eval     <snapshot.json> <alg> <k>
  broker-cli export   <snapshot.json> <out.dot> [k]
  broker-cli audit    <snapshot.json> [alg] [k]
  broker-cli chaos    <snapshot.json> <alg> <k>
  broker-cli evolve   <snapshot.json> <epochs> <k> [seed]
  broker-cli index build <snapshot.json> <alg> <k> <out.bri>
  broker-cli index query <index.bri> <s> <t> <l>
  broker-cli plan     <snapshot.json> <alg> <k_from> <k_to>
algorithms: maxsg greedy approx db prb ixpb tier1
global flags: --obs PATH (metrics snapshot), --record PATH (evolve: delta stream + ledger JSON)";

fn run(args: &[String], record_path: Option<&str>) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "generate" => {
            let scale = parse_scale(args.get(1).ok_or("missing scale")?)?;
            let seed: u64 = args
                .get(2)
                .ok_or("missing seed")?
                .parse()
                .map_err(|e| format!("bad seed: {e}"))?;
            let out = args.get(3).ok_or("missing output path")?;
            let net = InternetConfig::scaled(scale).generate(seed);
            save_snapshot(&net, out).map_err(|e| e.to_string())?;
            say!(
                "wrote {} nodes / {} edges to {out}",
                net.graph().node_count(),
                net.graph().edge_count()
            );
            Ok(())
        }
        "stats" => {
            let net = load(args.get(1))?;
            say!("{}", net.stats());
            Ok(())
        }
        "select" => {
            let net = load(args.get(1))?;
            let sel = select(&net, args.get(2), args.get(3))?;
            say!("{} brokers selected by {}:", sel.len(), sel.algorithm());
            for row in ranked_brokers(&net, &sel).iter().take(25) {
                say!(
                    "  #{:<4} {:<5} {:<26} degree {}",
                    row.rank,
                    row.category,
                    row.name,
                    row.degree
                );
            }
            if sel.len() > 25 {
                say!("  ... and {} more", sel.len() - 25);
            }
            Ok(())
        }
        "eval" => {
            let net = load(args.get(1))?;
            let sel = select(&net, args.get(2), args.get(3))?;
            let g = net.graph();
            let sat = saturated_connectivity(g, sel.brokers());
            say!(
                "{} brokers -> saturated E2E connectivity {:.2}% (giant {} / {})",
                sel.len(),
                100.0 * sat.fraction,
                sat.giant,
                g.node_count()
            );
            let mode = if g.node_count() <= 2000 {
                SourceMode::Exact
            } else {
                SourceMode::Sampled {
                    count: 800,
                    seed: 1,
                }
            };
            let curve = lhop_curve(g, sel.brokers(), 6, mode);
            for (i, f) in curve.fractions.iter().enumerate() {
                say!("  l = {}: {:.2}%", i + 1, 100.0 * f);
            }
            Ok(())
        }
        "export" => {
            let net = load(args.get(1))?;
            let out = args.get(2).ok_or("missing output path")?;
            let highlight = match args.get(3) {
                Some(k) => {
                    let k: usize = k.parse().map_err(|e| format!("bad k: {e}"))?;
                    Some(max_subgraph_greedy(net.graph(), k))
                }
                None => None,
            };
            let labels: Vec<String> = net.names().to_vec();
            let dot = netgraph::to_dot(
                net.graph(),
                highlight.as_ref().map(|s| s.brokers()),
                Some(&labels),
            );
            std::fs::write(out, dot).map_err(|e| e.to_string())?;
            say!("wrote DOT to {out}");
            Ok(())
        }
        "audit" => {
            let net = load(args.get(1))?;
            let mut rep = brokerset::AuditReport::new("broker-cli audit");
            rep.absorb(net.audit());
            if let Some(alg) = args.get(2) {
                let sel = select(&net, Some(alg), args.get(3))?;
                rep.absorb(sel.audit());
                let cert = CoverageCertificate::sampled(net.graph(), &sel, 200, 1);
                say!(
                    "re-verifying {} sampled coverage claims for {} {}-broker selection",
                    cert.pair_count(),
                    sel.algorithm(),
                    sel.len()
                );
                rep.absorb(cert.audit());
            }
            say!("{rep}");
            if rep.is_ok() {
                Ok(())
            } else {
                // Plain failure, not a usage error: report, skip USAGE.
                eprintln!("audit failed: {} invariant(s) violated", rep.findings.len());
                std::process::exit(1);
            }
        }
        "chaos" => {
            let net = load(args.get(1))?;
            let sel = select(&net, args.get(2), args.get(3))?;
            let g = net.graph();
            // A compact defect-and-recover drill: the top third of the
            // selection fails in three batches, then everyone rejoins.
            let batch = (sel.len() / 9).max(1);
            let mut schedule = netgraph::FaultSchedule::new(g.node_count());
            let victims: Vec<_> = sel.order().iter().copied().take(3 * batch).collect();
            for (i, chunk) in victims.chunks(batch).enumerate() {
                for &b in chunk {
                    schedule.fail_broker(i as u32 + 1, b);
                }
            }
            for &b in &victims {
                schedule.recover_broker(5, b);
            }
            schedule.set_horizon(7);
            let mode = if g.node_count() <= 2000 {
                SourceMode::Exact
            } else {
                SourceMode::Sampled {
                    count: 800,
                    seed: 1,
                }
            };
            let trace = chaos_trace(g, &sel, &schedule, Some(6), mode);
            say!(
                "chaos drill over {} epochs ({} brokers defect in batches of {batch}):",
                schedule.horizon(),
                victims.len()
            );
            for s in &trace.steps {
                say!(
                    "  epoch {}: {:>4} alive, saturated {:>7.2}%, l<=6 {:>7.2}%",
                    s.epoch,
                    s.alive_brokers,
                    100.0 * s.saturated,
                    100.0 * s.lhop.unwrap_or(0.0)
                );
            }
            say!(
                "max degradation {:.2}%, recovered {:.2}%",
                100.0 * trace.max_degradation(),
                100.0 * trace.recovered()
            );
            let audit = DegradationCertificate::new(g, &sel, &schedule, mode, &trace).audit();
            say!("certificate: {audit}");
            if audit.is_ok() {
                Ok(())
            } else {
                eprintln!(
                    "chaos certificate failed: {} invariant(s) violated",
                    audit.findings.len()
                );
                std::process::exit(1);
            }
        }
        "evolve" => {
            let net = load(args.get(1))?;
            let epochs: u32 = args
                .get(2)
                .ok_or("missing epoch count")?
                .parse()
                .map_err(|e| format!("bad epoch count: {e}"))?;
            let k: usize = args
                .get(3)
                .ok_or("missing k")?
                .parse()
                .map_err(|e| format!("bad k: {e}"))?;
            let seed: u64 = args
                .get(4)
                .map(|s| s.parse().map_err(|e| format!("bad seed: {e}")))
                .transpose()?
                .unwrap_or(7);
            let n0 = net.graph().node_count();
            let cfg = GrowthConfig::calibrated(epochs, n0);
            let stream = evolve(&net, &cfg, seed);
            let deltas = stream.lower();
            say!(
                "growing {n0} vertices for {} epochs (seed {seed}): {} ops, {} births",
                deltas.len(),
                stream.op_count(),
                stream.births()
            );
            let mut g = net.graph().clone();
            let mut m = BrokerMaintainer::new(&g, k, MaintainConfig::default());
            say!(
                "epoch  0: {:>4} brokers, coverage {:>6}/{:<6}",
                m.brokers().len(),
                m.coverage(),
                g.node_count()
            );
            for d in &deltas {
                let next = g.apply_delta(d);
                let r = m.apply(&g, &next, d).clone();
                say!(
                    "epoch {:>2}: {:>4} brokers, coverage {:>6}/{:<6} ({} out, {} in{})",
                    r.epoch,
                    m.brokers().len(),
                    r.coverage,
                    next.node_count(),
                    r.swapped_out.len(),
                    r.swapped_in.len(),
                    if r.recomputed { ", exact rebuild" } else { "" }
                );
                g = next;
            }
            say!(
                "ledger: {} swaps total, max {} in one epoch",
                m.ledger().total_swaps(),
                m.ledger().max_swaps_per_epoch()
            );
            let audit = m.certify(&g).audit();
            say!("certificate: {audit}");
            if let Some(path) = record_path {
                let blob = serde_json::json!({
                    "seed": seed,
                    "stream": serde_json::to_value(&stream).map_err(|e| e.to_string())?,
                    "reports": serde_json::to_value(m.ledger().reports())
                        .map_err(|e| e.to_string())?,
                });
                let text = serde_json::to_string_pretty(&blob).map_err(|e| e.to_string())?;
                std::fs::write(path, text).map_err(|e| e.to_string())?;
                say!("recorded delta stream + ledger to {path}");
            }
            if audit.is_ok() {
                Ok(())
            } else {
                eprintln!(
                    "maintenance certificate failed: {} invariant(s) violated",
                    audit.findings.len()
                );
                std::process::exit(1);
            }
        }
        "plan" => {
            let net = load(args.get(1))?;
            let alg = args.get(2);
            // Both budgets are mandatory: a defaulted target would make
            // "plan net.json maxsg 40" silently plan toward 100 brokers.
            let k_from = args.get(3).ok_or("missing k_from")?;
            let k_to = args.get(4).ok_or("missing k_to")?;
            let cur_sel = select(&net, alg, Some(k_from))?;
            let tgt_sel = select(&net, alg, Some(k_to))?;
            let g = net.graph();
            // Deterministic supervised sessions: the reconfiguration must
            // keep each one on a dominated stitched path at every cut.
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x91a);
            let n = g.node_count() as u32;
            let mut pairs = Vec::with_capacity(16);
            while pairs.len() < 16 {
                let (u, v) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if u != v {
                    pairs.push((netgraph::NodeId(u), netgraph::NodeId(v)));
                }
            }
            let plan =
                routing::ReconfigPlan::build(g, cur_sel.brokers(), tgt_sel.brokers(), &pairs)
                    .map_err(|e| {
                        format!(
                            "planning {} -> {} brokers: {e}",
                            cur_sel.len(),
                            tgt_sel.len()
                        )
                    })?;
            let s = plan.summary(g);
            say!(
                "plan {} -> {} brokers ({}): {} steps ({} activate, {} deactivate, {} migrate),\n\
                 {} dependency edges; width {}, depth {}; {} sessions kept, {} migrating",
                cur_sel.len(),
                tgt_sel.len(),
                cur_sel.algorithm(),
                s.steps,
                s.activations,
                s.deactivations,
                s.migrations,
                s.edges,
                s.width,
                s.depth,
                s.kept,
                s.migrations,
            );
            for (i, layer) in plan.layers().iter().enumerate() {
                let steps = plan.steps();
                let rendered: Vec<String> = layer.iter().map(|&si| steps[si].to_string()).collect();
                say!("  antichain {i}: {}", rendered.join(", "));
            }
            let trace = plan.execute(g, 0);
            say!(
                "executed: makespan {} vs sequential {} cost units ({:.2}x); {} cut states\n\
                 validated; trace checksum {:016x}",
                trace.makespan_units,
                trace.sequential_units,
                trace.speedup(),
                trace.cuts_validated,
                trace.checksum,
            );
            let audit = routing::PlanCertificate::new(&plan, g).audit();
            say!("certificate: {audit}");
            if audit.is_ok() && trace.cut_audit.is_ok() {
                Ok(())
            } else {
                eprintln!(
                    "plan certificate failed: {} invariant(s) violated",
                    audit.findings.len() + trace.cut_audit.findings.len()
                );
                std::process::exit(1);
            }
        }
        "index" => {
            let sub = args
                .get(1)
                .ok_or("missing index subcommand (build|query)")?;
            match sub.as_str() {
                "build" => {
                    let net = load(args.get(2))?;
                    let sel = select(&net, args.get(3), args.get(4))?;
                    let out = args.get(5).ok_or("missing output path")?;
                    let g = net.graph();
                    let idx = ReachIndex::build(g, sel.brokers(), 6, 0);
                    let audit = idx.audit();
                    if !audit.is_ok() {
                        eprintln!("index audit failed: {audit}");
                        std::process::exit(1);
                    }
                    idx.save(std::path::Path::new(out))
                        .map_err(|e| e.to_string())?;
                    say!(
                        "wrote {}-broker x {}-node index (max_l {}) to {out}, digest {:016x}",
                        idx.broker_count(),
                        idx.node_count(),
                        idx.max_l(),
                        idx.digest()
                    );
                    Ok(())
                }
                "query" => {
                    let path = args.get(2).ok_or("missing index path")?;
                    let idx = ReachIndex::load(std::path::Path::new(path))
                        .map_err(|e| format!("loading index {path}: {e}"))?;
                    let coord = |i: usize, what: &str| -> Result<u32, String> {
                        args.get(i)
                            .ok_or(format!("missing {what}"))?
                            .parse()
                            .map_err(|e| format!("bad {what}: {e}"))
                    };
                    let s = coord(3, "source")?;
                    let t = coord(4, "destination")?;
                    let l = coord(5, "hop bound")? as usize;
                    match idx.query(netgraph::NodeId(s), netgraph::NodeId(t), l) {
                        Some(a) => say!(
                            "stitch {s} -> {t} via broker {}: {} + {} hops (total {}, l <= {l})",
                            a.broker.0,
                            a.hops_s,
                            a.hops_t,
                            a.hops()
                        ),
                        None => say!("no dominated stitch from {s} to {t} within l = {l}"),
                    }
                    Ok(())
                }
                other => Err(format!("unknown index subcommand '{other}'")),
            }
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "quarter" => Ok(Scale::Quarter),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale '{other}'")),
    }
}

fn load(path: Option<&String>) -> Result<Internet, String> {
    load_snapshot(path.ok_or("missing snapshot path")?).map_err(|e| e.to_string())
}

fn select(
    net: &Internet,
    alg: Option<&String>,
    k: Option<&String>,
) -> Result<BrokerSelection, String> {
    let alg = alg.ok_or("missing algorithm")?;
    let k: usize = k
        .map(|s| s.parse().map_err(|e| format!("bad k: {e}")))
        .transpose()?
        .unwrap_or(100);
    let g = net.graph();
    Ok(match alg.as_str() {
        "maxsg" => max_subgraph_greedy(g, k),
        "greedy" => greedy_mcb(g, k),
        "approx" => approx_mcbg(g, k, &ApproxConfig::paper()),
        "db" => degree_based(g, k),
        "prb" => pagerank_based(g, k),
        // Fixed-membership baselines still honor <k> by truncation so
        // the CLI contract ("select <alg> <k>") holds for every algorithm.
        "ixpb" => ixp_based(net, 0).truncated(k),
        "tier1" => tier1_only(net).truncated(k),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}
