//! # broker-net — inter-domain routing via a small broker set
//!
//! A from-scratch Rust reproduction of *"On the Feasibility of
//! Inter-Domain Routing via a Small Broker Set"* (Liu, Lui, Lin, Hui;
//! ICDCS'17 / IEEE TPDS'18): can a small set of ASes/IXPs, acting as
//! centralized routing brokers, give most end-to-end Internet paths a
//! QoS-controllable, fully supervised route — and is it economically
//! stable to run one?
//!
//! The workspace splits into focused crates, all re-exported here:
//!
//! - [`netgraph`] — CSR graph substrate (traversal, components,
//!   centralities, random-graph generators).
//! - [`topology`] — the AS/IXP Internet model and a calibrated synthetic
//!   generator standing in for the paper's 2014 dataset.
//! - [`brokerset`] — the MCB/MCBG problems, the greedy and approximation
//!   algorithms, the MaxSubGraph-Greedy heuristic, the baselines, and
//!   the l-hop E2E connectivity evaluation.
//! - [`routing`] — valley-free policy routing, directional connectivity
//!   under business relationships, and broker path stitching with a
//!   synthetic latency model.
//! - [`economics`] — Nash bargaining, the Stackelberg pricing game and
//!   Shapley-value coalition analysis.
//!
//! ## Quickstart
//!
//! ```
//! use broker_net::prelude::*;
//!
//! // A small synthetic Internet and a 40-broker alliance.
//! let plan = BrokeragePlan::build(Scale::Tiny, 42, 40);
//! assert!(plan.saturated_connectivity > 0.4);
//! assert!(plan.selection.len() <= 40);
//!
//! // Stitch a concrete dominated path between two random stubs.
//! let net = plan.internet();
//! let g = net.graph();
//! let (u, v) = (g.nodes().next().unwrap(), g.nodes().last().unwrap());
//! let _maybe_path = broker_net::routing::stitch_path(g, plan.selection.brokers(), u, v);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use brokerset;
pub use economics;
pub use netgraph;
pub use routing;
pub use topology;

pub mod econbridge;
pub mod proto;

/// The most common imports in one place.
pub mod prelude {
    pub use crate::BrokeragePlan;
    pub use brokerset::{
        approx_mcbg, greedy_mcb, lhop_curve, max_subgraph_greedy, saturated_connectivity,
        ApproxConfig, BrokerSelection, SourceMode,
    };
    pub use netgraph::{AuditReport, Graph, NodeId, NodeSet, Validate};
    pub use topology::{Internet, InternetConfig, NodeKind, Scale};
}

use brokerset::{max_subgraph_greedy, saturated_connectivity, BrokerSelection};
use topology::{Internet, InternetConfig, Scale};

/// A one-call pipeline: generate a topology, select a broker set with the
/// MaxSubGraph-Greedy heuristic, and evaluate its saturated E2E
/// connectivity.
///
/// This is the "planning" entry point the examples build on; for finer
/// control use the crates directly.
#[derive(Debug, Clone)]
pub struct BrokeragePlan {
    internet: Internet,
    /// The selected broker set.
    pub selection: BrokerSelection,
    /// Fraction of ordered AS pairs joined by a B-dominating path.
    pub saturated_connectivity: f64,
}

impl BrokeragePlan {
    /// Build a plan at the given scale, RNG seed and broker budget.
    pub fn build(scale: Scale, seed: u64, budget: usize) -> Self {
        Self::build_with_config(&InternetConfig::scaled(scale), seed, budget)
    }

    /// Build a plan from an explicit topology configuration.
    pub fn build_with_config(cfg: &InternetConfig, seed: u64, budget: usize) -> Self {
        let internet = cfg.generate(seed);
        Self::for_internet(internet, budget)
    }

    /// Plan a broker set for an existing topology.
    pub fn for_internet(internet: Internet, budget: usize) -> Self {
        let () = netgraph::counter!("plan.builds");
        let selection = max_subgraph_greedy(internet.graph(), budget);
        let report = saturated_connectivity(internet.graph(), selection.brokers());
        BrokeragePlan {
            internet,
            selection,
            saturated_connectivity: report.fraction,
        }
    }

    /// The topology this plan was computed for.
    pub fn internet(&self) -> &Internet {
        &self.internet
    }
}

impl netgraph::Validate for BrokeragePlan {
    /// End-to-end audit of a plan: the topology invariants, the
    /// selection's internal consistency, and a sampled re-verification
    /// that pairs counted into `saturated_connectivity` really are joined
    /// by B-dominating paths.
    fn audit(&self) -> netgraph::AuditReport {
        use brokerset::CoverageCertificate;
        let mut rep = netgraph::AuditReport::new("broker_net::BrokeragePlan");
        rep.absorb(self.internet.audit());
        rep.absorb(self.selection.audit());
        let cert = CoverageCertificate::sampled(self.internet.graph(), &self.selection, 64, 1);
        rep.absorb(cert.audit());
        rep.check(
            "plan.connectivity-fraction",
            (0.0..=1.0).contains(&self.saturated_connectivity),
            || format!("fraction {} outside [0, 1]", self.saturated_connectivity),
        );
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_pipeline_runs() {
        let plan = BrokeragePlan::build(Scale::Tiny, 7, 60);
        assert!(plan.selection.len() <= 60);
        assert!(plan.saturated_connectivity > 0.5);
        assert_eq!(
            plan.internet().graph().node_count(),
            InternetConfig::scaled(Scale::Tiny).node_count()
        );
    }

    #[test]
    fn bigger_budget_never_hurts() {
        let a = BrokeragePlan::build(Scale::Tiny, 7, 20);
        let b = BrokeragePlan::build(Scale::Tiny, 7, 80);
        assert!(b.saturated_connectivity >= a.saturated_connectivity - 1e-12);
    }
}
