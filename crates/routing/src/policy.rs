//! Directed, relationship-classified adjacency built from an
//! [`Internet`] topology.

use netgraph::{NodeId, NodeSet};
use rand::Rng;
use serde::{Deserialize, Serialize};
use topology::{Internet, NodeKind, Relationship};

/// Classification of a *directed* edge `u → v` for policy routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeClass {
    /// `u` sends to its provider `v` (uphill).
    ToProvider,
    /// `u` sends to its customer `v` (downhill).
    ToCustomer,
    /// Settlement-free peering.
    Peer,
    /// `u` (an AS) enters the exchange fabric `v` (an IXP).
    IntoIxp,
    /// `u` (an IXP) hands traffic to member `v`.
    OutOfIxp,
    /// Alliance-internal link made fully bidirectional (the Fig. 5b
    /// conversion): traversable in any phase, phase-preserving.
    AllianceFree,
}

/// Directed policy view of a topology.
///
/// Owns per-node adjacency lists of `(neighbor, EdgeClass)`. Conversions
/// (e.g. turning inter-broker transit links into peering for the Fig. 5b
/// experiment) mutate this view without touching the source topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyGraph {
    adj: Vec<Vec<(NodeId, EdgeClass)>>,
    edges: usize,
}

impl PolicyGraph {
    /// Build the policy view of `net`.
    pub fn new(net: &Internet) -> Self {
        let n = net.graph().node_count();
        let mut adj: Vec<Vec<(NodeId, EdgeClass)>> = vec![Vec::new(); n];
        for &(a, b, rel) in net.relationships() {
            let (cls_ab, cls_ba) = classify(net, a, b, rel);
            adj[a.index()].push((b, cls_ab));
            adj[b.index()].push((a, cls_ba));
        }
        for list in adj.iter_mut() {
            list.sort_unstable_by_key(|&(v, _)| v);
        }
        PolicyGraph {
            adj,
            edges: net.relationships().len(),
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Outgoing classified edges of `u`.
    pub fn out_edges(&self, u: NodeId) -> &[(NodeId, EdgeClass)] {
        &self.adj[u.index()]
    }

    /// Whether `v` is an exchange-fabric vertex (its outgoing edges hand
    /// traffic to members). Vertices with no edges are treated as ASes.
    pub fn is_ixp(&self, v: NodeId) -> bool {
        self.adj[v.index()]
            .first()
            .is_some_and(|&(_, cls)| cls == EdgeClass::OutOfIxp)
    }

    /// The class of directed edge `u → v`, if the edge exists.
    pub fn class(&self, u: NodeId, v: NodeId) -> Option<EdgeClass> {
        self.adj[u.index()]
            .binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| self.adj[u.index()][i].1)
    }

    /// Convert a uniformly random fraction of *inter-broker* links (both
    /// endpoints in `brokers`) into alliance-internal bidirectional links
    /// ([`EdgeClass::AllianceFree`]). Returns the number of converted
    /// undirected edges.
    ///
    /// This is the Fig. 5b experiment: "randomly changing only 30 percent
    /// inter-broker connections to bidirectional (e.g., peering)".
    pub fn convert_interbroker_to_peering<R: Rng>(
        &mut self,
        brokers: &NodeSet,
        fraction: f64,
        rng: &mut R,
    ) -> usize {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        let mut converted = 0usize;
        // Visit each undirected edge once via the lower endpoint.
        for u_idx in 0..self.adj.len() {
            let u = NodeId::from(u_idx);
            if !brokers.contains(u) {
                continue;
            }
            // Collect targets first to appease the borrow checker.
            let targets: Vec<NodeId> = self.adj[u_idx]
                .iter()
                .filter(|&&(v, cls)| u < v && brokers.contains(v) && cls != EdgeClass::AllianceFree)
                .map(|&(v, _)| v)
                .collect();
            for v in targets {
                if rng.gen_range(0.0..1.0) < fraction {
                    self.set_class_pair(u, v, EdgeClass::AllianceFree, EdgeClass::AllianceFree);
                    converted += 1;
                }
            }
        }
        converted
    }

    fn set_class_pair(&mut self, u: NodeId, v: NodeId, uv: EdgeClass, vu: EdgeClass) {
        if let Ok(i) = self.adj[u.index()].binary_search_by_key(&v, |&(w, _)| w) {
            self.adj[u.index()][i].1 = uv;
        }
        if let Ok(i) = self.adj[v.index()].binary_search_by_key(&u, |&(w, _)| w) {
            self.adj[v.index()][i].1 = vu;
        }
    }
}

fn classify(net: &Internet, _a: NodeId, b: NodeId, rel: Relationship) -> (EdgeClass, EdgeClass) {
    match rel {
        Relationship::CustomerOfB => (EdgeClass::ToProvider, EdgeClass::ToCustomer),
        Relationship::ProviderOfB => (EdgeClass::ToCustomer, EdgeClass::ToProvider),
        Relationship::Peer => (EdgeClass::Peer, EdgeClass::Peer),
        Relationship::IxpMembership => {
            if net.kind(b) == NodeKind::Ixp {
                (EdgeClass::IntoIxp, EdgeClass::OutOfIxp)
            } else {
                (EdgeClass::OutOfIxp, EdgeClass::IntoIxp)
            }
        }
    }
}

impl netgraph::Validate for PolicyGraph {
    /// Re-derive the directed-adjacency invariants:
    ///
    /// 1. every neighbor id is in range;
    /// 2. each out-edge list is strictly ascending by neighbor (the
    ///    binary search in [`PolicyGraph::class`] depends on it);
    /// 3. adjacency is symmetric as a *directed pair*: `u → v` exists
    ///    iff `v → u` does (classes may differ — that is the point);
    /// 4. the directed degree sum is twice the cached edge count.
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("routing::PolicyGraph");
        let n = self.adj.len();
        let in_range = self
            .adj
            .iter()
            .all(|list| list.iter().all(|&(v, _)| v.index() < n));
        rep.check("policy.ids-in-range", in_range, || {
            format!("a neighbor id is >= {n}")
        });
        if !in_range {
            return rep;
        }
        let sorted = self
            .adj
            .iter()
            .all(|list| list.windows(2).all(|w| w[0].0 < w[1].0));
        rep.check("policy.lists-sorted", sorted, || {
            "an out-edge list is not strictly ascending".into()
        });
        let mut asymmetric = 0usize;
        for (u, list) in self.adj.iter().enumerate() {
            for &(v, _) in list {
                if self.adj[v.index()]
                    .binary_search_by_key(&NodeId(u as u32), |&(w, _)| w)
                    .is_err()
                {
                    asymmetric += 1;
                }
            }
        }
        rep.check("policy.symmetric", asymmetric == 0, || {
            format!("{asymmetric} directed edge(s) without a reverse edge")
        });
        let degree_sum: usize = self.adj.iter().map(Vec::len).sum();
        rep.check("policy.degree-sum", degree_sum == 2 * self.edges, || {
            format!("degree sum {degree_sum}, expected {}", 2 * self.edges)
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use topology::{InternetConfig, Scale};

    fn tiny() -> Internet {
        InternetConfig::scaled(Scale::Tiny).generate(21)
    }

    #[test]
    fn classes_mirror_relationships() {
        let net = tiny();
        let pg = PolicyGraph::new(&net);
        assert_eq!(pg.node_count(), net.graph().node_count());
        assert_eq!(pg.edge_count(), net.graph().edge_count());
        for &(a, b, rel) in net.relationships().iter().take(500) {
            let ab = pg.class(a, b).unwrap();
            let ba = pg.class(b, a).unwrap();
            match rel {
                Relationship::CustomerOfB => {
                    assert_eq!(ab, EdgeClass::ToProvider);
                    assert_eq!(ba, EdgeClass::ToCustomer);
                }
                Relationship::ProviderOfB => {
                    assert_eq!(ab, EdgeClass::ToCustomer);
                    assert_eq!(ba, EdgeClass::ToProvider);
                }
                Relationship::Peer => {
                    assert_eq!(ab, EdgeClass::Peer);
                    assert_eq!(ba, EdgeClass::Peer);
                }
                Relationship::IxpMembership => {
                    assert!(
                        (ab == EdgeClass::IntoIxp && ba == EdgeClass::OutOfIxp)
                            || (ab == EdgeClass::OutOfIxp && ba == EdgeClass::IntoIxp)
                    );
                }
            }
        }
    }

    #[test]
    fn class_missing_edge_is_none() {
        let net = tiny();
        let pg = PolicyGraph::new(&net);
        // Two island stubs at the very end of the AS range are connected
        // to each other but not to node 0.
        let n = net.graph().node_count();
        let some_far = NodeId((n - 1) as u32);
        if pg.class(NodeId(0), some_far).is_some() {
            // Extremely unlikely; skip rather than fail spuriously.
            return;
        }
        assert_eq!(pg.class(NodeId(0), some_far), None);
    }

    #[test]
    fn conversion_only_touches_interbroker_transit() {
        let net = tiny();
        let mut pg = PolicyGraph::new(&net);
        let before = pg.clone();
        // Brokers: the provider head (ids 0..40).
        let brokers =
            NodeSet::from_iter_with_capacity(net.graph().node_count(), (0..40).map(NodeId));
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let converted = pg.convert_interbroker_to_peering(&brokers, 1.0, &mut rng);
        assert!(converted > 0, "some inter-broker transit links expected");
        // All inter-broker links are now alliance-free.
        for u in 0..40u32 {
            for &(v, cls) in pg.out_edges(NodeId(u)) {
                if brokers.contains(v) {
                    assert_eq!(
                        cls,
                        EdgeClass::AllianceFree,
                        "unconverted inter-broker edge ({u}, {v})"
                    );
                }
            }
        }
        // Edges with a non-broker endpoint are untouched.
        for u in 40..pg.node_count() {
            assert_eq!(
                pg.out_edges(NodeId(u as u32)),
                before.out_edges(NodeId(u as u32))
            );
        }
    }

    #[test]
    fn audit_accepts_and_detects_corruption() {
        use netgraph::Validate;
        let net = tiny();
        let pg = PolicyGraph::new(&net);
        assert!(pg.audit().is_ok());

        // A dangling directed edge: u -> v with no v -> u.
        let mut bad = pg.clone();
        let last = NodeId(bad.adj.len() as u32 - 1);
        bad.adj[0].push((last, EdgeClass::Peer));
        let rep = bad.audit();
        assert!(
            rep.findings.iter().any(|f| {
                f.invariant == "policy.symmetric"
                    || f.invariant == "policy.lists-sorted"
                    || f.invariant == "policy.degree-sum"
            }),
            "{rep}"
        );

        // A neighbor id outside the vertex range short-circuits safely.
        let mut bad = pg.clone();
        bad.adj[0].push((NodeId(u32::MAX), EdgeClass::Peer));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "policy.ids-in-range"));

        // Cached edge count out of sync with the adjacency.
        let mut bad = pg;
        bad.edges += 1;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "policy.degree-sum"));
    }

    #[test]
    fn conversion_fraction_zero_is_noop() {
        let net = tiny();
        let mut pg = PolicyGraph::new(&net);
        let before = pg.clone();
        let brokers = NodeSet::full(net.graph().node_count());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(
            pg.convert_interbroker_to_peering(&brokers, 0.0, &mut rng),
            0
        );
        assert_eq!(pg, before);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn conversion_rejects_bad_fraction() {
        let net = tiny();
        let mut pg = PolicyGraph::new(&net);
        let brokers = NodeSet::new(net.graph().node_count());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        pg.convert_interbroker_to_peering(&brokers, 1.5, &mut rng);
    }
}
