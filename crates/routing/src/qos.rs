//! Synthetic per-edge QoS (latency) model.
//!
//! The paper abstracts away *how* QoS is guaranteed and argues the broker
//! set's monitoring/negotiation power makes it possible; what the
//! examples and benches need is a plausible latency surface to compare
//! broker-stitched paths against BGP-style defaults. Core links (between
//! high-tier networks and across exchange fabrics) are fast and stable;
//! edge links are slower with heavier jitter, mirroring measured
//! inter-domain latency structure.

use netgraph::NodeId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use topology::{Internet, Tier};

/// Deterministic per-edge latency model derived from a topology and seed.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Latency in ms for each canonical edge, aligned with
    /// `Internet::relationships()` order.
    latencies: Vec<f64>,
    /// Edge key -> index in `latencies` (keys are `(min, max)` pairs).
    index: std::collections::BTreeMap<(u32, u32), u32>,
}

impl LatencyModel {
    /// Sample a latency model. For an edge between tiers `(ta, tb)` the
    /// base latency is the mean of per-tier base latencies, plus
    /// lognormal-ish jitter.
    pub fn sample(net: &Internet, seed: u64) -> Self {
        Self::sample_inner(net, None, seed)
    }

    /// Like [`LatencyModel::sample`], but geography-aware: an edge whose
    /// endpoints sit in different [`topology::Region`]s pays a submarine
    /// / long-haul penalty of 35 ms on top of its tier base.
    pub fn sample_with_regions(net: &Internet, geo: &topology::GeoModel, seed: u64) -> Self {
        Self::sample_inner(net, Some(geo), seed)
    }

    fn sample_inner(net: &Internet, geo: Option<&topology::GeoModel>, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut latencies = Vec::with_capacity(net.relationships().len());
        let mut index = std::collections::BTreeMap::new();
        for (i, &(a, b, _)) in net.relationships().iter().enumerate() {
            let mut base = (tier_base(net.tier(a)) + tier_base(net.tier(b))) / 2.0;
            if let Some(geo) = geo {
                if geo.region(a) != geo.region(b) {
                    base += 35.0;
                }
            }
            // Mild multiplicative jitter: U[0.6, 1.8].
            let jitter: f64 = rng.gen_range(0.6..1.8);
            latencies.push(base * jitter);
            index.insert(netgraph::undirected_key(a, b), i as u32);
        }
        LatencyModel { latencies, index }
    }

    /// Latency of edge `{u, v}` in ms, `None` if the edge doesn't exist.
    pub fn edge_latency(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.index
            .get(&netgraph::undirected_key(u, v))
            .map(|&i| self.latencies[i as usize])
    }

    /// Total latency of a path, `None` if any hop is a non-edge.
    pub fn path_latency(&self, path: &[NodeId]) -> Option<f64> {
        if path.is_empty() {
            return None;
        }
        let mut total = 0.0;
        for w in path.windows(2) {
            total += self.edge_latency(w[0], w[1])?;
        }
        Some(total)
    }
}

fn tier_base(t: Tier) -> f64 {
    match t {
        Tier::One => 4.0,    // backbone / exchange fabric
        Tier::Two => 10.0,   // regional transit
        Tier::Three => 18.0, // access tail
    }
}

/// QoS summary of a concrete path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathQos {
    /// Hop count (edges).
    pub hops: usize,
    /// End-to-end latency in ms.
    pub latency_ms: f64,
}

/// Evaluate a path under a latency model.
///
/// Returns `None` when the path is empty or uses a non-edge.
pub fn path_qos(model: &LatencyModel, path: &[NodeId]) -> Option<PathQos> {
    let latency_ms = model.path_latency(path)?;
    Some(PathQos {
        hops: path.len() - 1,
        latency_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topology::{InternetConfig, Scale};

    fn net() -> Internet {
        InternetConfig::scaled(Scale::Tiny).generate(51)
    }

    #[test]
    fn model_covers_every_edge() {
        let net = net();
        let model = LatencyModel::sample(&net, 1);
        for &(a, b, _) in net.relationships() {
            let l = model.edge_latency(a, b).unwrap();
            assert!(l > 0.0 && l < 100.0);
            assert_eq!(model.edge_latency(b, a), Some(l)); // symmetric
        }
    }

    #[test]
    fn missing_edge_is_none() {
        let net = net();
        let model = LatencyModel::sample(&net, 1);
        // Self-loops never exist.
        assert_eq!(model.edge_latency(NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn deterministic_per_seed() {
        let net = net();
        let a = LatencyModel::sample(&net, 7);
        let b = LatencyModel::sample(&net, 7);
        let (x, y, _) = net.relationships()[0];
        assert_eq!(a.edge_latency(x, y), b.edge_latency(x, y));
        let c = LatencyModel::sample(&net, 8);
        // Different seed gives different jitter (overwhelmingly likely).
        assert_ne!(a.edge_latency(x, y), c.edge_latency(x, y));
    }

    #[test]
    fn path_latency_sums_hops() {
        let net = net();
        let model = LatencyModel::sample(&net, 3);
        let (a, b, _) = net.relationships()[0];
        let single = model.path_latency(&[a, b]).unwrap();
        assert_eq!(model.edge_latency(a, b), Some(single));
        let qos = path_qos(&model, &[a, b]).unwrap();
        assert_eq!(qos.hops, 1);
        assert!(path_qos(&model, &[]).is_none());
        assert_eq!(model.path_latency(&[a]), Some(0.0));
    }

    #[test]
    fn geo_model_penalizes_interregion_links() {
        let net = net();
        let geo = topology::GeoModel::assign(&net, 0.85, 3);
        let flat = LatencyModel::sample(&net, 9);
        let geoaware = LatencyModel::sample_with_regions(&net, &geo, 9);
        let (mut cross_sum, mut cross_n) = (0.0, 0usize);
        let (mut local_ratio_sum, mut local_n) = (0.0, 0usize);
        for &(a, b, _) in net.relationships() {
            let f = flat.edge_latency(a, b).unwrap();
            let g = geoaware.edge_latency(a, b).unwrap();
            if geo.region(a) != geo.region(b) {
                cross_sum += g - f;
                cross_n += 1;
            } else {
                local_ratio_sum += g / f;
                local_n += 1;
            }
        }
        assert!(cross_n > 0 && local_n > 0);
        // Same-region edges identical (same jitter stream), cross-region
        // strictly slower on average.
        assert!((local_ratio_sum / local_n as f64 - 1.0).abs() < 1e-9);
        assert!(cross_sum / cross_n as f64 > 15.0);
    }

    #[test]
    fn core_links_faster_than_edge_links() {
        let net = net();
        let model = LatencyModel::sample(&net, 4);
        // Average over tier1-tier1 edges vs stub edges.
        let (mut core_sum, mut core_n, mut edge_sum, mut edge_n) = (0.0, 0, 0.0, 0);
        for &(a, b, _) in net.relationships() {
            let l = model.edge_latency(a, b).unwrap();
            match (net.tier(a), net.tier(b)) {
                (Tier::One, Tier::One) => {
                    core_sum += l;
                    core_n += 1;
                }
                (Tier::Three, Tier::Three) => {
                    edge_sum += l;
                    edge_n += 1;
                }
                _ => {}
            }
        }
        assert!(core_n > 0 && edge_n > 0);
        assert!(core_sum / core_n as f64 <= edge_sum / edge_n as f64);
    }
}
