//! Valley-free path certificates ([`Validate`] impls).
//!
//! [`PathCertificate`] replays an explicit AS path hop by hop against the
//! Gao–Rexford phase machine ([`crate::valleyfree::step`]), reporting the
//! exact hop where a path stops being valley-free instead of the bare
//! boolean [`crate::valleyfree::is_valley_free`] gives. Routing code that
//! constructs paths (BFS, stitching) hooks this in debug builds so a bad
//! path is caught at the producer, not three crates later.

use crate::policy::PolicyGraph;
use crate::valleyfree::{step, Phase};
use netgraph::NodeId;

pub use netgraph::{debug_validate, AuditReport, Finding, Validate};

/// A claim that `path` is a valley-free walk in `pg`.
#[derive(Debug)]
pub struct PathCertificate<'a> {
    pg: &'a PolicyGraph,
    path: &'a [NodeId],
}

impl<'a> PathCertificate<'a> {
    /// Wrap a path for auditing. The empty path is an invalid claim.
    pub fn new(pg: &'a PolicyGraph, path: &'a [NodeId]) -> Self {
        PathCertificate { pg, path }
    }

    /// Hop count of the claimed path (vertices minus one).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

impl Validate for PathCertificate<'_> {
    /// Replay the path through the phase machine:
    ///
    /// 1. the path is non-empty and every vertex id is in range;
    /// 2. no vertex repeats (valley-free BFS never emits loops);
    /// 3. every hop is a real policy edge;
    /// 4. the phase machine accepts every hop — at most one peering /
    ///    IXP crossing, never uphill after going downhill.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("routing::PathCertificate");
        let n = self.pg.node_count();
        rep.check("path.nonempty", !self.path.is_empty(), || {
            "empty path claimed valley-free".into()
        });
        let oob = self.path.iter().filter(|v| v.index() >= n).count();
        rep.check("path.ids-in-range", oob == 0, || {
            format!("{oob} vertices outside 0..{n}")
        });
        if self.path.is_empty() || oob > 0 {
            return rep;
        }

        let mut seen = vec![false; n];
        let mut repeats = 0usize;
        for &v in self.path {
            if seen[v.index()] {
                repeats += 1;
            }
            seen[v.index()] = true;
        }
        rep.check("path.simple", repeats == 0, || {
            format!("{repeats} repeated vertices")
        });

        let mut phase = Phase::Up;
        for (i, w) in self.path.windows(2).enumerate() {
            let (u, v) = (w[0], w[1]);
            let Some(class) = self.pg.class(u, v) else {
                rep.check("path.edges-exist", false, || {
                    format!("hop {i}: {u} -> {v} is not a policy edge")
                });
                return rep;
            };
            match step(phase, class) {
                Some(next) => phase = next,
                None => {
                    rep.check("path.valley-free", false, || {
                        format!("hop {i}: {u} -> {v} ({class:?}) illegal from {phase:?} phase")
                    });
                    return rep;
                }
            }
        }
        rep.check("path.valley-free", true, String::new);
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valleyfree::{is_valley_free, valley_free_path, valley_free_reach, ReachOptions};
    use netgraph::graph::from_edges;
    use proptest::prelude::*;
    use topology::{Internet, InternetConfig, NodeKind, Relationship, Scale};

    fn fixture() -> PolicyGraph {
        let edges = [
            (0u32, 2u32, Relationship::ProviderOfB),
            (0, 3, Relationship::ProviderOfB),
            (1, 4, Relationship::ProviderOfB),
            (0, 1, Relationship::Peer),
            (2, 5, Relationship::IxpMembership),
            (3, 5, Relationship::IxpMembership),
        ];
        let g = from_edges(6, edges.iter().map(|&(a, b, _)| (NodeId(a), NodeId(b))));
        let kinds = vec![
            NodeKind::Tier1,
            NodeKind::Tier1,
            NodeKind::Access,
            NodeKind::Access,
            NodeKind::Access,
            NodeKind::Ixp,
        ];
        let names = (0..6).map(|i| format!("n{i}")).collect();
        let rels = edges
            .iter()
            .map(|&(a, b, r)| (NodeId(a), NodeId(b), r))
            .collect();
        PolicyGraph::new(&Internet::from_parts(g, kinds, names, rels))
    }

    #[test]
    fn bfs_paths_certify() {
        let pg = fixture();
        let path = valley_free_path(&pg, NodeId(2), NodeId(4)).expect("reachable");
        let cert = PathCertificate::new(&pg, &path);
        let rep = cert.audit();
        assert!(rep.is_ok(), "{rep}");
        assert_eq!(cert.hops(), 3);
    }

    #[test]
    fn valley_is_pinpointed() {
        let pg = fixture();
        // T0 -> C0 -> IXP: downhill then fabric entry — hop 1 is illegal.
        let path = [NodeId(0), NodeId(2), NodeId(5)];
        let rep = PathCertificate::new(&pg, &path).audit();
        assert!(!rep.is_ok());
        let f = rep
            .findings
            .iter()
            .find(|f| f.invariant == "path.valley-free")
            .expect("valley finding");
        assert!(f.detail.contains("hop 1"), "{rep}");
    }

    #[test]
    fn non_edge_is_pinpointed() {
        let pg = fixture();
        let path = [NodeId(2), NodeId(4)];
        let rep = PathCertificate::new(&pg, &path).audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "path.edges-exist"),
            "{rep}"
        );
    }

    #[test]
    fn empty_path_rejected() {
        let pg = fixture();
        assert!(!PathCertificate::new(&pg, &[]).audit().is_ok());
    }

    proptest! {
        /// Every path the BFS produces on a generated Internet certifies,
        /// and the certificate agrees with `is_valley_free`.
        #[test]
        fn bfs_outputs_always_certify(seed in 0u64..40, src in 0usize..60, dst in 0usize..60) {
            let net = InternetConfig::scaled(Scale::Tiny).generate(seed);
            let pg = PolicyGraph::new(&net);
            let n = pg.node_count();
            let (src, dst) = (NodeId((src % n) as u32), NodeId((dst % n) as u32));
            if let Some(path) = valley_free_path(&pg, src, dst) {
                let rep = PathCertificate::new(&pg, &path).audit();
                prop_assert!(rep.is_ok(), "{}", rep);
                prop_assert!(is_valley_free(&pg, &path));
            }
        }

        /// Grafting an uphill continuation onto a completed (Down-phase)
        /// path manufactures a valley; the certificate must reject it.
        #[test]
        fn injected_valleys_always_rejected(seed in 0u64..20, src in 0usize..40) {
            let net = InternetConfig::scaled(Scale::Tiny).generate(seed);
            let pg = PolicyGraph::new(&net);
            let n = pg.node_count();
            let src = NodeId((src % n) as u32);
            let reach = valley_free_reach(&pg, src, ReachOptions::default());
            // Find a reachable dst whose BFS path ends Down and has a
            // provider to climb to: extend and expect rejection.
            let mut checked = false;
            for dst in (0..n).map(|v| NodeId(v as u32)) {
                if dst == src || !reach.contains(dst) {
                    continue;
                }
                let Some(path) = valley_free_path(&pg, src, dst) else { continue };
                if !is_valley_free(&pg, &path) || path.len() < 2 {
                    continue;
                }
                // Replay to find the final phase.
                let mut phase = Phase::Up;
                for w in path.windows(2) {
                    if let Some(next) = pg.class(w[0], w[1]).and_then(|c| step(phase, c)) {
                        phase = next;
                    }
                }
                if phase != Phase::Down {
                    continue;
                }
                let last = path[path.len() - 1];
                let Some(&(up, _)) = pg
                    .out_edges(last)
                    .iter()
                    .find(|&&(v, c)| {
                        c == crate::policy::EdgeClass::ToProvider && !path.contains(&v)
                    })
                else {
                    continue;
                };
                let mut bad = path.clone();
                bad.push(up);
                let rep = PathCertificate::new(&pg, &bad).audit();
                prop_assert!(!rep.is_ok(), "climbing after descent accepted: {}", rep);
                prop_assert!(!is_valley_free(&pg, &bad));
                checked = true;
                break;
            }
            // Tiny graphs occasionally lack such a pattern from this src;
            // the property only binds when a candidate exists.
            let _ = checked;
        }
    }
}
