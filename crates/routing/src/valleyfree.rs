//! Valley-free (Gao–Rexford) reachability.
//!
//! A path is valley-free when it climbs customer→provider links, crosses
//! at most one peering (an IXP fabric crossing counts as that single
//! peering), and then only descends provider→customer links. Reachability
//! from a source is computed by BFS over `(vertex, phase)` states — two
//! states per vertex, so `O(|V| + |E|)` per source. The state graph is
//! exposed to the shared traversal engine as a [`ValleyFreeView`], so the
//! walk itself is the same arena BFS every other evaluation uses.

use crate::policy::{EdgeClass, PolicyGraph};
use netgraph::{with_arena, GraphView, NodeId, NodeSet};
use serde::{Deserialize, Serialize};

/// Phase of a valley-free walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Still climbing (only customer→provider hops so far).
    Up,
    /// Past the apex (a peering or a downhill hop happened).
    Down,
}

/// Transition rule: from `phase`, may we traverse an edge of `class`, and
/// in which phase do we arrive?
///
/// Returns `None` when the hop violates valley-freeness.
pub fn step(phase: Phase, class: EdgeClass) -> Option<Phase> {
    match (phase, class) {
        (Phase::Up, EdgeClass::ToProvider) => Some(Phase::Up),
        (Phase::Up, EdgeClass::Peer) => Some(Phase::Down),
        // Entering the exchange fabric is the first half of a peering;
        // we stay Up until we exit toward the far member.
        (Phase::Up, EdgeClass::IntoIxp) => Some(Phase::Up),
        (Phase::Up, EdgeClass::OutOfIxp) => Some(Phase::Down),
        (_, EdgeClass::ToCustomer) => Some(Phase::Down),
        // Converted alliance links carry traffic in any phase and
        // preserve it.
        (phase, EdgeClass::AllianceFree) => Some(phase),
        // Down phase: no more climbing, peering or fabric entry.
        (Phase::Down, _) => None,
    }
}

/// Transition rule inside a brokerage alliance: members have signed
/// mutual transit agreements (Section 7), so a peering or fabric hop
/// *between two alliance members* carries traffic in any phase and does
/// not consume the single valley-free peering step.
///
/// Non-alliance hops fall back to [`step`].
pub fn step_with_alliance(
    phase: Phase,
    class: EdgeClass,
    u_in_alliance: bool,
    v_in_alliance: bool,
) -> Option<Phase> {
    if u_in_alliance
        && v_in_alliance
        && matches!(
            class,
            EdgeClass::Peer | EdgeClass::IntoIxp | EdgeClass::OutOfIxp
        )
    {
        return Some(phase);
    }
    step(phase, class)
}

/// Options for [`valley_free_reach`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ReachOptions<'a> {
    /// When set, only *dominated* hops are allowed: an edge `u → v` is
    /// traversable only if `u` or `v` is a broker.
    pub brokers: Option<&'a NodeSet>,
    /// When set, peer/fabric hops between two members of this set are
    /// phase-preserving (see [`step_with_alliance`]). Fig. 5b's peering
    /// conversion is evaluated with `alliance = brokers`.
    pub alliance: Option<&'a NodeSet>,
    /// Hop budget (`None` = unbounded).
    pub max_hops: Option<u32>,
}

/// The valley-free `(vertex, phase)` product graph as a
/// [`netgraph::GraphView`]: state `2·v + 1` is vertex `v` in
/// [`Phase::Down`], state `2·v` is `v` in [`Phase::Up`]; an edge exists
/// between states exactly when [`step_with_alliance`] allows the hop (and
/// the hop is B-dominated, when a broker filter is set).
///
/// Walks start at `2·src` (the `Up` phase); one state transition is one
/// hop, so the engine's depth bound is the hop budget.
#[derive(Debug, Clone, Copy)]
pub struct ValleyFreeView<'a> {
    pg: &'a PolicyGraph,
    opts: ReachOptions<'a>,
}

impl<'a> ValleyFreeView<'a> {
    /// The state graph of `pg` under `opts` (the hop budget in `opts` is
    /// ignored here — pass it to the traversal instead).
    pub fn new(pg: &'a PolicyGraph, opts: ReachOptions<'a>) -> Self {
        ValleyFreeView { pg, opts }
    }

    /// The underlying vertex of state `s`.
    pub fn vertex_of(s: NodeId) -> NodeId {
        NodeId(s.0 / 2)
    }

    /// The start state for walks beginning at `src` (phase `Up`).
    pub fn start_state(src: NodeId) -> NodeId {
        NodeId(2 * src.0)
    }
}

impl GraphView for ValleyFreeView<'_> {
    fn node_count(&self) -> usize {
        2 * self.pg.node_count()
    }

    fn for_each_neighbor(&self, s: NodeId, mut visit: impl FnMut(NodeId)) {
        let () = netgraph::counter!("valleyfree.state_expansions");
        let u = ValleyFreeView::vertex_of(s);
        let phase = if s.0 % 2 == 1 { Phase::Down } else { Phase::Up };
        let u_is_broker = self.opts.brokers.is_none_or(|b| b.contains(u));
        let u_in_alliance = self.opts.alliance.is_some_and(|a| a.contains(u));
        for &(v, class) in self.pg.out_edges(u) {
            if let Some(brokers) = self.opts.brokers {
                if !u_is_broker && !brokers.contains(v) {
                    continue;
                }
            }
            let v_in_alliance = self.opts.alliance.is_some_and(|a| a.contains(v));
            let Some(next) = step_with_alliance(phase, class, u_in_alliance, v_in_alliance) else {
                continue;
            };
            visit(NodeId(2 * v.0 + u32::from(next == Phase::Down)));
        }
    }
}

/// Set of vertices reachable from `src` by valley-free paths (optionally
/// also B-dominated and hop-bounded). `src` itself is included.
pub fn valley_free_reach(pg: &PolicyGraph, src: NodeId, opts: ReachOptions<'_>) -> NodeSet {
    let n = pg.node_count();
    let mut reached = NodeSet::new(n);
    let view = ValleyFreeView::new(pg, opts);
    with_arena(|arena| {
        arena.run_bounded(
            view,
            ValleyFreeView::start_state(src),
            opts.max_hops.unwrap_or(u32::MAX),
        );
        for &s in arena.visit_order() {
            reached.insert(ValleyFreeView::vertex_of(s));
        }
    });
    reached
}

/// One valley-free path from `src` to `dst`, if any (shortest in hops).
pub fn valley_free_path(pg: &PolicyGraph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst {
        return Some(vec![src]);
    }
    let view = ValleyFreeView::new(pg, ReachOptions::default());
    let states = with_arena(|arena| {
        let hit = arena.run_to_target(view, ValleyFreeView::start_state(src), |s| {
            ValleyFreeView::vertex_of(s) == dst
        })?;
        arena.path_to(hit)
    })?;
    let path: Vec<NodeId> = states
        .iter()
        .map(|&s| ValleyFreeView::vertex_of(s))
        .collect();
    netgraph::validate::debug_validate(&crate::validate::PathCertificate::new(pg, &path));
    Some(path)
}

/// Verify that an explicit path is valley-free under `pg`'s edge classes.
///
/// Returns `false` for empty paths and paths using non-edges.
pub fn is_valley_free(pg: &PolicyGraph, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    let mut phase = Phase::Up;
    for w in path.windows(2) {
        let Some(class) = pg.class(w[0], w[1]) else {
            return false;
        };
        match step(phase, class) {
            Some(next) => phase = next,
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;
    use topology::{Internet, NodeKind, Relationship};

    /// Hand-built fixture:
    ///
    /// ```text
    ///        T0 ===peer=== T1          (providers)
    ///       /  \            \
    ///      C0   C1           C2        (customers / stubs)
    ///      |                           C0 also member of IXP X with C1
    ///      X(ixp) --- C1
    /// ```
    fn fixture() -> (Internet, PolicyGraph) {
        let edges = [
            (0u32, 2u32, Relationship::ProviderOfB), // T0 provider of C0
            (0, 3, Relationship::ProviderOfB),       // T0 provider of C1
            (1, 4, Relationship::ProviderOfB),       // T1 provider of C2
            (0, 1, Relationship::Peer),              // T0 -- T1
            (2, 5, Relationship::IxpMembership),     // C0 at IXP
            (3, 5, Relationship::IxpMembership),     // C1 at IXP
        ];
        let g = from_edges(6, edges.iter().map(|&(a, b, _)| (NodeId(a), NodeId(b))));
        let kinds = vec![
            NodeKind::Tier1,
            NodeKind::Tier1,
            NodeKind::Access,
            NodeKind::Access,
            NodeKind::Access,
            NodeKind::Ixp,
        ];
        let names = (0..6).map(|i| format!("n{i}")).collect();
        let rels = edges
            .iter()
            .map(|&(a, b, r)| (NodeId(a), NodeId(b), r))
            .collect();
        let net = Internet::from_parts(g, kinds, names, rels);
        let pg = PolicyGraph::new(&net);
        (net, pg)
    }

    #[test]
    fn step_table() {
        assert_eq!(step(Phase::Up, EdgeClass::ToProvider), Some(Phase::Up));
        assert_eq!(step(Phase::Up, EdgeClass::Peer), Some(Phase::Down));
        assert_eq!(step(Phase::Up, EdgeClass::ToCustomer), Some(Phase::Down));
        assert_eq!(step(Phase::Down, EdgeClass::ToCustomer), Some(Phase::Down));
        assert_eq!(step(Phase::Down, EdgeClass::ToProvider), None);
        assert_eq!(step(Phase::Up, EdgeClass::AllianceFree), Some(Phase::Up));
        assert_eq!(
            step(Phase::Down, EdgeClass::AllianceFree),
            Some(Phase::Down)
        );
        assert_eq!(step(Phase::Down, EdgeClass::Peer), None);
        assert_eq!(step(Phase::Down, EdgeClass::IntoIxp), None);
        assert_eq!(step(Phase::Up, EdgeClass::IntoIxp), Some(Phase::Up));
        assert_eq!(step(Phase::Up, EdgeClass::OutOfIxp), Some(Phase::Down));
    }

    #[test]
    fn customer_reaches_via_provider_and_peer() {
        let (_, pg) = fixture();
        // C0 -> T0 -> T1 -> C2: up, peer, down — valid.
        let reach = valley_free_reach(&pg, NodeId(2), ReachOptions::default());
        assert!(reach.contains(NodeId(4)));
        let path = valley_free_path(&pg, NodeId(2), NodeId(4)).unwrap();
        assert_eq!(path, vec![NodeId(2), NodeId(0), NodeId(1), NodeId(4)]);
        assert!(is_valley_free(&pg, &path));
    }

    #[test]
    fn ixp_crossing_counts_as_single_peering() {
        let (_, pg) = fixture();
        // C0 -> IXP -> C1 is a single peering: valid.
        let path = valley_free_path(&pg, NodeId(2), NodeId(3)).unwrap();
        assert!(is_valley_free(&pg, &path));
        // But C0 -> IXP -> C1 -> T0 would climb after a peering: the
        // reach from C0 must NOT include T1 via the IXP + C1 + T0 + peer
        // route... T1 is still reachable via C0's own provider though.
        // Check instead that a manual invalid path is rejected:
        assert!(!is_valley_free(
            &pg,
            &[NodeId(2), NodeId(5), NodeId(3), NodeId(0)]
        ));
    }

    #[test]
    fn no_valley_through_customer() {
        let (_, pg) = fixture();
        // T0 -> C0 -> IXP -> C1 (down then peer) is a valley: invalid.
        assert!(!is_valley_free(
            &pg,
            &[NodeId(0), NodeId(2), NodeId(5), NodeId(3)]
        ));
        // Two peerings: C0 -IXP- C1 then C1->T0 peer? T0--T1 peer after
        // OutOfIxp is Down: invalid.
        assert!(!is_valley_free(
            &pg,
            &[NodeId(2), NodeId(5), NodeId(3), NodeId(0), NodeId(1)]
        ));
    }

    #[test]
    fn provider_reaches_customers_downhill() {
        let (_, pg) = fixture();
        let reach = valley_free_reach(&pg, NodeId(0), ReachOptions::default());
        for v in [1u32, 2, 3, 4] {
            assert!(reach.contains(NodeId(v)), "T0 should reach n{v}");
        }
    }

    #[test]
    fn domination_filter_blocks_unbrokered_hops() {
        let (_, pg) = fixture();
        // Brokers = {T0}: hop T1 -> C2 has no broker endpoint.
        let brokers = NodeSet::from_iter_with_capacity(6, [NodeId(0)]);
        let reach = valley_free_reach(
            &pg,
            NodeId(2),
            ReachOptions {
                brokers: Some(&brokers),
                alliance: None,
                max_hops: None,
            },
        );
        assert!(reach.contains(NodeId(1))); // T0-T1 dominated by T0
        assert!(!reach.contains(NodeId(4))); // T1-C2 not dominated
    }

    #[test]
    fn hop_budget_respected() {
        let (_, pg) = fixture();
        let reach = valley_free_reach(
            &pg,
            NodeId(2),
            ReachOptions {
                brokers: None,
                alliance: None,
                max_hops: Some(1),
            },
        );
        assert!(reach.contains(NodeId(0)));
        assert!(!reach.contains(NodeId(1)));
    }

    #[test]
    fn path_to_self_and_unreachable() {
        let (_, pg) = fixture();
        assert_eq!(
            valley_free_path(&pg, NodeId(2), NodeId(2)).unwrap(),
            vec![NodeId(2)]
        );
        // C2's valley-free world: C2 -> T1 -> (peer T0) -> customers; IXP
        // unreachable? C2 -> T1 -> T0 -> C0 -> IXP would be Down then
        // IntoIxp: invalid. So IXP (5) unreachable from C2.
        assert!(valley_free_path(&pg, NodeId(4), NodeId(5)).is_none());
        assert!(!is_valley_free(&pg, &[]));
    }
}
