//! Directional E2E connectivity under business relationships
//! (Fig. 5b/c of the paper).
//!
//! "Directional" means traffic must follow valley-free export policies
//! instead of the bidirectional free-path assumption of Section 6.1.
//! [`directional_connectivity`] measures the fraction of ordered pairs
//! reachable by a valley-free, B-dominated path; combined with
//! [`PolicyGraph::convert_interbroker_to_peering`] it reproduces the
//! "30 % of inter-broker links converted to peering repairs most of the
//! loss" result.

use crate::policy::PolicyGraph;
use crate::valleyfree::{valley_free_reach, ReachOptions};
use brokerset::connectivity::sample_std_error;
use brokerset::SourceMode;
use netgraph::{par, NodeId, NodeSet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Outcome of a directional connectivity measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectionalReport {
    /// Estimated fraction of ordered pairs `(u, v)` with a valley-free,
    /// B-dominated path from `u` to `v`.
    pub fraction: f64,
    /// Sources evaluated.
    pub sources: usize,
    /// One-sigma sampling error: `Some(0.0)` when exact, `None` when
    /// unknowable (single-source samples).
    pub std_error: Option<f64>,
}

/// Measure directional connectivity.
///
/// `brokers = None` gives the unconstrained valley-free baseline (how
/// much connectivity business relationships allow at all); `Some(B)`
/// additionally requires every hop to be dominated by `B`. Alliance
/// relaxations come only from explicitly converted
/// [`crate::EdgeClass::AllianceFree`] links, mirroring the paper's
/// Fig. 5b conversion experiment.
pub fn directional_connectivity(
    pg: &PolicyGraph,
    brokers: Option<&NodeSet>,
    mode: SourceMode,
) -> DirectionalReport {
    directional_connectivity_threaded(pg, brokers, mode, 1)
}

/// [`directional_connectivity`] with the per-source valley-free walks run
/// on `threads` workers (`0` = all hardware threads) via
/// [`netgraph::par`]. Per-source fractions come back in source order, so
/// the mean and error estimate are bit-identical at every thread count.
pub fn directional_connectivity_threaded(
    pg: &PolicyGraph,
    brokers: Option<&NodeSet>,
    mode: SourceMode,
    threads: usize,
) -> DirectionalReport {
    let n = pg.node_count();
    if n < 2 {
        return DirectionalReport {
            fraction: 0.0,
            sources: 0,
            std_error: Some(0.0),
        };
    }
    let sources: Vec<NodeId> = match mode {
        SourceMode::Exact => (0..n).map(NodeId::from).collect(),
        SourceMode::Sampled { count, seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut all: Vec<NodeId> = (0..n).map(NodeId::from).collect();
            all.shuffle(&mut rng);
            all.truncate(count.max(1).min(n));
            all
        }
    };
    // Chunk-invariant per-source map: adaptive chunk sizing is safe here
    // (each item yields an independent f64; the ordered flatten makes the
    // output identical for every thread count). Pool jobs are 'static:
    // the closure owns one policy-graph (and broker-set) clone.
    let pg_owned = pg.clone();
    let brokers_owned: Option<NodeSet> = brokers.cloned();
    let fractions: Vec<f64> = par::map_auto(&sources, threads, move |&s| {
        let reach = valley_free_reach(
            &pg_owned,
            s,
            ReachOptions {
                brokers: brokers_owned.as_ref(),
                alliance: None,
                max_hops: None,
            },
        );
        (reach.len() - 1) as f64 / (n - 1) as f64
    });
    let mean = par::sum_f64(&fractions) / fractions.len() as f64;
    let std_error = sample_std_error(&fractions, n);
    DirectionalReport {
        fraction: mean,
        sources: sources.len(),
        std_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    #[test]
    fn directional_below_bidirectional() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(31);
        let g = net.graph();
        let pg = PolicyGraph::new(&net);
        let sel = max_subgraph_greedy(g, 60);
        let mode = SourceMode::Sampled {
            count: 120,
            seed: 4,
        };

        let bidir = brokerset::lhop_curve(g, sel.brokers(), 64, mode)
            .fractions
            .last()
            .copied()
            .unwrap();
        let dir = directional_connectivity(&pg, Some(sel.brokers()), mode);
        assert!(
            dir.fraction < bidir,
            "directional {} should be below bidirectional {bidir}",
            dir.fraction
        );
        assert!(dir.fraction > 0.0);
    }

    #[test]
    fn peering_conversion_recovers_connectivity() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(31);
        let sel = max_subgraph_greedy(net.graph(), 60);
        let mode = SourceMode::Sampled {
            count: 120,
            seed: 4,
        };

        let pg = PolicyGraph::new(&net);
        let before = directional_connectivity(&pg, Some(sel.brokers()), mode);

        let mut converted = pg.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let n_conv = converted.convert_interbroker_to_peering(sel.brokers(), 1.0, &mut rng);
        assert!(n_conv > 0);
        let after = directional_connectivity(&converted, Some(sel.brokers()), mode);
        assert!(
            after.fraction >= before.fraction,
            "conversion should not reduce connectivity ({} -> {})",
            before.fraction,
            after.fraction
        );
    }

    #[test]
    fn unconstrained_valley_free_upper_bounds_dominated() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(33);
        let pg = PolicyGraph::new(&net);
        let sel = max_subgraph_greedy(net.graph(), 40);
        let mode = SourceMode::Sampled { count: 80, seed: 6 };
        let free = directional_connectivity(&pg, None, mode);
        let dom = directional_connectivity(&pg, Some(sel.brokers()), mode);
        assert!(free.fraction >= dom.fraction - 1e-12);
    }

    #[test]
    fn deterministic_sampling() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(35);
        let pg = PolicyGraph::new(&net);
        let mode = SourceMode::Sampled { count: 40, seed: 9 };
        let a = directional_connectivity(&pg, None, mode);
        let b = directional_connectivity(&pg, None, mode);
        assert_eq!(a, b);
    }
}
