//! Dependency-DAG reconfiguration planner with certificate-checked
//! intermediate states.
//!
//! Changing a broker deployment — maintenance epochs swapping hubs in
//! and out ([`brokerset` incremental], PR 7), chaos recovery re-enlisting
//! defected brokers (PR 5), operator intent — is not atomic: activations,
//! deactivations and session migrations land one at a time, and a naive
//! sequence can pass through states where a customer vertex loses
//! coverage or a supervised session's dominating path loses its broker
//! mid-flight, even though both endpoint configurations are valid. This
//! module plans the transition instead:
//!
//! 1. **Diff** the current and target broker sets plus the affected
//!    sessions into atomic [`Step`]s (`ActivateBroker`,
//!    `DeactivateBroker`, `MigrateSession`).
//! 2. **Discover dependencies** by checking which candidate intermediate
//!    states stay invariant-safe: an edge A → B means "B's intermediate
//!    state is only safe after A". Three families of edges suffice for
//!    safety under *every* topological order (proved per-hop / per-vertex
//!    below): activate-before-migrate, migrate-before-deactivate, and
//!    cover-before-uncover.
//! 3. **Certify** the DAG: [`PlanCertificate`] re-derives acyclicity,
//!    step-set-equals-config-diff, the order-safety conditions and every
//!    canonical topological cut state through the [`Validate`] machinery.
//! 4. **Execute** antichains (Kahn layers) in parallel on the persistent
//!    [`netgraph::par`] pool via `run_layers`: deterministic step order,
//!    bit-identical trace for any thread count, and a *modeled* makespan
//!    (critical-path cost units) against the sequential cost total — the
//!    planner's speedup claim is deterministic, never wall-clock.
//!
//! The safety argument, per constraint:
//!
//! - a vertex covered by both configurations but not by the surviving
//!   brokers keeps coverage at every cut because each deactivation that
//!   covers it transitively waits for an activation that covers it;
//! - a migrating session's new path is dominated when the migration runs
//!   because every hop either has a surviving-broker endpoint or the
//!   migration waits for an activated endpoint;
//! - its old path stays dominated until it migrates because every
//!   deactivated endpoint of an un-survivor-dominated hop waits for the
//!   migration.
//!
//! Since steps within an antichain touch disjoint state (distinct
//! brokers, distinct sessions), intra-layer order cannot matter, and the
//! per-layer cut states are exactly the states any execution passes
//! through.

use crate::stitch::{stitch_path, StitchedPath};
use crate::validate::{AuditReport, Validate};
use netgraph::{par, Graph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// One atomic reconfiguration action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Step {
    /// Enlist a broker: it starts dominating edges immediately.
    ActivateBroker(NodeId),
    /// Retire a broker: it stops dominating edges immediately.
    DeactivateBroker(NodeId),
    /// Switch session `session` from its old stitched path (anchored at
    /// `from`) to its new one (anchored at `to`).
    MigrateSession {
        /// Index into the planned session list.
        session: usize,
        /// Canonical broker of the old path (`to` when the session had
        /// no old path and is being brought up).
        from: NodeId,
        /// Canonical broker of the new path.
        to: NodeId,
    },
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Step::ActivateBroker(b) => write!(f, "activate({b})"),
            Step::DeactivateBroker(b) => write!(f, "deactivate({b})"),
            Step::MigrateSession { session, from, to } => {
                write!(f, "migrate(s{session}: {from} -> {to})")
            }
        }
    }
}

/// Typed rejection reasons for a candidate plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A broker id is outside the graph's vertex range.
    BrokerOutOfRange {
        /// The offending broker.
        broker: NodeId,
    },
    /// A session endpoint is outside the graph's vertex range.
    SessionOutOfRange {
        /// Index of the offending pair.
        session: usize,
        /// The offending endpoint.
        endpoint: NodeId,
    },
    /// `deps` is not sized like `steps`.
    MismatchedDeps {
        /// Steps supplied.
        steps: usize,
        /// Dependency rows supplied.
        deps: usize,
    },
    /// A dependency references a step index that does not exist.
    DepOutOfRange {
        /// The depending step.
        step: usize,
        /// The out-of-range dependency.
        dep: usize,
    },
    /// The config diff requires this step but the plan lacks it.
    MissingStep {
        /// The absent step.
        step: Step,
    },
    /// The plan contains a step the config diff does not require.
    UnexpectedStep {
        /// The surplus step.
        step: Step,
    },
    /// The same step appears more than once.
    DuplicateStep {
        /// The repeated step.
        step: Step,
    },
    /// The dependency graph is not acyclic.
    Cycle {
        /// Steps left unschedulable when Kahn layering stalled.
        stuck: usize,
    },
    /// Some topological order of the plan reaches an invariant-violating
    /// intermediate state (a required dependency edge is missing).
    UnsafeOrder {
        /// The step whose scheduling is under-constrained.
        step: usize,
        /// The violated safety condition.
        invariant: &'static str,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::BrokerOutOfRange { broker } => {
                write!(f, "broker {broker} outside the vertex range")
            }
            PlanError::SessionOutOfRange { session, endpoint } => {
                write!(
                    f,
                    "session {session} endpoint {endpoint} outside the vertex range"
                )
            }
            PlanError::MismatchedDeps { steps, deps } => {
                write!(f, "{deps} dependency rows for {steps} steps")
            }
            PlanError::DepOutOfRange { step, dep } => {
                write!(f, "step {step} depends on nonexistent step {dep}")
            }
            PlanError::MissingStep { step } => write!(f, "config diff requires missing {step}"),
            PlanError::UnexpectedStep { step } => {
                write!(f, "{step} is not part of the config diff")
            }
            PlanError::DuplicateStep { step } => write!(f, "{step} appears more than once"),
            PlanError::Cycle { stuck } => {
                write!(f, "dependency cycle: {stuck} steps unschedulable")
            }
            PlanError::UnsafeOrder { step, invariant } => {
                write!(f, "step {step} can run before its {invariant} prerequisite")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// How the planner disposed of one supervised session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// No dominating path under the target configuration: the session is
    /// torn down by the transition and constrains nothing.
    Dropped,
    /// Identical path under both configurations: no step, but every
    /// intermediate state must keep the path dominated.
    Kept,
    /// The session switches paths at the given step index.
    Migrating {
        /// Index of the session's `MigrateSession` step.
        step: usize,
    },
}

/// One supervised session as the planner sees it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedSession {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Stitched path under the current configuration, if any.
    pub before: Option<StitchedPath>,
    /// Stitched path under the target configuration, if any.
    pub after: Option<StitchedPath>,
    /// Disposition.
    pub kind: SessionKind,
}

/// Headline plan shape for benchmark records and the CLI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanSummary {
    /// Total atomic steps.
    pub steps: usize,
    /// Broker activations.
    pub activations: usize,
    /// Broker deactivations.
    pub deactivations: usize,
    /// Session migrations.
    pub migrations: usize,
    /// Sessions kept on an unchanged path.
    pub kept: usize,
    /// Sessions with no path under the target configuration.
    pub dropped: usize,
    /// Dependency edges in the DAG.
    pub edges: usize,
    /// Widest antichain (peak parallelism).
    pub width: usize,
    /// Number of Kahn layers (critical-path length in steps).
    pub depth: usize,
    /// Modeled parallel makespan: sum over layers of the costliest step.
    pub makespan_units: u64,
    /// Modeled sequential cost: sum of all step costs.
    pub sequential_units: u64,
    /// `sequential_units / makespan_units` (1.0 for the empty plan).
    pub speedup: f64,
}

/// Record of one executed step; the trace is the concatenation in
/// (layer, canonical step order) — bit-identical for every thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index into [`ReconfigPlan::steps`].
    pub step: u32,
    /// Modeled cost units.
    pub cost: u64,
    /// FNV-1a digest of the step's re-derived effect (neighborhood for
    /// broker flips, verified path for migrations).
    pub check: u64,
}

/// Result of executing a plan layer by layer on the worker pool.
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// Per-layer step records, in canonical order.
    pub layers: Vec<Vec<StepRecord>>,
    /// FNV-1a digest of the whole trace.
    pub checksum: u64,
    /// Modeled critical-path cost.
    pub makespan_units: u64,
    /// Modeled sequential cost.
    pub sequential_units: u64,
    /// Cut states validated (one per layer, plus the initial state).
    pub cuts_validated: usize,
    /// Audit of every cut state the execution passed through.
    pub cut_audit: AuditReport,
}

impl ExecTrace {
    /// Planned-vs-sequential makespan ratio (1.0 for the empty plan).
    pub fn speedup(&self) -> f64 {
        ratio(self.sequential_units, self.makespan_units)
    }
}

fn ratio(seq: u64, mk: u64) -> f64 {
    if mk == 0 {
        1.0
    } else {
        // Both operands are exact small integers; the division is the
        // only rounding step, so the ratio is deterministic.
        seq as f64 / mk as f64
    }
}

/// FNV-1a over a stream of words — the repo's standard order-sensitive
/// trace digest.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Does `set` dominate the hop `(u, v)`?
fn dominates_hop(set: &NodeSet, u: NodeId, v: NodeId) -> bool {
    set.contains(u) || set.contains(v)
}

/// Canonical broker of a stitched path: the first broker position, or
/// the path head for the degenerate single-vertex path.
fn anchor(p: &StitchedPath) -> NodeId {
    p.broker_positions.first().map_or(p.path[0], |&i| p.path[i])
}

/// A dependency-DAG reconfiguration plan between two broker
/// configurations over one (static) graph.
///
/// Build with [`ReconfigPlan::build`]; validate foreign or tampered step
/// lists with [`ReconfigPlan::from_parts`], which rejects cycles,
/// config-diff mismatches and under-constrained orders with typed
/// [`PlanError`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigPlan {
    n: usize,
    current: NodeSet,
    target: NodeSet,
    sessions: Vec<PlannedSession>,
    steps: Vec<Step>,
    /// `preds[i]` = steps that must complete before step `i`.
    preds: Vec<BTreeSet<usize>>,
    /// Kahn layers over `steps`, each ascending by step index.
    layers: Vec<Vec<usize>>,
}

impl ReconfigPlan {
    /// Plan the transition `current -> target` for the supervised
    /// session `pairs` on `g`.
    ///
    /// Sessions are stitched under both configurations; a session whose
    /// path changes gets a `MigrateSession` step, one with no target
    /// path is dropped (it constrains nothing). Construction is
    /// deterministic: steps are ordered activations-ascending, then
    /// migrations by session index, then deactivations-ascending.
    pub fn build(
        g: &Graph,
        current: &NodeSet,
        target: &NodeSet,
        pairs: &[(NodeId, NodeId)],
    ) -> Result<ReconfigPlan, PlanError> {
        let (sessions, steps, preds) = construct(g, current, target, pairs)?;
        let layers = layer_steps(steps.len(), &preds)?;
        let plan = ReconfigPlan {
            n: g.node_count(),
            current: current.clone(),
            target: target.clone(),
            sessions,
            steps,
            preds,
            layers,
        };
        plan.order_safety(g)?;
        Ok(plan)
    }

    /// Adopt a foreign `(steps, deps)` pair for the same transition,
    /// validating it instead of trusting it.
    ///
    /// Rejects plans whose step set diverges from the config diff
    /// ([`PlanError::MissingStep`] / [`PlanError::UnexpectedStep`] /
    /// [`PlanError::DuplicateStep`]), whose dependencies are cyclic or
    /// dangling, and — the interesting case — whose dependencies are too
    /// weak, i.e. some topological order reaches an invariant-violating
    /// intermediate state ([`PlanError::UnsafeOrder`]).
    pub fn from_parts(
        g: &Graph,
        current: &NodeSet,
        target: &NodeSet,
        pairs: &[(NodeId, NodeId)],
        steps: Vec<Step>,
        deps: Vec<BTreeSet<usize>>,
    ) -> Result<ReconfigPlan, PlanError> {
        let (ref_sessions, ref_steps, _) = construct(g, current, target, pairs)?;
        if deps.len() != steps.len() {
            return Err(PlanError::MismatchedDeps {
                steps: steps.len(),
                deps: deps.len(),
            });
        }
        for (i, row) in deps.iter().enumerate() {
            if let Some(&d) = row.iter().find(|&&d| d >= steps.len()) {
                return Err(PlanError::DepOutOfRange { step: i, dep: d });
            }
        }
        // Step multiset must equal the config diff exactly. Migration
        // steps are compared with the reference plan's canonical
        // anchors, so a forged from/to also reads as unexpected.
        let mut seen: BTreeSet<Step> = BTreeSet::new();
        for &s in &steps {
            if !seen.insert(s) {
                return Err(PlanError::DuplicateStep { step: s });
            }
            if !ref_steps.contains(&s) {
                return Err(PlanError::UnexpectedStep { step: s });
            }
        }
        if let Some(&missing) = ref_steps.iter().find(|s| !seen.contains(s)) {
            return Err(PlanError::MissingStep { step: missing });
        }
        // Session `Migrating` step indices must follow the caller's step
        // order, not the canonical one. The step sets already matched,
        // so each migrating session's step exists in `steps`.
        let mut sessions = ref_sessions;
        for (si, sess) in sessions.iter_mut().enumerate() {
            if let SessionKind::Migrating { step: canonical } = sess.kind {
                let idx = steps.iter().position(
                    |s| matches!(s, Step::MigrateSession { session, .. } if *session == si),
                );
                match idx {
                    Some(i) => sess.kind = SessionKind::Migrating { step: i },
                    None => {
                        return Err(PlanError::MissingStep {
                            step: ref_steps[canonical],
                        })
                    }
                }
            }
        }
        let layers = layer_steps(steps.len(), &deps)?;
        let plan = ReconfigPlan {
            n: g.node_count(),
            current: current.clone(),
            target: target.clone(),
            sessions,
            steps,
            preds: deps,
            layers,
        };
        plan.order_safety(g)?;
        Ok(plan)
    }

    /// Atomic steps, in the plan's step order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Dependency predecessors of step `i`.
    pub fn deps(&self, i: usize) -> &BTreeSet<usize> {
        &self.preds[i]
    }

    /// Total dependency edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(BTreeSet::len).sum()
    }

    /// Kahn layers (antichains), each ascending by step index.
    pub fn layers(&self) -> &[Vec<usize>] {
        &self.layers
    }

    /// Widest antichain.
    pub fn width(&self) -> usize {
        self.layers.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of layers (critical path in steps).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// The planned sessions, including dispositions and paths.
    pub fn sessions(&self) -> &[PlannedSession] {
        &self.sessions
    }

    /// Current (pre-transition) broker set.
    pub fn current(&self) -> &NodeSet {
        &self.current
    }

    /// Target (post-transition) broker set.
    pub fn target(&self) -> &NodeSet {
        &self.target
    }

    /// Modeled cost of one step: broker flips pay their degree (the
    /// edges whose domination changes), migrations pay the new path's
    /// hops (the state to install), everyone pays 1 for the control
    /// action itself.
    pub fn step_cost(&self, g: &Graph, step: &Step) -> u64 {
        match *step {
            Step::ActivateBroker(b) | Step::DeactivateBroker(b) => 1 + g.degree(b) as u64,
            Step::MigrateSession { session, .. } => {
                let hops = self.sessions[session]
                    .after
                    .as_ref()
                    .map_or(0, StitchedPath::hops);
                1 + hops as u64
            }
        }
    }

    /// `(sequential_units, makespan_units)`: total step cost vs the
    /// layered critical path (sum over layers of the costliest step).
    pub fn makespan_model(&self, g: &Graph) -> (u64, u64) {
        let mut seq = 0u64;
        let mut makespan = 0u64;
        for layer in &self.layers {
            let mut worst = 0u64;
            for &i in layer {
                let c = self.step_cost(g, &self.steps[i]);
                seq += c;
                worst = worst.max(c);
            }
            makespan += worst;
        }
        (seq, makespan)
    }

    /// Headline shape + makespan model.
    pub fn summary(&self, g: &Graph) -> PlanSummary {
        let (seq, makespan) = self.makespan_model(g);
        let mut acts = 0;
        let mut deacts = 0;
        let mut migs = 0;
        for s in &self.steps {
            match s {
                Step::ActivateBroker(_) => acts += 1,
                Step::DeactivateBroker(_) => deacts += 1,
                Step::MigrateSession { .. } => migs += 1,
            }
        }
        PlanSummary {
            steps: self.steps.len(),
            activations: acts,
            deactivations: deacts,
            migrations: migs,
            kept: self
                .sessions
                .iter()
                .filter(|s| s.kind == SessionKind::Kept)
                .count(),
            dropped: self
                .sessions
                .iter()
                .filter(|s| s.kind == SessionKind::Dropped)
                .count(),
            edges: self.edge_count(),
            width: self.width(),
            depth: self.depth(),
            makespan_units: makespan,
            sequential_units: seq,
            speedup: ratio(seq, makespan),
        }
    }

    /// Order-independent digest of the constructed plan (steps, deps,
    /// layers): the determinism tests pin this across CSR layouts and
    /// thread counts.
    pub fn construction_checksum(&self) -> u64 {
        let mut words: Vec<u64> = Vec::new();
        for (i, s) in self.steps.iter().enumerate() {
            words.push(i as u64);
            words.push(step_code(s));
        }
        for row in &self.preds {
            words.push(u64::MAX);
            words.extend(row.iter().map(|&p| p as u64));
        }
        for layer in &self.layers {
            words.push(u64::MAX - 1);
            words.extend(layer.iter().map(|&i| i as u64));
        }
        fnv1a(words)
    }

    /// Wrap this plan for certificate-grade auditing against `g`.
    pub fn certificate<'a>(&'a self, g: &'a Graph) -> PlanCertificate<'a> {
        PlanCertificate::new(self, g)
    }

    /// Execute the plan's antichains in parallel on the persistent
    /// worker pool.
    ///
    /// Each layer fans out over [`par::run_layers`] (full barrier
    /// between layers); each step re-derives its effect — broker flips
    /// digest their dominated neighborhood, migrations re-verify every
    /// hop of the installed path — into a [`StepRecord`]. After the
    /// parallel run the canonical cut walk validates every intermediate
    /// state; the result lands in [`ExecTrace::cut_audit`].
    ///
    /// The trace (records and checksum) is bit-identical for every
    /// `threads` value.
    pub fn execute(&self, g: &Graph, threads: usize) -> ExecTrace {
        let layer_items: Vec<Vec<u32>> = self
            .layers
            .iter()
            .map(|l| l.iter().map(|&i| i as u32).collect())
            .collect();
        let shared_g = Arc::new(g.clone());
        let shared = Arc::new(self.clone());
        let job_g = Arc::clone(&shared_g);
        let job_plan = Arc::clone(&shared);
        let records = par::run_layers(&layer_items, threads, move |&si| {
            let step = &job_plan.steps[si as usize];
            StepRecord {
                step: si,
                cost: job_plan.step_cost(&job_g, step),
                check: apply_step(&job_g, &job_plan.sessions, step),
            }
        });
        let (seq, makespan) = self.makespan_model(g);
        let mut words: Vec<u64> = Vec::new();
        for layer in &records {
            for r in layer {
                words.push(u64::from(r.step));
                words.push(r.cost);
                words.push(r.check);
            }
        }
        let cut_audit = self.walk_cuts(g);
        ExecTrace {
            cuts_validated: self.layers.len() + 1,
            layers: records,
            checksum: fnv1a(words),
            makespan_units: makespan,
            sequential_units: seq,
            cut_audit,
        }
    }

    /// Validate every canonical cut state: walk the layers, applying
    /// each antichain atomically (its steps commute — disjoint brokers,
    /// disjoint sessions), and check after each layer that
    ///
    /// - every vertex covered by both endpoint configurations is still
    ///   covered by the active set;
    /// - every live session's active path is still dominated;
    /// - the final active set equals the target exactly.
    pub fn walk_cuts(&self, g: &Graph) -> AuditReport {
        let mut rep = AuditReport::new("routing::ReconfigPlan::cuts");
        let n = self.n;
        if g.node_count() != n {
            rep.check("plan.cuts.graph-shape", false, || {
                format!("plan built for {n} vertices, graph has {}", g.node_count())
            });
            return rep;
        }
        // Incremental cover counts: cover[x] = active brokers in N[x].
        let mut cover = vec![0u32; n];
        let mut active = self.current.clone();
        for b in self.current.iter() {
            bump_cover(g, &mut cover, b, 1);
        }
        let both: Vec<bool> = (0..n)
            .map(|x| {
                let x = NodeId(x as u32);
                covered_by(g, &self.current, x) && covered_by(g, &self.target, x)
            })
            .collect();
        let mut migrated = vec![false; self.sessions.len()];
        self.check_cut(g, &mut rep, usize::MAX, &active, &cover, &both, &migrated);
        for (li, layer) in self.layers.iter().enumerate() {
            for &i in layer {
                match self.steps[i] {
                    Step::ActivateBroker(b) => {
                        active.insert(b);
                        bump_cover(g, &mut cover, b, 1);
                    }
                    Step::DeactivateBroker(b) => {
                        active.remove(b);
                        bump_cover(g, &mut cover, b, -1);
                    }
                    Step::MigrateSession { session, .. } => migrated[session] = true,
                }
            }
            self.check_cut(g, &mut rep, li, &active, &cover, &both, &migrated);
        }
        rep.check("plan.cuts.final-state", active == self.target, || {
            "executed plan does not land on the target configuration".into()
        });
        rep
    }

    /// One cut check; `layer == usize::MAX` marks the initial state.
    #[allow(clippy::too_many_arguments)]
    fn check_cut(
        &self,
        _g: &Graph,
        rep: &mut AuditReport,
        layer: usize,
        active: &NodeSet,
        cover: &[u32],
        both: &[bool],
        migrated: &[bool],
    ) {
        let at = || {
            if layer == usize::MAX {
                "initial state".to_string()
            } else {
                format!("after layer {layer}")
            }
        };
        let uncovered = (0..self.n).filter(|&x| both[x] && cover[x] == 0).count();
        rep.check("plan.cuts.coverage", uncovered == 0, || {
            format!("{uncovered} doubly-covered vertices uncovered {}", at())
        });
        let mut broken = 0usize;
        for (si, sess) in self.sessions.iter().enumerate() {
            let path = match sess.kind {
                SessionKind::Dropped => None,
                SessionKind::Kept => sess.before.as_ref(),
                SessionKind::Migrating { .. } => {
                    if migrated[si] {
                        sess.after.as_ref()
                    } else {
                        sess.before.as_ref()
                    }
                }
            };
            if let Some(p) = path {
                let ok = p.path.windows(2).all(|w| dominates_hop(active, w[0], w[1]));
                if !ok {
                    broken += 1;
                }
            }
        }
        rep.check("plan.cuts.sessions", broken == 0, || {
            format!("{broken} live sessions lost domination {}", at())
        });
    }

    /// Structural safety of the dependency set: for every topological
    /// order — not just the canonical one — no step can run before the
    /// steps its intermediate state needs. Uses transitive predecessor
    /// sets over the already-layered DAG.
    fn order_safety(&self, g: &Graph) -> Result<(), PlanError> {
        let survivors = {
            let mut s = self.current.clone();
            s.intersect_with(&self.target);
            s
        };
        let acts = step_index(&self.steps, true);
        let deacts = step_index(&self.steps, false);
        let reach = self.transitive_preds();
        let has_act_pred = |hop: (NodeId, NodeId), of: &BTreeSet<usize>| {
            [hop.0, hop.1]
                .iter()
                .any(|e| acts.get(&e.0).is_some_and(|&a| of.contains(&a)))
        };
        for sess in &self.sessions {
            match sess.kind {
                SessionKind::Dropped => {}
                SessionKind::Kept => {
                    // Every un-survivor-dominated hop: each deactivated
                    // endpoint must wait for an activated endpoint.
                    if let Some(p) = &sess.before {
                        for w in p.path.windows(2) {
                            if dominates_hop(&survivors, w[0], w[1]) {
                                continue;
                            }
                            for e in [w[0], w[1]] {
                                if let Some(&d) = deacts.get(&e.0) {
                                    if !has_act_pred((w[0], w[1]), &reach[d]) {
                                        return Err(PlanError::UnsafeOrder {
                                            step: d,
                                            invariant: "keep-dominated",
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                SessionKind::Migrating { step: m } => {
                    if let Some(p) = &sess.after {
                        for w in p.path.windows(2) {
                            if dominates_hop(&survivors, w[0], w[1])
                                || has_act_pred((w[0], w[1]), &reach[m])
                            {
                                continue;
                            }
                            return Err(PlanError::UnsafeOrder {
                                step: m,
                                invariant: "activate-before-migrate",
                            });
                        }
                    }
                    if let Some(p) = &sess.before {
                        for w in p.path.windows(2) {
                            if dominates_hop(&survivors, w[0], w[1]) {
                                continue;
                            }
                            for e in [w[0], w[1]] {
                                if let Some(&d) = deacts.get(&e.0) {
                                    if !reach[d].contains(&m) {
                                        return Err(PlanError::UnsafeOrder {
                                            step: d,
                                            invariant: "migrate-before-deactivate",
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        // Vertex coverage: a vertex covered by both configurations but
        // not by the survivors needs an activated coverer before any
        // deactivated coverer retires.
        for x in 0..self.n {
            let x = NodeId(x as u32);
            if !covered_by(g, &self.current, x)
                || !covered_by(g, &self.target, x)
                || covered_by(g, &survivors, x)
            {
                continue;
            }
            let act_coverers: Vec<usize> = closed_neighborhood(g, x)
                .filter_map(|y| acts.get(&y.0).copied())
                .collect();
            for y in closed_neighborhood(g, x) {
                if let Some(&d) = deacts.get(&y.0) {
                    if !act_coverers.iter().any(|a| reach[d].contains(a)) {
                        return Err(PlanError::UnsafeOrder {
                            step: d,
                            invariant: "cover-before-uncover",
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Transitive predecessor closure, computed layer by layer (every
    /// predecessor lives in an earlier layer).
    fn transitive_preds(&self) -> Vec<BTreeSet<usize>> {
        let mut reach: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.steps.len()];
        for layer in &self.layers {
            for &i in layer {
                let mut r = BTreeSet::new();
                for &p in &self.preds[i] {
                    r.insert(p);
                    r.extend(reach[p].iter().copied());
                }
                reach[i] = r;
            }
        }
        reach
    }
}

impl Validate for ReconfigPlan {
    /// Graph-free structural invariants: the layers partition the steps,
    /// every dependency points to an earlier layer, migration steps
    /// reference real sessions, and the configurations share one vertex
    /// capacity.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("routing::ReconfigPlan");
        rep.check(
            "plan.capacity",
            self.current.capacity() == self.n && self.target.capacity() == self.n,
            || "configurations sized for a different vertex count".into(),
        );
        let mut layer_of = vec![usize::MAX; self.steps.len()];
        let mut placed = 0usize;
        let mut dups = 0usize;
        for (li, layer) in self.layers.iter().enumerate() {
            for &i in layer {
                if i < layer_of.len() {
                    if layer_of[i] != usize::MAX {
                        dups += 1;
                    }
                    layer_of[i] = li;
                    placed += 1;
                }
            }
        }
        rep.check(
            "plan.layers.partition",
            dups == 0 && placed == self.steps.len() && layer_of.iter().all(|&l| l != usize::MAX),
            || {
                format!(
                    "{placed} placements, {dups} duplicates over {} steps",
                    self.steps.len()
                )
            },
        );
        let back_edges = self
            .preds
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |&p| (i, p)))
            .filter(|&(i, p)| {
                p >= self.steps.len()
                    || i >= layer_of.len()
                    || layer_of[p] == usize::MAX
                    || layer_of[i] == usize::MAX
                    || layer_of[p] >= layer_of[i]
            })
            .count();
        rep.check("plan.layers.topological", back_edges == 0, || {
            format!("{back_edges} dependency edges do not point to an earlier layer")
        });
        let bad_sessions = self
            .steps
            .iter()
            .filter(|s| {
                matches!(s, Step::MigrateSession { session, .. }
                    if *session >= self.sessions.len())
            })
            .count();
        rep.check("plan.sessions.in-range", bad_sessions == 0, || {
            format!("{bad_sessions} migrations reference unknown sessions")
        });
        let mislinked = self
            .sessions
            .iter()
            .filter(|sess| match sess.kind {
                SessionKind::Migrating { step } => {
                    !matches!(self.steps.get(step), Some(Step::MigrateSession { .. }))
                }
                _ => false,
            })
            .count();
        rep.check("plan.sessions.step-links", mislinked == 0, || {
            format!("{mislinked} sessions point at non-migration steps")
        });
        rep
    }
}

/// A claim that `plan` is a safe reconfiguration of `graph`: acyclic,
/// step set equal to the config diff, order-safe under every topological
/// order, and invariant-preserving at every canonical cut.
#[derive(Debug)]
pub struct PlanCertificate<'a> {
    plan: &'a ReconfigPlan,
    g: &'a Graph,
}

impl<'a> PlanCertificate<'a> {
    /// Wrap a plan for auditing against the graph it was built on.
    pub fn new(plan: &'a ReconfigPlan, g: &'a Graph) -> Self {
        PlanCertificate { plan, g }
    }
}

impl Validate for PlanCertificate<'_> {
    /// Re-derive everything independently of construction:
    ///
    /// 1. the structural audit ([`ReconfigPlan::audit`]) — layers
    ///    partition the steps and respect the dependencies (acyclicity);
    /// 2. the step set equals the config diff re-derived from the
    ///    current/target sets and re-stitched sessions;
    /// 3. stored session paths really are dominated stitches of their
    ///    configuration (hop edges exist, endpoints match);
    /// 4. the order-safety conditions hold, so *every* topological
    ///    order is safe;
    /// 5. every canonical cut state passes the coverage + session
    ///    invariants ([`ReconfigPlan::walk_cuts`]).
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("routing::PlanCertificate");
        rep.absorb(self.plan.audit());
        let g = self.g;
        let plan = self.plan;
        rep.check("plan.cert.graph-shape", g.node_count() == plan.n, || {
            format!(
                "plan built for {} vertices, graph has {}",
                plan.n,
                g.node_count()
            )
        });
        if g.node_count() != plan.n {
            return rep;
        }

        // 2. Step set == config diff, re-derived from scratch.
        match construct(
            g,
            &plan.current,
            &plan.target,
            &plan
                .sessions
                .iter()
                .map(|s| (s.src, s.dst))
                .collect::<Vec<_>>(),
        ) {
            Ok((_, ref_steps, _)) => {
                let have: BTreeSet<Step> = plan.steps.iter().copied().collect();
                let want: BTreeSet<Step> = ref_steps.iter().copied().collect();
                rep.check(
                    "plan.cert.step-diff",
                    have == want && plan.steps.len() == ref_steps.len(),
                    || {
                        let missing = want.difference(&have).count();
                        let surplus = have.difference(&want).count();
                        format!("{missing} required steps missing, {surplus} surplus")
                    },
                );
            }
            Err(e) => rep.check("plan.cert.step-diff", false, || {
                format!("config diff underivable: {e}")
            }),
        }

        // 3. Stored paths are genuine dominated walks.
        let mut bad_paths = 0usize;
        for sess in &plan.sessions {
            for (p, set) in [
                (sess.before.as_ref(), &plan.current),
                (sess.after.as_ref(), &plan.target),
            ] {
                let Some(p) = p else { continue };
                let endpoints_ok =
                    p.path.first() == Some(&sess.src) && p.path.last() == Some(&sess.dst);
                let edges_ok = p.path.windows(2).all(|w| g.has_edge(w[0], w[1]));
                let dominated = p.path.windows(2).all(|w| dominates_hop(set, w[0], w[1]));
                if !(endpoints_ok && edges_ok && dominated) {
                    bad_paths += 1;
                }
            }
        }
        rep.check("plan.cert.session-paths", bad_paths == 0, || {
            format!("{bad_paths} stored session paths fail re-verification")
        });

        // 4. Order safety for every topological order.
        match plan.order_safety(g) {
            Ok(()) => rep.check("plan.cert.order-safe", true, String::new),
            Err(e) => rep.check("plan.cert.order-safe", false, || e.to_string()),
        }

        // 5. Every canonical cut state.
        rep.absorb(plan.walk_cuts(g));
        rep
    }
}

/// `x` or a neighbor of `x`, in ascending-id-after-x order.
fn closed_neighborhood<'g>(g: &'g Graph, x: NodeId) -> impl Iterator<Item = NodeId> + 'g {
    std::iter::once(x).chain(g.neighbors(x).iter().copied())
}

/// Is `x` in the closed neighborhood of `set`?
fn covered_by(g: &Graph, set: &NodeSet, x: NodeId) -> bool {
    set.contains(x) || g.neighbors(x).iter().any(|&y| set.contains(y))
}

/// Adjust cover counts for (de)activating broker `b`.
fn bump_cover(g: &Graph, cover: &mut [u32], b: NodeId, delta: i32) {
    for y in closed_neighborhood(g, b) {
        let c = &mut cover[y.index()];
        if delta > 0 {
            *c += 1;
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Map broker id -> step index for activations (`acts = true`) or
/// deactivations.
fn step_index(steps: &[Step], acts: bool) -> BTreeMap<u32, usize> {
    let mut m = BTreeMap::new();
    for (i, s) in steps.iter().enumerate() {
        match (acts, s) {
            (true, Step::ActivateBroker(b)) | (false, Step::DeactivateBroker(b)) => {
                m.insert(b.0, i);
            }
            _ => {}
        }
    }
    m
}

fn step_code(s: &Step) -> u64 {
    match *s {
        Step::ActivateBroker(b) => u64::from(b.0) << 2,
        Step::DeactivateBroker(b) => (u64::from(b.0) << 2) | 1,
        Step::MigrateSession { session, from, to } => {
            fnv1a([2, session as u64, u64::from(from.0), u64::from(to.0)])
        }
    }
}

/// Re-derive one step's effect during execution: broker flips digest
/// their (re-read) dominated neighborhood, migrations re-verify every
/// hop of the path they install.
fn apply_step(g: &Graph, sessions: &[PlannedSession], step: &Step) -> u64 {
    match *step {
        Step::ActivateBroker(b) | Step::DeactivateBroker(b) => {
            let mut words: Vec<u64> = vec![step_code(step)];
            words.extend(g.neighbors(b).iter().map(|y| u64::from(y.0)));
            fnv1a(words)
        }
        Step::MigrateSession { session, .. } => {
            let mut words: Vec<u64> = vec![step_code(step)];
            if let Some(p) = &sessions[session].after {
                for w in p.path.windows(2) {
                    words.push(u64::from(g.has_edge(w[0], w[1])));
                }
                words.extend(p.path.iter().map(|v| u64::from(v.0)));
            }
            fnv1a(words)
        }
    }
}

/// Shared construction: stitch sessions under both configurations,
/// derive the canonical step list and the dependency edges.
#[allow(clippy::type_complexity)]
fn construct(
    g: &Graph,
    current: &NodeSet,
    target: &NodeSet,
    pairs: &[(NodeId, NodeId)],
) -> Result<(Vec<PlannedSession>, Vec<Step>, Vec<BTreeSet<usize>>), PlanError> {
    let n = g.node_count();
    for set in [current, target] {
        if let Some(b) = set.iter().find(|b| b.index() >= n) {
            return Err(PlanError::BrokerOutOfRange { broker: b });
        }
    }
    for (i, &(s, t)) in pairs.iter().enumerate() {
        for e in [s, t] {
            if e.index() >= n {
                return Err(PlanError::SessionOutOfRange {
                    session: i,
                    endpoint: e,
                });
            }
        }
    }

    let mut survivors = current.clone();
    survivors.intersect_with(target);
    let mut acts: Vec<NodeId> = target.iter().filter(|&b| !current.contains(b)).collect();
    acts.sort_unstable();
    let mut deacts: Vec<NodeId> = current.iter().filter(|&b| !target.contains(b)).collect();
    deacts.sort_unstable();

    // Stitch every session under both configurations.
    let mut sessions: Vec<PlannedSession> = pairs
        .iter()
        .map(|&(src, dst)| {
            let before = stitch_path(g, current, src, dst);
            let after = stitch_path(g, target, src, dst);
            let kind = match (&before, &after) {
                (_, None) => SessionKind::Dropped,
                (Some(b), Some(a)) if b.path == a.path => SessionKind::Kept,
                // Step index patched below once migrations are laid out.
                _ => SessionKind::Migrating { step: usize::MAX },
            };
            PlannedSession {
                src,
                dst,
                before,
                after,
                kind,
            }
        })
        .collect();

    // Canonical step order: activations ascending, migrations by session
    // index, deactivations ascending.
    let mut steps: Vec<Step> = acts.iter().map(|&b| Step::ActivateBroker(b)).collect();
    for (si, sess) in sessions.iter_mut().enumerate() {
        if let SessionKind::Migrating { .. } = sess.kind {
            let to = sess.after.as_ref().map(anchor);
            let from = sess.before.as_ref().map(anchor).or(to);
            if let (Some(from), Some(to)) = (from, to) {
                sess.kind = SessionKind::Migrating { step: steps.len() };
                steps.push(Step::MigrateSession {
                    session: si,
                    from,
                    to,
                });
            }
        }
    }
    steps.extend(deacts.iter().map(|&b| Step::DeactivateBroker(b)));

    let act_of = step_index(&steps, true);
    let deact_of = step_index(&steps, false);
    let mut preds: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); steps.len()];

    // Dependency discovery: for each constraint, check whether the
    // candidate intermediate state (the constrained step running with
    // only the survivors of the relevant hop/vertex active) is safe; if
    // not, add the edge that makes it wait.
    for sess in &sessions {
        match sess.kind {
            SessionKind::Dropped => {}
            SessionKind::Kept => {
                if let Some(p) = &sess.before {
                    for w in p.path.windows(2) {
                        if dominates_hop(&survivors, w[0], w[1]) {
                            continue;
                        }
                        // Hop dominated only by transient brokers: every
                        // retiring endpoint waits for the (smallest)
                        // arriving endpoint.
                        let a = [w[0], w[1]]
                            .iter()
                            .filter_map(|e| act_of.get(&e.0).copied())
                            .min();
                        for e in [w[0], w[1]] {
                            if let (Some(&d), Some(a)) = (deact_of.get(&e.0), a) {
                                preds[d].insert(a);
                            }
                        }
                    }
                }
            }
            SessionKind::Migrating { step: m } => {
                if let Some(p) = &sess.after {
                    for w in p.path.windows(2) {
                        if dominates_hop(&survivors, w[0], w[1]) {
                            continue;
                        }
                        if let Some(a) = [w[0], w[1]]
                            .iter()
                            .filter_map(|e| act_of.get(&e.0).copied())
                            .min()
                        {
                            preds[m].insert(a);
                        }
                    }
                }
                if let Some(p) = &sess.before {
                    for w in p.path.windows(2) {
                        if dominates_hop(&survivors, w[0], w[1]) {
                            continue;
                        }
                        for e in [w[0], w[1]] {
                            if let Some(&d) = deact_of.get(&e.0) {
                                preds[d].insert(m);
                            }
                        }
                    }
                }
            }
        }
    }
    // Vertex coverage: doubly-covered vertices that lose all surviving
    // coverers tie each retiring coverer to the smallest arriving one.
    for x in 0..n {
        let x = NodeId(x as u32);
        if !covered_by(g, current, x) || !covered_by(g, target, x) || covered_by(g, &survivors, x) {
            continue;
        }
        let a = closed_neighborhood(g, x)
            .filter_map(|y| act_of.get(&y.0).copied())
            .min();
        for y in closed_neighborhood(g, x) {
            if let (Some(&d), Some(a)) = (deact_of.get(&y.0), a) {
                preds[d].insert(a);
            }
        }
    }

    Ok((sessions, steps, preds))
}

/// Kahn layering over the dependency DAG. Each layer collects every
/// unplaced zero-indegree step in ascending index order — the canonical
/// antichain decomposition. Stalling before all steps are placed means a
/// cycle.
fn layer_steps(count: usize, preds: &[BTreeSet<usize>]) -> Result<Vec<Vec<usize>>, PlanError> {
    let mut indeg: Vec<usize> = preds.iter().map(BTreeSet::len).collect();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); count];
    for (i, row) in preds.iter().enumerate() {
        for &p in row {
            succs[p].push(i);
        }
    }
    let mut placed = vec![false; count];
    let mut layers: Vec<Vec<usize>> = Vec::new();
    let mut remaining = count;
    while remaining > 0 {
        let layer: Vec<usize> = (0..count)
            .filter(|&i| !placed[i] && indeg[i] == 0)
            .collect();
        if layer.is_empty() {
            return Err(PlanError::Cycle { stuck: remaining });
        }
        for &i in &layer {
            placed[i] = true;
            for &s in &succs[i] {
                indeg[s] -= 1;
            }
        }
        remaining -= layer.len();
        layers.push(layer);
    }
    Ok(layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;

    /// Path graph 0-1-2-3-4-5 plus a chord 0-5.
    fn line6() -> Graph {
        from_edges(
            6,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)].map(|(a, b)| (NodeId(a), NodeId(b))),
        )
    }

    fn set(n: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_iter_with_capacity(n, ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn empty_diff_plans_no_steps() {
        let g = line6();
        let b = set(6, &[1, 4]);
        let plan = ReconfigPlan::build(&g, &b, &b, &[(NodeId(0), NodeId(2))]).expect("plan");
        assert!(plan.steps().is_empty());
        assert_eq!(plan.depth(), 0);
        let rep = plan.certificate(&g).audit();
        assert!(rep.is_ok(), "{rep}");
        let trace = plan.execute(&g, 2);
        assert!(trace.cut_audit.is_ok(), "{}", trace.cut_audit);
        assert!((trace.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn swap_produces_ordered_steps_and_safe_cuts() {
        // Swap broker 1 for broker 2: session 0->3 must migrate after 2
        // activates and before 1 deactivates.
        let g = line6();
        let cur = set(6, &[1, 4]);
        let tgt = set(6, &[2, 4]);
        let plan = ReconfigPlan::build(&g, &cur, &tgt, &[(NodeId(0), NodeId(3))]).expect("plan");
        let s = plan.summary(&g);
        assert_eq!(s.activations, 1);
        assert_eq!(s.deactivations, 1);
        assert!(s.migrations <= 1);
        let rep = plan.certificate(&g).audit();
        assert!(rep.is_ok(), "{rep}");
        // Depth >= 2: the deactivation cannot share a layer with the
        // activation it waits on (directly or via the migration).
        assert!(plan.depth() >= 2, "layers: {:?}", plan.layers());
    }

    #[test]
    fn execution_is_thread_count_invariant() {
        let g = line6();
        let cur = set(6, &[1, 4]);
        let tgt = set(6, &[0, 2, 4]);
        let pairs = [(NodeId(0), NodeId(3)), (NodeId(1), NodeId(5))];
        let plan = ReconfigPlan::build(&g, &cur, &tgt, &pairs).expect("plan");
        let base = plan.execute(&g, 1);
        assert!(base.cut_audit.is_ok(), "{}", base.cut_audit);
        for threads in [2, 4, 7] {
            let t = plan.execute(&g, threads);
            assert_eq!(t.checksum, base.checksum, "threads = {threads}");
            assert_eq!(t.layers, base.layers, "threads = {threads}");
        }
    }

    #[test]
    fn tampered_plans_get_typed_errors() {
        let g = line6();
        let cur = set(6, &[1, 4]);
        let tgt = set(6, &[2, 4]);
        let pairs = [(NodeId(0), NodeId(3))];
        let plan = ReconfigPlan::build(&g, &cur, &tgt, &pairs).expect("plan");
        let steps = plan.steps().to_vec();
        let deps: Vec<BTreeSet<usize>> = (0..steps.len()).map(|i| plan.deps(i).clone()).collect();

        // Cycle: make step 0 depend on the last step.
        let mut cyc = deps.clone();
        cyc[0].insert(steps.len() - 1);
        let err = ReconfigPlan::from_parts(&g, &cur, &tgt, &pairs, steps.clone(), cyc)
            .expect_err("cycle accepted");
        assert!(matches!(err, PlanError::Cycle { .. }), "{err:?}");

        // Missing step.
        let mut short = steps.clone();
        let dropped = short.pop().expect("nonempty");
        let err = ReconfigPlan::from_parts(
            &g,
            &cur,
            &tgt,
            &pairs,
            short,
            deps[..steps.len() - 1].to_vec(),
        )
        .expect_err("missing step accepted");
        assert_eq!(err, PlanError::MissingStep { step: dropped });

        // Invariant-violating order: drop every dependency.
        let free: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); steps.len()];
        let err = ReconfigPlan::from_parts(&g, &cur, &tgt, &pairs, steps, free)
            .expect_err("unsafe order accepted");
        assert!(matches!(err, PlanError::UnsafeOrder { .. }), "{err:?}");
    }

    #[test]
    fn out_of_range_inputs_rejected() {
        let g = line6();
        let bad = set(8, &[7]);
        let ok = set(6, &[1]);
        assert!(matches!(
            ReconfigPlan::build(&g, &bad, &ok, &[]),
            Err(PlanError::BrokerOutOfRange { .. })
        ));
        assert!(matches!(
            ReconfigPlan::build(&g, &ok, &ok, &[(NodeId(0), NodeId(9))]),
            Err(PlanError::SessionOutOfRange { .. })
        ));
    }
}
