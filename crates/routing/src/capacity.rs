//! Bandwidth brokering: capacity-aware admission over dominating paths.
//!
//! The paper positions its broker set against the classic *bandwidth
//! broker* architectures (refs \[18\], \[19\] in its related work): per-domain
//! brokers doing admission control. Here the alliance plays that role
//! end-to-end: each edge has a synthetic capacity (by tier, core links
//! fat, access links thin), sessions arrive with a bandwidth demand, and
//! the brokerage admits a session only if a B-dominating path with
//! enough *residual* capacity exists — retrying around saturated edges
//! before rejecting.

use crate::failover::dominated_path_avoiding;
use crate::stitch::stitch_path;
use netgraph::{Graph, NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use topology::{Internet, Tier};

/// Per-edge capacities derived from a topology and seed.
#[derive(Debug, Clone)]
pub struct CapacityModel {
    capacity: BTreeMap<(u32, u32), f64>,
}

impl CapacityModel {
    /// Sample capacities: an edge's capacity is set by the *higher* tier
    /// endpoint (core 100 units, transit 40, access 10) with ±25 %
    /// jitter.
    pub fn sample(net: &Internet, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut capacity = BTreeMap::new();
        for &(a, b, _) in net.relationships() {
            let base = match std::cmp::min(net.tier(a), net.tier(b)) {
                Tier::One => 100.0,
                Tier::Two => 40.0,
                Tier::Three => 10.0,
            };
            let jitter: f64 = rng.gen_range(0.75..1.25);
            capacity.insert(key(a, b), base * jitter);
        }
        CapacityModel { capacity }
    }

    /// Capacity of edge `{u, v}`, if it exists.
    pub fn edge_capacity(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.capacity.get(&key(u, v)).copied()
    }
}

use netgraph::undirected_key as key;

/// A bandwidth demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Demand {
    /// Source AS.
    pub src: NodeId,
    /// Destination AS.
    pub dst: NodeId,
    /// Requested bandwidth units.
    pub bandwidth: f64,
}

/// Outcome of an admission run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Demands admitted (index-aligned with the input, `true` = carried).
    pub admitted: Vec<bool>,
    /// Total bandwidth carried.
    pub carried: f64,
    /// Total bandwidth requested.
    pub requested: f64,
    /// Demands that needed a detour around saturated edges.
    pub detoured: usize,
}

impl AdmissionReport {
    /// Fraction of demands admitted.
    pub fn admission_ratio(&self) -> f64 {
        if self.admitted.is_empty() {
            0.0
        } else {
            self.admitted.iter().filter(|&&a| a).count() as f64 / self.admitted.len() as f64
        }
    }
}

/// Greedily admit `demands` in order over B-dominating paths with
/// residual capacity.
///
/// Routing policy per demand: try the shortest dominating path; if some
/// hop lacks residual capacity, retry once avoiding all currently
/// saturated edges; otherwise reject (no preemption).
///
/// # Panics
///
/// Panics if a demand has non-positive bandwidth.
pub fn admit_demands(
    g: &Graph,
    brokers: &NodeSet,
    capacity: &CapacityModel,
    demands: &[Demand],
) -> AdmissionReport {
    let mut residual: BTreeMap<(u32, u32), f64> = capacity.capacity.clone();
    let mut admitted = Vec::with_capacity(demands.len());
    let mut carried = 0.0;
    let mut requested = 0.0;
    let mut detoured = 0usize;

    for d in demands {
        assert!(d.bandwidth > 0.0, "demand bandwidth must be positive");
        requested += d.bandwidth;
        if d.src == d.dst {
            admitted.push(false);
            continue;
        }
        let fits = |path: &[NodeId], residual: &BTreeMap<(u32, u32), f64>| {
            path.windows(2)
                .all(|w| residual.get(&key(w[0], w[1])).copied().unwrap_or(0.0) >= d.bandwidth)
        };
        let mut route = stitch_path(g, brokers, d.src, d.dst)
            .map(|p| p.path)
            .filter(|p| fits(p, &residual));
        if route.is_none() {
            // Retry around saturated edges. The saturated set depends on
            // this demand's bandwidth, so it cannot be precomputed across
            // demands; the full-map scan runs only on the retry path
            // (first-choice failures), which congestion keeps rare until
            // the network is already saturated.
            let saturated: BTreeSet<(u32, u32)> = residual
                .iter()
                .filter(|&(_, &c)| c < d.bandwidth)
                .map(|(&e, _)| e)
                .collect();
            route = dominated_path_avoiding(g, brokers, d.src, d.dst, &saturated)
                .map(|p| p.path)
                .filter(|p| fits(p, &residual));
            if route.is_some() {
                detoured += 1;
            }
        }
        match route {
            Some(path) => {
                for w in path.windows(2) {
                    let Some(r) = residual.get_mut(&key(w[0], w[1])) else {
                        debug_assert!(false, "admitted path uses an unpriced edge");
                        continue;
                    };
                    *r -= d.bandwidth;
                }
                carried += d.bandwidth;
                admitted.push(true);
            }
            None => admitted.push(false),
        }
    }
    AdmissionReport {
        admitted,
        carried,
        requested,
        detoured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    fn setup() -> (Internet, NodeSet, CapacityModel) {
        let net = InternetConfig::scaled(Scale::Tiny).generate(19);
        let sel = max_subgraph_greedy(net.graph(), 75);
        let cap = CapacityModel::sample(&net, 1);
        (net.clone(), sel.brokers().clone(), cap)
    }

    fn demands(net: &Internet, n: usize, bw: f64, seed: u64) -> Vec<Demand> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let count = net.graph().node_count() as u32;
        (0..n)
            .map(|_| Demand {
                src: NodeId(rng.gen_range(0..count)),
                dst: NodeId(rng.gen_range(0..count)),
                bandwidth: bw,
            })
            .filter(|d| d.src != d.dst)
            .collect()
    }

    #[test]
    fn capacity_model_covers_edges_and_tiers() {
        let (net, _, cap) = setup();
        for &(a, b, _) in net.relationships().iter().take(300) {
            let c = cap.edge_capacity(a, b).unwrap();
            assert!(c > 0.0);
            assert_eq!(cap.edge_capacity(b, a), Some(c));
        }
        assert!(cap.edge_capacity(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn light_load_fully_admitted() {
        let (net, brokers, cap) = setup();
        let ds = demands(&net, 50, 0.01, 3);
        let rep = admit_demands(net.graph(), &brokers, &cap, &ds);
        // Under negligible load, admission == dominated reachability,
        // which is near-total for a dominating alliance.
        assert!(
            rep.admission_ratio() > 0.9,
            "light-load admission {}",
            rep.admission_ratio()
        );
        assert!(
            (rep.carried - ds.iter().filter(|_| true).map(|d| d.bandwidth).sum::<f64>()).abs()
                < 1.0
        );
    }

    #[test]
    fn heavy_load_saturates_and_detours() {
        let (net, brokers, cap) = setup();
        // Oversized demands toward the same destination squeeze the thin
        // access links quickly.
        let dst = NodeId(900);
        let ds: Vec<Demand> = (0..200)
            .map(|i| Demand {
                src: NodeId(i as u32),
                dst,
                bandwidth: 4.0,
            })
            .filter(|d| d.src != d.dst)
            .collect();
        let rep = admit_demands(net.graph(), &brokers, &cap, &ds);
        assert!(
            rep.admission_ratio() < 1.0,
            "heavy load should reject some demands"
        );
        assert!(rep.carried <= rep.requested);
    }

    #[test]
    fn admissions_monotone_in_bandwidth() {
        // Same demand set, bigger per-demand bandwidth -> no more
        // admissions than with smaller bandwidth.
        let (net, brokers, cap) = setup();
        let small = demands(&net, 120, 0.5, 7);
        let large: Vec<Demand> = small
            .iter()
            .map(|d| Demand {
                bandwidth: 8.0,
                ..*d
            })
            .collect();
        let rep_s = admit_demands(net.graph(), &brokers, &cap, &small);
        let rep_l = admit_demands(net.graph(), &brokers, &cap, &large);
        let n_s = rep_s.admitted.iter().filter(|&&a| a).count();
        let n_l = rep_l.admitted.iter().filter(|&&a| a).count();
        assert!(
            n_l <= n_s,
            "large demands admitted more often ({n_l} > {n_s})"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let (net, brokers, cap) = setup();
        admit_demands(
            net.graph(),
            &brokers,
            &cap,
            &[Demand {
                src: NodeId(0),
                dst: NodeId(1),
                bandwidth: 0.0,
            }],
        );
    }
}
