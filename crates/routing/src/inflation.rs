//! Path-length inflation of broker-constrained routing (Table 4).
//!
//! Restricting paths to B-dominating ones can only lengthen them. Table 4
//! of the paper shows the 3,540-alliance causes *minimal* inflation: its
//! l-hop connectivity curve nearly overlaps the free-path curve. This
//! module computes both curves and their per-l gap.

use brokerset::connectivity::{lhop_curve, LhopCurve};
use brokerset::SourceMode;
use netgraph::{Graph, NodeSet};
use serde::{Deserialize, Serialize};

/// Free-path vs broker-constrained l-hop connectivity comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InflationReport {
    /// Free-path curve (`B = V`).
    pub free: LhopCurve,
    /// Broker-dominated curve.
    pub dominated: LhopCurve,
    /// `free - dominated` per l (non-negative up to sampling noise).
    pub gap: Vec<f64>,
    /// Largest gap over all l.
    pub max_gap: f64,
}

/// Compare the l-hop connectivity with and without the broker constraint
/// for `l = 1 ..= max_l`.
pub fn inflation_report(
    g: &Graph,
    brokers: &NodeSet,
    max_l: usize,
    mode: SourceMode,
) -> InflationReport {
    let free = lhop_curve(g, &NodeSet::full(g.node_count()), max_l, mode);
    let dominated = lhop_curve(g, brokers, max_l, mode);
    let gap: Vec<f64> = free
        .fractions
        .iter()
        .zip(&dominated.fractions)
        .map(|(f, d)| f - d)
        .collect();
    let max_gap = gap.iter().copied().fold(0.0f64, f64::max);
    InflationReport {
        free,
        dominated,
        gap,
        max_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::{degree_based, max_subgraph_greedy};
    use topology::{InternetConfig, Scale};

    #[test]
    fn dominating_set_has_small_inflation() {
        // A MaxSG set sized to dominate (nearly) everything should show a
        // curve close to free-path routing.
        let net = InternetConfig::scaled(Scale::Tiny).generate(41);
        let g = net.graph();
        let sel = max_subgraph_greedy(g, 120);
        let mode = SourceMode::Sampled {
            count: 150,
            seed: 2,
        };
        let rep = inflation_report(g, sel.brokers(), 8, mode);
        assert!(
            rep.max_gap < 0.15,
            "max inflation gap {} too large for a dominating alliance",
            rep.max_gap
        );
        // Gap is non-negative (up to sampling noise on identical sources).
        for &gder in &rep.gap {
            assert!(gder > -1e-9);
        }
    }

    #[test]
    fn small_degree_based_set_inflates_more() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(41);
        let g = net.graph();
        let small = degree_based(g, 8);
        let big = max_subgraph_greedy(g, 120);
        let mode = SourceMode::Sampled {
            count: 150,
            seed: 2,
        };
        let rep_small = inflation_report(g, small.brokers(), 8, mode);
        let rep_big = inflation_report(g, big.brokers(), 8, mode);
        assert!(
            rep_small.max_gap > rep_big.max_gap,
            "small set gap {} should exceed big set gap {}",
            rep_small.max_gap,
            rep_big.max_gap
        );
    }

    #[test]
    fn same_sources_make_curves_comparable() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(43);
        let g = net.graph();
        let sel = max_subgraph_greedy(g, 100);
        let mode = SourceMode::Sampled {
            count: 100,
            seed: 5,
        };
        let rep = inflation_report(g, sel.brokers(), 6, mode);
        // The dominated curve can never exceed the free curve when both
        // use the same source sample (identical seed).
        for (f, d) in rep.free.fractions.iter().zip(&rep.dominated.fractions) {
            assert!(d <= f);
        }
    }
}
