//! Session-level broker failover under a fault schedule.
//!
//! [`crate::failover`] plans a primary/backup dominating-path pair once;
//! this module *replays* such a session against a
//! [`netgraph::FaultSchedule`], epoch by epoch, modeling what a
//! supervised session actually does when the topology degrades:
//!
//! 1. keep using the active path while every hop survives;
//! 2. on a hit, **fail over** to the precomputed edge-disjoint backup if
//!    that still works (fast, local — one retry);
//! 3. otherwise **reroute**: replan primary + backup from scratch over
//!    the degraded dominated edge set (slow, global).
//!
//! Replay is a pure function of `(graph, brokers, schedule, src, dst)`,
//! so session statistics are deterministic and reproducible from the
//! serialized schedule alone.
//!
//! [`replay_session_evolving`] extends the model to an *evolving*
//! topology: the caller supplies one graph (and one broker set) per
//! epoch — typically the materialized prefixes of a
//! `topology::DeltaStream` plus the brokers a
//! `brokerset::BrokerMaintainer` kept per epoch — and the session now
//! survives an epoch only if every hop's edge still *exists* in that
//! epoch's graph on top of the fault-schedule checks. Churn and faults
//! compose in one timeline: a link the growth model withdraws behaves
//! exactly like a cut the schedule never recovers.

use crate::plan::{PlanError, ReconfigPlan};
use crate::stitch::StitchedPath;
use netgraph::{
    undirected_key, with_arena, DominatedView, FaultSchedule, FaultState, FaultView, Graph,
    GraphView, MaskedView, NodeId, NodeSet,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Outcome of replaying one session under a schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionReplay {
    /// Epochs replayed (= schedule horizon).
    pub epochs: u32,
    /// Epochs in which the session had a working dominating path.
    pub connected_epochs: u32,
    /// Switches to the precomputed backup (retries that succeeded
    /// without replanning).
    pub failovers: u32,
    /// Full replans over the degraded topology (excluding the initial
    /// plan).
    pub reroutes: u32,
    /// Epochs in which no dominating path existed at all.
    pub outages: u32,
}

impl SessionReplay {
    /// Fraction of epochs the session stayed connected.
    pub fn availability(&self) -> f64 {
        if self.epochs == 0 {
            0.0
        } else {
            f64::from(self.connected_epochs) / f64::from(self.epochs)
        }
    }
}

/// Aggregate of [`replay_session`] over many `(src, dst)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Sessions replayed.
    pub sessions: usize,
    /// Mean per-session availability.
    pub mean_availability: f64,
    /// Total backup switches across sessions.
    pub failovers: u64,
    /// Total replans across sessions.
    pub reroutes: u64,
    /// Sessions that never lost connectivity for a single epoch.
    pub unbroken: usize,
}

/// Replay one supervised session under `schedule`.
///
/// `brokers` is the intact selection; per epoch, brokers that defected
/// or whose vertex is down stop dominating edges. The session plans
/// lazily: the first epoch's plan is not counted as a reroute.
pub fn replay_session(
    g: &Graph,
    brokers: &NodeSet,
    schedule: &FaultSchedule,
    src: NodeId,
    dst: NodeId,
) -> SessionReplay {
    let mut out = SessionReplay {
        epochs: schedule.horizon(),
        connected_epochs: 0,
        failovers: 0,
        reroutes: 0,
        outages: 0,
    };
    // Active path plus the standby it can fail over to.
    let mut active: Option<StitchedPath> = None;
    let mut standby: Option<StitchedPath> = None;
    let mut planned_once = false;
    schedule.replay(|state| {
        let mut alive = brokers.clone();
        alive.difference_with(state.failed_brokers());
        alive.difference_with(state.failed_nodes());
        if state.failed_nodes().contains(src) || state.failed_nodes().contains(dst) {
            // An endpoint is down: nothing to route, nothing to replan.
            out.outages += 1;
            active = None;
            standby = None;
            return;
        }
        if active
            .as_ref()
            .is_some_and(|p| path_survives(&alive, state, &p.path))
        {
            out.connected_epochs += 1;
            return;
        }
        // Primary hit: try the precomputed disjoint backup first.
        if let Some(b) = standby.take() {
            if path_survives(&alive, state, &b.path) {
                out.failovers += 1;
                active = Some(b);
                out.connected_epochs += 1;
                return;
            }
        }
        // Both gone: replan over the degraded dominated edge set.
        if planned_once {
            out.reroutes += 1;
            netgraph::counter!("chaos.reroutes", 1);
        }
        planned_once = true;
        match plan_under(g, &alive, state, src, dst) {
            Some((primary, backup)) => {
                active = Some(primary);
                standby = backup;
                out.connected_epochs += 1;
            }
            None => {
                active = None;
                standby = None;
                out.outages += 1;
            }
        }
    });
    out
}

/// Replay every pair and aggregate.
pub fn replay_sessions(
    g: &Graph,
    brokers: &NodeSet,
    schedule: &FaultSchedule,
    pairs: &[(NodeId, NodeId)],
) -> SessionStats {
    let mut stats = SessionStats {
        sessions: pairs.len(),
        mean_availability: 0.0,
        failovers: 0,
        reroutes: 0,
        unbroken: 0,
    };
    let mut avail_sum = 0.0;
    for &(u, v) in pairs {
        let r = replay_session(g, brokers, schedule, u, v);
        avail_sum += r.availability();
        stats.failovers += u64::from(r.failovers);
        stats.reroutes += u64::from(r.reroutes);
        if r.connected_epochs == r.epochs {
            stats.unbroken += 1;
        }
    }
    if !pairs.is_empty() {
        stats.mean_availability = avail_sum / pairs.len() as f64;
    }
    stats
}

/// Replay one supervised session while the topology itself evolves.
///
/// Epoch `e` (for `e` in `0..schedule.horizon()`) runs on
/// `graphs[min(e, graphs.len() - 1)]` with broker set
/// `brokers[min(e, brokers.len() - 1)]` — the last entry extends to the
/// remaining epochs, so a static topology is `std::slice::from_ref(&g)`.
/// Vertex ids are stable across epochs (tombstones keep their id), and
/// the schedule plus every broker set must be sized at the *final*
/// vertex count so fault masks stay in range on every epoch graph.
///
/// On top of [`replay_session`]'s checks, a surviving path must keep all
/// its hops present in the current epoch's graph, and endpoints born in
/// a later epoch are outages until they exist.
///
/// # Panics
///
/// Panics if `graphs` or `brokers` is empty.
pub fn replay_session_evolving(
    graphs: &[Graph],
    brokers: &[NodeSet],
    schedule: &FaultSchedule,
    src: NodeId,
    dst: NodeId,
) -> SessionReplay {
    assert!(!graphs.is_empty(), "need at least one epoch graph");
    assert!(!brokers.is_empty(), "need at least one broker set");
    let mut out = SessionReplay {
        epochs: schedule.horizon(),
        connected_epochs: 0,
        failovers: 0,
        reroutes: 0,
        outages: 0,
    };
    let mut active: Option<StitchedPath> = None;
    let mut standby: Option<StitchedPath> = None;
    let mut planned_once = false;
    let mut epoch = 0usize;
    schedule.replay(|state| {
        let g = &graphs[epoch.min(graphs.len() - 1)];
        let bset = &brokers[epoch.min(brokers.len() - 1)];
        epoch += 1;
        let mut alive = bset.clone();
        alive.difference_with(state.failed_brokers());
        alive.difference_with(state.failed_nodes());
        let born = src.index() < g.node_count() && dst.index() < g.node_count();
        if !born || state.failed_nodes().contains(src) || state.failed_nodes().contains(dst) {
            out.outages += 1;
            active = None;
            standby = None;
            return;
        }
        if active
            .as_ref()
            .is_some_and(|p| path_survives_on(g, &alive, state, &p.path))
        {
            out.connected_epochs += 1;
            return;
        }
        if let Some(b) = standby.take() {
            if path_survives_on(g, &alive, state, &b.path) {
                out.failovers += 1;
                active = Some(b);
                out.connected_epochs += 1;
                return;
            }
        }
        if planned_once {
            out.reroutes += 1;
            netgraph::counter!("chaos.reroutes", 1);
        }
        planned_once = true;
        match plan_under(g, &alive, state, src, dst) {
            Some((primary, backup)) => {
                active = Some(primary);
                standby = backup;
                out.connected_epochs += 1;
            }
            None => {
                active = None;
                standby = None;
                out.outages += 1;
            }
        }
    });
    out
}

/// [`replay_session_evolving`] over many pairs, aggregated like
/// [`replay_sessions`].
pub fn replay_sessions_evolving(
    graphs: &[Graph],
    brokers: &[NodeSet],
    schedule: &FaultSchedule,
    pairs: &[(NodeId, NodeId)],
) -> SessionStats {
    let mut stats = SessionStats {
        sessions: pairs.len(),
        mean_availability: 0.0,
        failovers: 0,
        reroutes: 0,
        unbroken: 0,
    };
    let mut avail_sum = 0.0;
    for &(u, v) in pairs {
        let r = replay_session_evolving(graphs, brokers, schedule, u, v);
        avail_sum += r.availability();
        stats.failovers += u64::from(r.failovers);
        stats.reroutes += u64::from(r.reroutes);
        if r.connected_epochs == r.epochs {
            stats.unbroken += 1;
        }
    }
    if !pairs.is_empty() {
        stats.mean_availability = avail_sum / pairs.len() as f64;
    }
    stats
}

/// [`path_survives`] plus the evolving-topology requirement: every hop's
/// edge must still exist in this epoch's graph (a link the growth model
/// withdrew kills the path exactly like a cut).
fn path_survives_on(g: &Graph, alive: &NodeSet, state: &FaultState, path: &[NodeId]) -> bool {
    path_survives(alive, state, path)
        && path.iter().all(|v| v.index() < g.node_count())
        && path.windows(2).all(|w| g.has_edge(w[0], w[1]))
}

/// Does `path` still work this epoch? Every vertex up, every hop's edge
/// uncut, and every hop dominated by a surviving broker.
fn path_survives(alive: &NodeSet, state: &FaultState, path: &[NodeId]) -> bool {
    if path.is_empty() || path.iter().any(|&v| state.failed_nodes().contains(v)) {
        return false;
    }
    path.windows(2).all(|w| {
        !state.failed_edges().contains(&undirected_key(w[0], w[1]))
            && (alive.contains(w[0]) || alive.contains(w[1]))
    })
}

/// Shortest dominating primary + edge-disjoint backup over the degraded
/// topology: the [`crate::failover::failover_plan`] construction run on
/// a [`FaultView`] over the surviving broker set.
fn plan_under(
    g: &Graph,
    alive: &NodeSet,
    state: &FaultState,
    src: NodeId,
    dst: NodeId,
) -> Option<(StitchedPath, Option<StitchedPath>)> {
    let view = FaultView::new(DominatedView::new(g, alive), state);
    let primary = shortest_on(view, alive, src, dst)?;
    let forbidden: BTreeSet<(u32, u32)> = primary
        .path
        .windows(2)
        .map(|w| undirected_key(w[0], w[1]))
        .collect();
    let backup = shortest_on(MaskedView::without_edges(view, &forbidden), alive, src, dst);
    Some((primary, backup))
}

/// One planned broker-set transition of a recovery timeline.
#[derive(Debug, Clone)]
pub struct RecoveryTransition {
    /// Epoch whose entry state the plan lands on (the transition runs
    /// between `epoch - 1` and `epoch`).
    pub epoch: u32,
    /// The dependency-DAG plan for the transition.
    pub plan: ReconfigPlan,
}

/// Plan every broker-set transition a fault schedule forces.
///
/// Walks `schedule` epoch by epoch; whenever the surviving broker set
/// (`brokers` minus that epoch's defections) changes, the transition
/// from the previous epoch's set is planned as a dependency DAG over the
/// supervised `pairs` instead of an atomic swap — defections become
/// deactivation waves, recoveries become activation waves, and affected
/// sessions get migration steps ordered so every intermediate state
/// keeps its invariants (see [`crate::plan`]).
///
/// Only broker defections/recoveries are reconfigurations; node and edge
/// faults are environment, not intent, so they do not produce plans.
///
/// # Errors
///
/// Propagates [`PlanError`] from plan construction (ill-formed inputs).
pub fn plan_recovery(
    g: &Graph,
    brokers: &NodeSet,
    schedule: &FaultSchedule,
    pairs: &[(NodeId, NodeId)],
) -> Result<Vec<RecoveryTransition>, PlanError> {
    let mut out = Vec::new();
    let mut prev = brokers.clone();
    for epoch in 0..schedule.horizon() {
        let state = schedule.state_at(epoch);
        let mut alive = brokers.clone();
        alive.difference_with(state.failed_brokers());
        if alive != prev {
            out.push(RecoveryTransition {
                epoch,
                plan: ReconfigPlan::build(g, &prev, &alive, pairs)?,
            });
            prev = alive;
        }
    }
    Ok(out)
}

/// Shortest path on an arbitrary view, stitched with broker positions.
fn shortest_on<V: GraphView>(
    view: V,
    brokers: &NodeSet,
    src: NodeId,
    dst: NodeId,
) -> Option<StitchedPath> {
    if !view.contains_node(src) || !view.contains_node(dst) {
        return None;
    }
    let path = with_arena(|arena| {
        arena.run_to_target(&view, src, |v| v == dst)?;
        arena.path_to(dst)
    })?;
    let broker_positions = path
        .iter()
        .enumerate()
        .filter(|&(_, v)| brokers.contains(*v))
        .map(|(i, _)| i)
        .collect();
    Some(StitchedPath {
        path,
        broker_positions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;
    use netgraph::{FaultSchedule, Validate};

    fn cycle4() -> Graph {
        from_edges(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0)].map(|(a, b)| (NodeId(a), NodeId(b))),
        )
    }

    #[test]
    fn stable_session_never_retries() {
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.set_horizon(5);
        let r = replay_session(&g, &NodeSet::full(4), &sched, NodeId(0), NodeId(2));
        assert_eq!(r.epochs, 5);
        assert_eq!(r.connected_epochs, 5);
        assert_eq!(r.failovers, 0);
        assert_eq!(r.reroutes, 0);
        assert_eq!(r.outages, 0);
        assert_eq!(r.availability(), 1.0);
    }

    #[test]
    fn edge_cut_triggers_failover_not_reroute() {
        // 0->2 on the 4-cycle: primary 0-1-2, disjoint backup 0-3-2.
        // Cutting a primary edge must switch to the backup (one
        // failover, no replan).
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.fail_edge(1, NodeId(0), NodeId(1));
        sched.set_horizon(3);
        let r = replay_session(&g, &NodeSet::full(4), &sched, NodeId(0), NodeId(2));
        assert_eq!(r.connected_epochs, 3);
        assert_eq!(r.failovers, 1);
        assert_eq!(r.reroutes, 0);
    }

    #[test]
    fn double_cut_forces_reroute_and_recovery_reconnects() {
        // Cut both 0-1 and 0-3 at epoch 1: no path at all; recover 0-1
        // at epoch 2: the session must replan and reconnect.
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.fail_edge(1, NodeId(0), NodeId(1));
        sched.fail_edge(1, NodeId(0), NodeId(3));
        sched.recover_edge(2, NodeId(0), NodeId(1));
        sched.set_horizon(3);
        let r = replay_session(&g, &NodeSet::full(4), &sched, NodeId(0), NodeId(2));
        assert_eq!(r.outages, 1);
        assert_eq!(r.connected_epochs, 2);
        assert!(r.reroutes >= 1);
    }

    #[test]
    fn broker_defection_breaks_domination() {
        // Path 0-1-2, broker {1} only. When 1 defects, no hop is
        // dominated: outage even though the physical path survives.
        let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let brokers = NodeSet::from_iter_with_capacity(3, [NodeId(1)]);
        let mut sched = FaultSchedule::new(3);
        sched.fail_broker(1, NodeId(1));
        sched.recover_broker(2, NodeId(1));
        sched.set_horizon(3);
        let r = replay_session(&g, &brokers, &sched, NodeId(0), NodeId(2));
        assert_eq!(r.outages, 1);
        assert_eq!(r.connected_epochs, 2);
    }

    #[test]
    fn endpoint_outage_is_an_outage() {
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.fail_node(1, NodeId(2));
        sched.set_horizon(2);
        let r = replay_session(&g, &NodeSet::full(4), &sched, NodeId(0), NodeId(2));
        assert_eq!(r.connected_epochs, 1);
        assert_eq!(r.outages, 1);
    }

    #[test]
    fn evolving_static_topology_matches_plain_replay() {
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.fail_edge(1, NodeId(0), NodeId(1));
        sched.set_horizon(3);
        let brokers = NodeSet::full(4);
        let plain = replay_session(&g, &brokers, &sched, NodeId(0), NodeId(2));
        let evolving = replay_session_evolving(
            std::slice::from_ref(&g),
            std::slice::from_ref(&brokers),
            &sched,
            NodeId(0),
            NodeId(2),
        );
        assert_eq!(plain, evolving);
    }

    #[test]
    fn withdrawn_link_behaves_like_a_cut() {
        // Epoch 0: the 4-cycle. Epoch 1+: growth withdraws edge 0-1.
        // Primary 0-1-2 dies to *churn* (no fault anywhere); the session
        // fails over to the disjoint 0-3-2 backup.
        let g0 = cycle4();
        let mut d = netgraph::GraphDelta::new(4);
        d.remove_edge(NodeId(0), NodeId(1));
        let g1 = g0.apply_delta(&d);
        let mut sched = FaultSchedule::new(4);
        sched.set_horizon(3);
        let brokers = NodeSet::full(4);
        let r = replay_session_evolving(
            &[g0, g1],
            std::slice::from_ref(&brokers),
            &sched,
            NodeId(0),
            NodeId(2),
        );
        assert_eq!(r.connected_epochs, 3);
        assert_eq!(r.failovers, 1);
        assert_eq!(r.reroutes, 0);
        assert_eq!(r.outages, 0);
    }

    #[test]
    fn late_born_destination_is_outage_until_it_exists() {
        // Epoch 0: path 0-1. Epoch 1+: newborn vertex 2 attaches to 1.
        // Sessions to 2 are outages while it does not exist, then
        // connect; the first plan is not a reroute.
        let g0 = from_edges(2, [(NodeId(0), NodeId(1))]);
        let mut d = netgraph::GraphDelta::new(2);
        let w = d.add_node();
        d.add_edge(w, NodeId(1));
        let g1 = g0.apply_delta(&d);
        // Final vertex count sizes the schedule and the broker set.
        let mut sched = FaultSchedule::new(3);
        sched.set_horizon(3);
        let brokers = NodeSet::full(3);
        let r = replay_session_evolving(
            &[g0, g1],
            std::slice::from_ref(&brokers),
            &sched,
            NodeId(0),
            w,
        );
        assert_eq!(r.outages, 1);
        assert_eq!(r.connected_epochs, 2);
        assert_eq!(r.reroutes, 0);
    }

    #[test]
    fn churn_and_faults_compose_in_one_timeline() {
        // Epoch 1 cuts 0-1 by *fault*; epoch 2 withdraws 0-3 by *churn*.
        // Failover eats the fault, the churn then forces a replan that
        // finds nothing (0 is disconnected): one failover, one reroute
        // counted, one outage.
        let g0 = cycle4();
        let mut d = netgraph::GraphDelta::new(4);
        d.remove_edge(NodeId(0), NodeId(3));
        let g1 = g0.apply_delta(&d);
        let graphs = [g0.clone(), g0, g1];
        let mut sched = FaultSchedule::new(4);
        sched.fail_edge(1, NodeId(0), NodeId(1));
        sched.set_horizon(3);
        let brokers = NodeSet::full(4);
        let r = replay_session_evolving(
            &graphs,
            std::slice::from_ref(&brokers),
            &sched,
            NodeId(0),
            NodeId(2),
        );
        assert_eq!(r.failovers, 1);
        assert_eq!(r.reroutes, 1);
        assert_eq!(r.outages, 1);
        assert_eq!(r.connected_epochs, 2);
    }

    #[test]
    fn evolving_aggregate_adds_up() {
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.set_horizon(2);
        let brokers = NodeSet::full(4);
        let pairs = [(NodeId(0), NodeId(2)), (NodeId(1), NodeId(3))];
        let stats = replay_sessions_evolving(
            std::slice::from_ref(&g),
            std::slice::from_ref(&brokers),
            &sched,
            &pairs,
        );
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.unbroken, 2);
        assert!((stats.mean_availability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_transitions_are_planned_and_certified() {
        // Broker 1 defects at epoch 1 and recovers at epoch 2: two
        // transitions (deactivation wave, then activation wave), each
        // with a passing certificate and safe cuts.
        let g = cycle4();
        let brokers = NodeSet::full(4);
        let mut sched = FaultSchedule::new(4);
        sched.fail_broker(1, NodeId(1));
        sched.recover_broker(2, NodeId(1));
        sched.set_horizon(3);
        let pairs = [(NodeId(0), NodeId(2))];
        let transitions = plan_recovery(&g, &brokers, &sched, &pairs).expect("plans");
        assert_eq!(transitions.len(), 2);
        assert_eq!(transitions[0].epoch, 1);
        assert_eq!(transitions[1].epoch, 2);
        for t in &transitions {
            let rep = t.plan.certificate(&g).audit();
            assert!(rep.is_ok(), "epoch {}: {rep}", t.epoch);
            let trace = t.plan.execute(&g, 2);
            assert!(trace.cut_audit.is_ok(), "{}", trace.cut_audit);
        }
        // Node/edge faults alone plan nothing.
        let mut quiet = FaultSchedule::new(4);
        quiet.fail_edge(1, NodeId(0), NodeId(1));
        quiet.set_horizon(3);
        assert!(plan_recovery(&g, &brokers, &quiet, &pairs)
            .expect("plans")
            .is_empty());
    }

    #[test]
    fn aggregate_stats_add_up() {
        let g = cycle4();
        let mut sched = FaultSchedule::new(4);
        sched.fail_edge(1, NodeId(0), NodeId(1));
        sched.set_horizon(2);
        let pairs = [(NodeId(0), NodeId(2)), (NodeId(1), NodeId(3))];
        let stats = replay_sessions(&g, &NodeSet::full(4), &sched, &pairs);
        assert_eq!(stats.sessions, 2);
        assert!(stats.mean_availability > 0.99);
        assert_eq!(stats.unbroken, 2);
        // Both primaries route through the cut 0-1 edge (BFS discovers
        // lower ids first, so 1-3 plans 1-0-3); both fail over.
        assert_eq!(stats.failovers, 2);
        assert_eq!(stats.reroutes, 0);
    }
}
