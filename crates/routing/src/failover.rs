//! Redundant dominating paths for failover.
//!
//! A broker set that *supervises* traffic (the paper's framing: QoS
//! measurement, control, renegotiation) needs an alternative route the
//! moment a link degrades. This module computes edge-disjoint
//! B-dominating path pairs: primary = shortest dominating path,
//! backup = shortest dominating path avoiding every edge of the primary.

use crate::stitch::{stitch_path, StitchedPath};
use netgraph::{with_arena, DominatedView, Graph, MaskedView, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A primary/backup dominating path pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailoverPlan {
    /// Shortest B-dominating path.
    pub primary: StitchedPath,
    /// Shortest B-dominating path edge-disjoint from the primary, when
    /// one exists.
    pub backup: Option<StitchedPath>,
}

impl FailoverPlan {
    /// Whether a disjoint backup exists.
    pub fn is_protected(&self) -> bool {
        self.backup.is_some()
    }
}

/// Compute a failover plan for `(src, dst)` under broker set `brokers`.
///
/// Returns `None` when not even a primary dominating path exists. The
/// backup avoids the primary's *edges* (vertices may repeat — endpoint
/// vertices necessarily do).
pub fn failover_plan(
    g: &Graph,
    brokers: &NodeSet,
    src: NodeId,
    dst: NodeId,
) -> Option<FailoverPlan> {
    let primary = stitch_path(g, brokers, src, dst)?;
    let forbidden: BTreeSet<(u32, u32)> = primary
        .path
        .windows(2)
        .map(|w| edge_key(w[0], w[1]))
        .collect();
    let backup = dominated_path_avoiding(g, brokers, src, dst, &forbidden);
    Some(FailoverPlan { primary, backup })
}

use netgraph::undirected_key as edge_key;

/// Shortest B-dominating path from `src` to `dst` avoiding `forbidden`
/// edges.
pub fn dominated_path_avoiding(
    g: &Graph,
    brokers: &NodeSet,
    src: NodeId,
    dst: NodeId,
    forbidden: &BTreeSet<(u32, u32)>,
) -> Option<StitchedPath> {
    if src == dst {
        return stitch_path(g, brokers, src, dst);
    }
    let view = MaskedView::without_edges(DominatedView::new(g, brokers), forbidden);
    let path = with_arena(|arena| {
        arena.run_to_target(view, src, |v| v == dst)?;
        arena.path_to(dst)
    })?;
    let broker_positions = path
        .iter()
        .enumerate()
        .filter(|&(_, v)| brokers.contains(*v))
        .map(|(i, _)| i)
        .collect();
    Some(StitchedPath {
        path,
        broker_positions,
    })
}

/// Fraction of sampled connected pairs with an edge-disjoint backup —
/// the alliance's protected-traffic share.
pub fn protection_ratio(g: &Graph, brokers: &NodeSet, pairs: &[(NodeId, NodeId)]) -> f64 {
    let mut connected = 0usize;
    let mut protected = 0usize;
    for &(u, v) in pairs {
        if let Some(plan) = failover_plan(g, brokers, u, v) {
            connected += 1;
            if plan.is_protected() {
                protected += 1;
            }
        }
    }
    if connected == 0 {
        0.0
    } else {
        protected as f64 / connected as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::connectivity::is_dominating_path;
    use brokerset::max_subgraph_greedy;
    use netgraph::graph::from_edges;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use topology::{InternetConfig, Scale};

    fn set(capacity: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_iter_with_capacity(capacity, ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn cycle_has_disjoint_backup() {
        // 4-cycle, all brokers: two disjoint routes between opposite
        // corners.
        let g = from_edges(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let plan = failover_plan(&g, &NodeSet::full(4), NodeId(0), NodeId(2)).unwrap();
        assert!(plan.is_protected());
        let backup = plan.backup.unwrap();
        assert_eq!(plan.primary.hops(), 2);
        assert_eq!(backup.hops(), 2);
        // Edge-disjointness.
        let pe: BTreeSet<_> = plan
            .primary
            .path
            .windows(2)
            .map(|w| edge_key(w[0], w[1]))
            .collect();
        for w in backup.path.windows(2) {
            assert!(!pe.contains(&edge_key(w[0], w[1])));
        }
    }

    #[test]
    fn tree_has_no_backup() {
        let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let plan = failover_plan(&g, &NodeSet::full(3), NodeId(0), NodeId(2)).unwrap();
        assert!(!plan.is_protected());
    }

    #[test]
    fn backup_respects_domination() {
        // 4-cycle with brokers only {1}: primary 0-1-2; backup 0-3-2 has
        // no broker hop -> not protected.
        let g = from_edges(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let plan = failover_plan(&g, &set(4, &[1]), NodeId(0), NodeId(2)).unwrap();
        assert!(!plan.is_protected());
    }

    #[test]
    fn no_primary_no_plan() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        assert!(failover_plan(&g, &NodeSet::full(3), NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn internet_alliance_mostly_protected() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(71);
        let g = net.graph();
        let sel = max_subgraph_greedy(g, 75);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let pairs: Vec<(NodeId, NodeId)> = (0..150)
            .map(|_| {
                (
                    NodeId(rng.gen_range(0..g.node_count() as u32)),
                    NodeId(rng.gen_range(0..g.node_count() as u32)),
                )
            })
            .filter(|(a, b)| a != b)
            .collect();
        let ratio = protection_ratio(g, sel.brokers(), &pairs);
        // Single-homed stubs (55% of the population) can never have an
        // edge-disjoint pair through their lone provider link, so the
        // ratio sits well below 1 by construction.
        assert!(
            (0.2..=0.95).contains(&ratio),
            "protection ratio {ratio} outside the multihoming band"
        );
        // Verify both paths of a few plans are genuine dominating paths.
        let mut verified = 0;
        for &(u, v) in pairs.iter().take(40) {
            if let Some(plan) = failover_plan(g, sel.brokers(), u, v) {
                if u != v {
                    assert!(is_dominating_path(g, sel.brokers(), &plan.primary.path));
                    if let Some(b) = &plan.backup {
                        assert!(is_dominating_path(g, sel.brokers(), &b.path));
                        verified += 1;
                    }
                }
            }
        }
        assert!(verified > 5);
    }
}
