//! Broker-mediated path stitching.
//!
//! Given a source, a destination and a broker set, produce the concrete
//! B-dominating path a brokerage deployment would install: shortest in
//! hops over the dominated edge set `{(u, v) : u ∈ B ∨ v ∈ B}`. The
//! result carries enough metadata (which hops are brokers, the broker
//! segments) for SLA accounting in the economics layer.

use netgraph::{with_arena, DominatedView, Graph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};

/// A concrete B-dominating path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StitchedPath {
    /// Vertices from source to destination inclusive.
    pub path: Vec<NodeId>,
    /// Indices into `path` that are brokers.
    pub broker_positions: Vec<usize>,
}

impl StitchedPath {
    /// Number of hops (edges).
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Number of intermediate vertices (excluding endpoints) that are
    /// *not* brokers — the "employees" the broker set must hire in the
    /// economic model of Section 7.
    pub fn hired_employees(&self) -> usize {
        if self.path.len() <= 2 {
            return 0;
        }
        let brokers: std::collections::BTreeSet<usize> =
            self.broker_positions.iter().copied().collect();
        (1..self.path.len() - 1)
            .filter(|i| !brokers.contains(i))
            .count()
    }

    /// Whether every intermediate vertex is a broker ("carried out by the
    /// alliance solely", Fig. 5a).
    pub fn broker_only(&self) -> bool {
        self.hired_employees() == 0
    }
}

/// Compute the shortest B-dominating path from `src` to `dst`.
///
/// Returns `None` when no dominating path exists. The endpoints need not
/// be brokers (they are customers of the brokerage).
pub fn stitch_path(g: &Graph, brokers: &NodeSet, src: NodeId, dst: NodeId) -> Option<StitchedPath> {
    if src == dst {
        return Some(mk(brokers, vec![src]));
    }
    let view = DominatedView::new(g, brokers);
    let path = with_arena(|arena| {
        arena.run_to_target(view, src, |v| v == dst)?;
        arena.path_to(dst)
    })?;
    Some(mk(brokers, path))
}

/// Compute the *latency-optimal* B-dominating path from `src` to `dst`
/// under a [`crate::LatencyModel`] — Dijkstra over the dominated edge
/// set. This is what a QoS brokerage would actually install when the SLA
/// is a latency bound rather than a hop budget.
///
/// Returns `None` when no dominating path exists.
pub fn stitch_path_weighted(
    g: &Graph,
    brokers: &NodeSet,
    latency: &crate::LatencyModel,
    src: NodeId,
    dst: NodeId,
) -> Option<StitchedPath> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    if src == dst {
        return Some(mk(brokers, vec![src]));
    }
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    // Min-heap entries ordered by (latency, node) with reversed compare.
    struct Entry(f64, NodeId);
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.0 == other.0 && self.1 == other.1
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            // total_cmp keeps the ordering total even for NaN latencies.
            other
                .0
                .total_cmp(&self.0)
                .then_with(|| other.1.cmp(&self.1))
        }
    }
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    parent[src.index()] = Some(src);
    heap.push(Entry(0.0, src));
    while let Some(Entry(d, u)) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        if u == dst {
            break;
        }
        let u_broker = brokers.contains(u);
        for &v in g.neighbors(u) {
            if !u_broker && !brokers.contains(v) {
                continue;
            }
            let Some(w) = latency.edge_latency(u, v) else {
                debug_assert!(false, "graph edge {u:?}-{v:?} is not priced");
                continue;
            };
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some(u);
                heap.push(Entry(nd, v));
            }
        }
    }
    let path = netgraph::traverse::path_from_parents(&parent, src, dst)?;
    Some(mk(brokers, path))
}

/// Materialize a [`brokerset::StitchAnswer`] from the query plane into
/// the concrete installed route: shortest dominated paths `src → broker`
/// and `broker → dst`, concatenated at the broker.
///
/// Because an optimal answer's broker lies on a shortest dominated
/// path (`hops_s + hops_t` equals the dominated distance), the
/// concatenation is itself a shortest dominated path. Returns `None`
/// when either leg is missing or its length disagrees with the answer —
/// i.e. the answer is stale for this graph/broker set.
pub fn stitch_answer_path(
    g: &Graph,
    brokers: &NodeSet,
    src: NodeId,
    dst: NodeId,
    answer: &brokerset::StitchAnswer,
) -> Option<StitchedPath> {
    if src == dst {
        return (answer.hops() == 0).then(|| mk(brokers, vec![src]));
    }
    let view = DominatedView::new(g, brokers);
    let to_broker = with_arena(|arena| {
        arena.run_to_target(view, src, |v| v == answer.broker)?;
        arena.path_to(answer.broker)
    })?;
    let from_broker = with_arena(|arena| {
        arena.run_to_target(view, answer.broker, |v| v == dst)?;
        arena.path_to(dst)
    })?;
    if to_broker.len() != answer.hops_s as usize + 1
        || from_broker.len() != answer.hops_t as usize + 1
    {
        return None;
    }
    let mut path = to_broker;
    path.extend_from_slice(&from_broker[1..]);
    Some(mk(brokers, path))
}

fn mk(brokers: &NodeSet, path: Vec<NodeId>) -> StitchedPath {
    let broker_positions = path
        .iter()
        .enumerate()
        .filter(|&(_, v)| brokers.contains(*v))
        .map(|(i, _)| i)
        .collect();
    StitchedPath {
        path,
        broker_positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::connectivity::is_dominating_path;
    use netgraph::graph::from_edges;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn set(capacity: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_iter_with_capacity(capacity, ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn stitches_through_broker() {
        // 0-1-2 with broker 1.
        let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let b = set(3, &[1]);
        let p = stitch_path(&g, &b, NodeId(0), NodeId(2)).unwrap();
        assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(p.hops(), 2);
        assert_eq!(p.broker_positions, vec![1]);
        assert!(p.broker_only());
        assert_eq!(p.hired_employees(), 0);
    }

    #[test]
    fn refuses_undominated_route() {
        // 0-1-2-3, broker {1}: 3 unreachable.
        let g = from_edges(4, (0..3).map(|i| (NodeId(i), NodeId(i + 1))));
        let b = set(4, &[1]);
        assert!(stitch_path(&g, &b, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn prefers_shortest_dominating_path() {
        // Short undominated route 0-4-3 vs longer dominated 0-1-2-3.
        let g = from_edges(
            5,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let b = set(5, &[1, 2]);
        let p = stitch_path(&g, &b, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p.path, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn employee_count() {
        // 0-1-2-3-4 with brokers {1, 3}: vertex 2 is a hired employee.
        let g = from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))));
        let b = set(5, &[1, 3]);
        let p = stitch_path(&g, &b, NodeId(0), NodeId(4)).unwrap();
        assert_eq!(p.hired_employees(), 1);
        assert!(!p.broker_only());
    }

    #[test]
    fn self_path() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        let p = stitch_path(&g, &NodeSet::new(2), NodeId(0), NodeId(0)).unwrap();
        assert_eq!(p.path, vec![NodeId(0)]);
        assert_eq!(p.hops(), 0);
        assert!(p.broker_only());
    }

    #[test]
    fn index_answers_materialize_to_shortest_paths() {
        use brokerset::ReachIndex;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = netgraph::barabasi_albert(70, 2, &mut rng);
        let sel = brokerset::greedy_mcb(&g, 7);
        let b = sel.brokers();
        let idx = ReachIndex::build(&g, b, 6, 1);
        let mut materialized = 0usize;
        for (s, t) in [(0u32, 40u32), (3, 55), (10, 61), (5, 5), (20, 33)] {
            let (s, t) = (NodeId(s), NodeId(t));
            match idx.query(s, t, 6) {
                Some(ans) => {
                    let p = stitch_answer_path(&g, b, s, t, &ans).expect("answer materializes");
                    assert_eq!(p.hops() as u32, ans.hops());
                    let direct = stitch_path(&g, b, s, t).unwrap();
                    assert_eq!(p.hops(), direct.hops(), "not a shortest dominated path");
                    if s != t {
                        assert!(is_dominating_path(&g, b, &p.path));
                    }
                    materialized += 1;
                }
                None => {
                    assert!(stitch_path(&g, b, s, t).is_none_or(|p| p.hops() > 6));
                }
            }
        }
        assert!(materialized >= 3);

        // A stale answer (split that disagrees with the topology) is
        // refused rather than materialized into a wrong-length route.
        let ans = idx.query(NodeId(0), NodeId(40), 6).unwrap();
        let stale = brokerset::StitchAnswer {
            hops_s: ans.hops_s + 1,
            ..ans
        };
        assert!(stitch_answer_path(&g, b, NodeId(0), NodeId(40), &stale).is_none());
    }

    #[test]
    fn weighted_stitch_minimizes_latency() {
        use crate::LatencyModel;
        use topology::{InternetConfig, Scale};
        let net = InternetConfig::scaled(Scale::Tiny).generate(13);
        let g = net.graph();
        let latency = LatencyModel::sample(&net, 2);
        let sel = brokerset::max_subgraph_greedy(g, 75);
        let brokers = sel.brokers();
        let mut improved = 0usize;
        let mut compared = 0usize;
        for (u, v) in [(0u32, 500u32), (3, 900), (17, 701), (42, 1000), (8, 650)] {
            let (u, v) = (NodeId(u), NodeId(v));
            let hops = stitch_path(g, brokers, u, v);
            let fast = stitch_path_weighted(g, brokers, &latency, u, v);
            match (hops, fast) {
                (Some(h), Some(f)) => {
                    compared += 1;
                    let lh = latency.path_latency(&h.path).unwrap();
                    let lf = latency.path_latency(&f.path).unwrap();
                    assert!(
                        lf <= lh + 1e-9,
                        "weighted stitch slower: {lf} vs hop-based {lh}"
                    );
                    if lf < lh - 1e-9 {
                        improved += 1;
                    }
                    assert!(brokerset::connectivity::is_dominating_path(
                        g, brokers, &f.path
                    ));
                }
                (a, b) => assert_eq!(a.is_some(), b.is_some(), "reachability must agree"),
            }
        }
        assert!(compared >= 3);
        let _ = improved; // usually > 0, but not guaranteed per seed
    }

    #[test]
    fn weighted_stitch_self_and_unreachable() {
        use crate::LatencyModel;
        use topology::{InternetConfig, Scale};
        let net = InternetConfig::scaled(Scale::Tiny).generate(13);
        let g = net.graph();
        let latency = LatencyModel::sample(&net, 2);
        let none = NodeSet::new(g.node_count());
        assert!(stitch_path_weighted(g, &none, &latency, NodeId(0), NodeId(1)).is_none());
        let p = stitch_path_weighted(g, &none, &latency, NodeId(5), NodeId(5)).unwrap();
        assert_eq!(p.path, vec![NodeId(5)]);
    }

    proptest! {
        /// Any stitched path is a genuine B-dominating path, and its
        /// length matches the dominated-BFS distance.
        #[test]
        fn stitched_paths_are_dominating(seed in 0u64..80) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(60, 2, &mut rng);
            let sel = brokerset::greedy_mcb(&g, 6);
            let b = sel.brokers();
            let src = NodeId((seed % 60) as u32);
            let dst = NodeId(((seed * 7 + 13) % 60) as u32);
            if let Some(p) = stitch_path(&g, b, src, dst) {
                if src != dst {
                    prop_assert!(is_dominating_path(&g, b, &p.path));
                }
                prop_assert_eq!(p.path.first(), Some(&src));
                prop_assert_eq!(p.path.last(), Some(&dst));
            }
        }
    }
}
