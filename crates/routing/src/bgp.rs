//! BGP-style route selection under Gao–Rexford preferences.
//!
//! The brokerage scheme runs *in parallel to BGP* (Section 1), so the
//! examples and extension experiments need the BGP default path to
//! compare against. This module computes, per destination, the route
//! every AS would select under the standard policy model:
//!
//! 1. prefer routes learned from customers over peers over providers
//!    (economics: customer routes earn money);
//! 2. among equals, prefer the shortest AS path;
//! 3. tie-break deterministically on the lower next-hop id.
//!
//! Routes propagate by export rules: routes are advertised to customers
//! always, but only customer-learned routes go to peers and providers.
//! Computation is the classic three-stage relaxation (customers up,
//! peers across, providers down), `O(|V| + |E|)` per destination.

use crate::policy::{EdgeClass, PolicyGraph};
use netgraph::{NodeId, NodeSet};
use serde::{Deserialize, Serialize};

/// How a route was learned, in preference order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RouteClass {
    /// Destination is this AS itself.
    SelfRoute,
    /// Learned from a customer (most preferred).
    Customer,
    /// Learned from a peer / over an exchange.
    Peer,
    /// Learned from a provider (least preferred).
    Provider,
}

/// The routing table toward one destination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteTable {
    /// The destination AS.
    pub destination: NodeId,
    /// Per node: the selected route, if the destination is reachable.
    routes: Vec<Option<Route>>,
}

/// One selected route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Preference class of the route.
    pub class: RouteClass,
    /// AS-path length in hops.
    pub path_len: u32,
    /// The neighbor the traffic is forwarded to (self for the
    /// destination).
    pub next_hop: NodeId,
}

impl RouteTable {
    /// The route selected at `v`, if any.
    pub fn route(&self, v: NodeId) -> Option<Route> {
        self.routes[v.index()]
    }

    /// Walk next-hops from `src` to the destination; `None` if
    /// unreachable. The walk is cycle-free by construction of the
    /// preference lattice.
    pub fn path_from(&self, src: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![src];
        let mut cur = src;
        let mut guard = self.routes.len() + 1;
        while cur != self.destination {
            let r = self.routes[cur.index()]?;
            cur = r.next_hop;
            path.push(cur);
            let Some(g) = guard.checked_sub(1) else {
                debug_assert!(false, "next-hop walk cycled");
                return None;
            };
            guard = g;
        }
        Some(path)
    }

    /// Number of nodes with a route to the destination (including it).
    pub fn reachable_count(&self) -> usize {
        self.routes.iter().flatten().count()
    }
}

/// Compute every AS's BGP route toward `dst`.
pub fn bgp_routes(pg: &PolicyGraph, dst: NodeId) -> RouteTable {
    let n = pg.node_count();
    let mut routes: Vec<Option<Route>> = vec![None; n];
    routes[dst.index()] = Some(Route {
        class: RouteClass::SelfRoute,
        path_len: 0,
        next_hop: dst,
    });

    // Stage 1 — customer routes: propagate along ToCustomer edges
    // reversed, i.e. from a node to its *providers* (the provider learns
    // a customer route). Chaotic worklist iteration: `better()` is a
    // strict improvement in a finite lattice, so the relaxation reaches
    // the same unique fixed point in any processing order (LIFO here).
    let mut worklist = vec![dst];
    while let Some(u) = worklist.pop() {
        let Some(base) = routes[u.index()] else {
            debug_assert!(false, "queued node {u:?} has no route");
            continue;
        };
        for &(v, class) in pg.out_edges(u) {
            // u advertises to v; v learns a customer route when u is v's
            // customer, i.e. the edge u -> v is ToProvider.
            if class != EdgeClass::ToProvider {
                continue;
            }
            let cand = Route {
                class: RouteClass::Customer,
                path_len: base.path_len + 1,
                next_hop: u,
            };
            if better(cand, routes[v.index()]) {
                routes[v.index()] = Some(cand);
                worklist.push(v);
            }
        }
    }

    // Stage 2 — peer routes: a node with a self/customer route exports it
    // across one peer/exchange hop.
    let snapshot: Vec<Option<Route>> = routes.clone();
    for (u, entry) in snapshot.iter().enumerate() {
        let Some(base) = entry else { continue };
        if !matches!(base.class, RouteClass::SelfRoute | RouteClass::Customer) {
            continue;
        }
        let u = NodeId::from(u);
        for &(v, class) in pg.out_edges(u) {
            let hop = match class {
                EdgeClass::Peer | EdgeClass::AllianceFree => 1,
                // Crossing an exchange: AS -> IXP -> AS costs two graph
                // hops; handle the IXP as a relay below.
                EdgeClass::IntoIxp => {
                    // Give the IXP vertex itself a peer route so stage 3
                    // can't leak through it; real ASes behind it are
                    // handled via the relay loop after this one.
                    1
                }
                _ => continue,
            };
            let cand = Route {
                class: RouteClass::Peer,
                path_len: base.path_len + hop,
                next_hop: u,
            };
            if better(cand, routes[v.index()]) {
                routes[v.index()] = Some(cand);
            }
        }
    }
    // Exchange relay: members across an IXP from a customer-route holder
    // get a peer route (AS—IXP—AS = one business peering, two hops).
    for (u, entry) in snapshot.iter().enumerate() {
        let Some(base) = entry else { continue };
        if !matches!(base.class, RouteClass::SelfRoute | RouteClass::Customer) {
            continue;
        }
        let u = NodeId::from(u);
        for &(ixp, class) in pg.out_edges(u) {
            if class != EdgeClass::IntoIxp {
                continue;
            }
            for &(v, back) in pg.out_edges(ixp) {
                if back != EdgeClass::OutOfIxp || v == u {
                    continue;
                }
                let cand = Route {
                    class: RouteClass::Peer,
                    path_len: base.path_len + 2,
                    next_hop: ixp,
                };
                if better(cand, routes[v.index()]) {
                    routes[v.index()] = Some(cand);
                }
            }
        }
    }

    // Stage 3 — provider routes: any route holder exports to customers;
    // customers re-export provider routes to *their* customers. Same
    // order-independent fixed-point argument as stage 1.
    let mut worklist: Vec<NodeId> = (0..n)
        .filter(|&v| routes[v].is_some())
        .map(NodeId::from)
        .collect();
    while let Some(u) = worklist.pop() {
        let Some(base) = routes[u.index()] else {
            debug_assert!(false, "queued node {u:?} has no route");
            continue;
        };
        for &(v, class) in pg.out_edges(u) {
            // u advertises to its customer v: edge u -> v is ToCustomer.
            if class != EdgeClass::ToCustomer {
                continue;
            }
            let cand = Route {
                class: RouteClass::Provider,
                path_len: base.path_len + 1,
                next_hop: u,
            };
            if better(cand, routes[v.index()]) {
                routes[v.index()] = Some(cand);
                worklist.push(v);
            }
        }
    }

    RouteTable {
        destination: dst,
        routes,
    }
}

/// Preference order: class first, then path length, then next-hop id.
fn better(cand: Route, cur: Option<Route>) -> bool {
    match cur {
        None => true,
        Some(cur) => {
            (cand.class, cand.path_len, cand.next_hop) < (cur.class, cur.path_len, cur.next_hop)
        }
    }
}

/// Fraction of BGP default paths (over sampled destinations) that are
/// already B-dominated — how much supervision the alliance gets "for
/// free" without moving traffic off its default route.
///
/// Only AS endpoints count: IXP vertices neither originate traffic nor
/// act as destinations (an IXP "destination" has no exportable
/// self-route, and IXP relay vertices holding stage-2 routes are fabric,
/// not sources), so both are skipped.
pub fn bgp_paths_dominated(pg: &PolicyGraph, brokers: &NodeSet, destinations: &[NodeId]) -> f64 {
    let mut dominated = 0u64;
    let mut total = 0u64;
    for &d in destinations {
        if pg.is_ixp(d) {
            continue; // exchanges are not traffic destinations
        }
        let table = bgp_routes(pg, d);
        for v in 0..pg.node_count() {
            let v = NodeId::from(v);
            if v == d || pg.is_ixp(v) {
                continue;
            }
            let Some(path) = table.path_from(v) else {
                continue;
            };
            total += 1;
            let ok = path
                .windows(2)
                .all(|w| brokers.contains(w[0]) || brokers.contains(w[1]));
            if ok {
                dominated += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        dominated as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;
    use topology::{Internet, InternetConfig, NodeKind, Relationship, Scale};

    /// T0 ==peer== T1; T0 provider of C0, C1; T1 provider of C2.
    fn fixture() -> PolicyGraph {
        let edges = [
            (0u32, 2u32, Relationship::ProviderOfB),
            (0, 3, Relationship::ProviderOfB),
            (1, 4, Relationship::ProviderOfB),
            (0, 1, Relationship::Peer),
        ];
        let g = from_edges(5, edges.iter().map(|&(a, b, _)| (NodeId(a), NodeId(b))));
        let kinds = vec![
            NodeKind::Tier1,
            NodeKind::Tier1,
            NodeKind::Access,
            NodeKind::Access,
            NodeKind::Access,
        ];
        let names = (0..5).map(|i| format!("n{i}")).collect();
        let rels = edges
            .iter()
            .map(|&(a, b, r)| (NodeId(a), NodeId(b), r))
            .collect();
        PolicyGraph::new(&Internet::from_parts(g, kinds, names, rels))
    }

    #[test]
    fn provider_prefers_customer_route() {
        let pg = fixture();
        // Routes toward C0 (node 2): T0 learns a customer route.
        let t = bgp_routes(&pg, NodeId(2));
        let r = t.route(NodeId(0)).unwrap();
        assert_eq!(r.class, RouteClass::Customer);
        assert_eq!(r.path_len, 1);
        // T1 learns it over the peering.
        let r1 = t.route(NodeId(1)).unwrap();
        assert_eq!(r1.class, RouteClass::Peer);
        // C2 gets it from its provider T1.
        let r2 = t.route(NodeId(4)).unwrap();
        assert_eq!(r2.class, RouteClass::Provider);
        assert_eq!(
            t.path_from(NodeId(4)).unwrap(),
            vec![NodeId(4), NodeId(1), NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn sibling_customer_via_shared_provider() {
        let pg = fixture();
        let t = bgp_routes(&pg, NodeId(3));
        // C0 -> T0 -> C1.
        assert_eq!(
            t.path_from(NodeId(2)).unwrap(),
            vec![NodeId(2), NodeId(0), NodeId(3)]
        );
        assert_eq!(t.reachable_count(), 5);
    }

    #[test]
    fn valley_free_by_construction() {
        // Routes never climb after descending: check on a generated net.
        let net = InternetConfig::scaled(Scale::Tiny).generate(7);
        let pg = PolicyGraph::new(&net);
        for d in [0u32, 50, 300, 900] {
            let t = bgp_routes(&pg, NodeId(d));
            for s in (0..pg.node_count() as u32).step_by(211) {
                if let Some(p) = t.path_from(NodeId(s)) {
                    assert!(
                        crate::valleyfree::is_valley_free(&pg, &p),
                        "BGP path {p:?} violates valley-freeness"
                    );
                }
            }
        }
    }

    #[test]
    fn reachability_matches_valley_free_reach() {
        // BGP reachability can't exceed valley-free reachability (it is a
        // specific valley-free route choice). Directions: a route at v
        // toward d means a valley-free v -> d path exists.
        let net = InternetConfig::scaled(Scale::Tiny).generate(9);
        let pg = PolicyGraph::new(&net);
        let d = NodeId(100);
        let t = bgp_routes(&pg, d);
        for s in (0..pg.node_count() as u32).step_by(97) {
            let s = NodeId(s);
            if s == d {
                continue;
            }
            if t.route(s).is_some() {
                let reach = crate::valleyfree::valley_free_reach(
                    &pg,
                    s,
                    crate::valleyfree::ReachOptions::default(),
                );
                assert!(
                    reach.contains(d),
                    "BGP route exists but no valley-free path"
                );
            }
        }
    }

    #[test]
    fn ixp_relay_gives_peer_routes() {
        // C0 and C1 share an IXP; with no other links, routes cross it.
        let edges = [
            (0u32, 2u32, Relationship::IxpMembership),
            (1, 2, Relationship::IxpMembership),
        ];
        let g = from_edges(3, edges.iter().map(|&(a, b, _)| (NodeId(a), NodeId(b))));
        let net = Internet::from_parts(
            g,
            vec![NodeKind::Access, NodeKind::Access, NodeKind::Ixp],
            (0..3).map(|i| format!("n{i}")).collect(),
            edges
                .iter()
                .map(|&(a, b, r)| (NodeId(a), NodeId(b), r))
                .collect(),
        );
        let pg = PolicyGraph::new(&net);
        let t = bgp_routes(&pg, NodeId(0));
        let r = t.route(NodeId(1)).unwrap();
        assert_eq!(r.class, RouteClass::Peer);
        assert_eq!(r.path_len, 2);
        assert_eq!(
            t.path_from(NodeId(1)).unwrap(),
            vec![NodeId(1), NodeId(2), NodeId(0)]
        );
    }

    #[test]
    fn ixp_endpoints_excluded_from_domination_stats() {
        // An all-IXP destination list yields no pairs instead of a bogus
        // 0.0-over-all-vertices figure.
        let net = InternetConfig::scaled(Scale::Tiny).generate(11);
        let pg = PolicyGraph::new(&net);
        let ixps: Vec<NodeId> = net
            .graph()
            .nodes()
            .filter(|&v| net.kind(v) == NodeKind::Ixp)
            .take(3)
            .collect();
        assert!(!ixps.is_empty());
        for &x in &ixps {
            assert!(pg.is_ixp(x));
        }
        let full = netgraph::NodeSet::full(net.graph().node_count());
        assert_eq!(bgp_paths_dominated(&pg, &full, &ixps), 0.0);
    }

    #[test]
    fn dominated_default_paths_fraction() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(11);
        let pg = PolicyGraph::new(&net);
        let g = net.graph();
        let sel = brokerset::max_subgraph_greedy(g, 80);
        let none = netgraph::NodeSet::new(g.node_count());
        let dests: Vec<NodeId> = (0..5).map(|i| NodeId(i * 37)).collect();
        let with = bgp_paths_dominated(&pg, sel.brokers(), &dests);
        let without = bgp_paths_dominated(&pg, &none, &dests);
        assert!(
            with > 0.3,
            "alliance should dominate many default paths ({with})"
        );
        assert!(without < 1e-9);
        assert!(with <= 1.0);
    }
}
