//! SLA supervision simulation.
//!
//! The paper's brokers take "responsibilities of network performance
//! measurement, control, resource negotiation" (Section 1). This module
//! simulates that control loop over discrete epochs:
//!
//! 1. each epoch, every edge's latency jitters around the
//!    [`crate::LatencyModel`] baseline; occasionally an edge *degrades*
//!    (multiplies its latency) for a few epochs;
//! 2. sessions (src, dst, latency SLA) ride their installed dominating
//!    path; the supervising alliance observes end-to-end latency every
//!    epoch (it dominates every hop, so it *can* observe);
//! 3. on an SLA breach the alliance reroutes onto the best currently
//!    available dominating path (the failover backup, re-stitched);
//! 4. the run reports per-session violation and repair statistics.
//!
//! Unsupervised traffic (the BGP baseline) rides a fixed valley-free
//! path and cannot reroute — the comparison quantifies the value of
//! supervision.

use crate::failover::dominated_path_avoiding;
use crate::qos::LatencyModel;
use crate::stitch::stitch_path;
use netgraph::{Graph, NodeId, NodeSet};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// A supervised (or baseline) traffic session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// Source AS.
    pub src: NodeId,
    /// Destination AS.
    pub dst: NodeId,
    /// Latency SLA in ms.
    pub sla_ms: f64,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Number of epochs to simulate.
    pub epochs: usize,
    /// Per-epoch probability that a given *path edge* degrades.
    pub degrade_prob: f64,
    /// Latency multiplier while degraded.
    pub degrade_factor: f64,
    /// How many epochs a degradation lasts.
    pub degrade_epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            epochs: 100,
            degrade_prob: 0.01,
            degrade_factor: 6.0,
            degrade_epochs: 5,
            seed: 0,
        }
    }
}

/// Per-session outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Epochs in violation while supervised (after any reroute applied
    /// the same epoch).
    pub supervised_violations: usize,
    /// Epochs in violation on the fixed baseline path.
    pub baseline_violations: usize,
    /// Number of reroutes the supervisor performed.
    pub reroutes: usize,
    /// Whether the session could be admitted at all (a dominating path
    /// within SLA existed at epoch 0).
    pub admitted: bool,
}

/// Aggregate outcome of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorReport {
    /// Per-session outcomes (admitted sessions only appear with
    /// `admitted = true`).
    pub sessions: Vec<SessionReport>,
    /// Epoch count simulated.
    pub epochs: usize,
}

impl MonitorReport {
    /// Mean violation rate (violations per epoch) under supervision.
    pub fn supervised_violation_rate(&self) -> f64 {
        self.rate(|s| s.supervised_violations)
    }

    /// Mean violation rate of the fixed baseline.
    pub fn baseline_violation_rate(&self) -> f64 {
        self.rate(|s| s.baseline_violations)
    }

    fn rate(&self, f: impl Fn(&SessionReport) -> usize) -> f64 {
        let admitted: Vec<_> = self.sessions.iter().filter(|s| s.admitted).collect();
        if admitted.is_empty() || self.epochs == 0 {
            return 0.0;
        }
        admitted.iter().map(|s| f(s)).sum::<usize>() as f64 / (admitted.len() * self.epochs) as f64
    }
}

/// Run the supervision loop.
///
/// # Panics
///
/// Panics if `cfg.epochs == 0` or probabilities are out of range.
pub fn supervise(
    g: &Graph,
    brokers: &NodeSet,
    latency: &LatencyModel,
    sessions: &[Session],
    cfg: &MonitorConfig,
) -> MonitorReport {
    assert!(cfg.epochs > 0, "need at least one epoch");
    assert!(
        (0.0..=1.0).contains(&cfg.degrade_prob),
        "degrade_prob out of range"
    );
    assert!(
        cfg.degrade_epochs > 0 || cfg.degrade_prob == 0.0,
        "degrade_epochs must be positive when degradations can occur \
         (a 0-epoch degradation would underflow the aging counter)"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    struct Live {
        report: SessionReport,
        supervised_path: Option<Vec<NodeId>>,
        baseline_path: Option<Vec<NodeId>>,
        sla: f64,
        src: NodeId,
        dst: NodeId,
    }
    let mut live: Vec<Live> = sessions
        .iter()
        .map(|s| {
            let supervised = stitch_path(g, brokers, s.src, s.dst).map(|p| p.path);
            let admitted = supervised
                .as_ref()
                .and_then(|p| latency.path_latency(p))
                .is_some_and(|l| l <= s.sla_ms);
            Live {
                report: SessionReport {
                    supervised_violations: 0,
                    baseline_violations: 0,
                    reroutes: 0,
                    admitted,
                },
                baseline_path: supervised.clone(), // same initial route
                supervised_path: supervised,
                sla: s.sla_ms,
                src: s.src,
                dst: s.dst,
            }
        })
        .collect();

    // Degradations: map edge -> remaining epochs.
    let mut degraded: std::collections::BTreeMap<(u32, u32), usize> =
        std::collections::BTreeMap::new();

    for _epoch in 0..cfg.epochs {
        // Age existing degradations.
        degraded.retain(|_, left| {
            *left -= 1;
            *left > 0
        });
        // New degradations strike edges on active paths.
        let mut active_edges: BTreeSet<(u32, u32)> = BTreeSet::new();
        for s in &live {
            for p in [&s.supervised_path, &s.baseline_path].into_iter().flatten() {
                for w in p.windows(2) {
                    active_edges.insert(netgraph::undirected_key(w[0], w[1]));
                }
            }
        }
        // BTreeSet iterates in key order, so the RNG consumption pattern
        // is deterministic by construction (no explicit sort needed).
        for e in active_edges {
            if !degraded.contains_key(&e) && rng.gen_range(0.0..1.0) < cfg.degrade_prob {
                degraded.insert(e, cfg.degrade_epochs);
            }
        }

        let eval = |path: &[NodeId]| -> Option<f64> {
            let mut total = 0.0;
            for w in path.windows(2) {
                let base = latency.edge_latency(w[0], w[1])?;
                let key = netgraph::undirected_key(w[0], w[1]);
                total += if degraded.contains_key(&key) {
                    base * cfg.degrade_factor
                } else {
                    base
                };
            }
            Some(total)
        };

        for s in live.iter_mut() {
            if !s.report.admitted {
                continue;
            }
            // Baseline: fixed path, suffer whatever happens.
            if let Some(p) = &s.baseline_path {
                if eval(p).is_none_or(|l| l > s.sla) {
                    s.report.baseline_violations += 1;
                }
            }
            // Supervised: on breach, try rerouting around degraded edges.
            let breached = s
                .supervised_path
                .as_ref()
                .and_then(|p| eval(p))
                .is_none_or(|l| l > s.sla);
            if breached {
                let forbidden: BTreeSet<(u32, u32)> = degraded.keys().copied().collect();
                let reroute = dominated_path_avoiding(g, brokers, s.src, s.dst, &forbidden);
                let fixed = match reroute {
                    Some(alt) => {
                        let ok = eval(&alt.path).is_some_and(|l| l <= s.sla);
                        if ok {
                            s.supervised_path = Some(alt.path);
                            s.report.reroutes += 1;
                        }
                        ok
                    }
                    None => false,
                };
                if !fixed {
                    s.report.supervised_violations += 1;
                }
            }
        }
    }

    MonitorReport {
        sessions: live.into_iter().map(|s| s.report).collect(),
        epochs: cfg.epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brokerset::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    fn setup() -> (topology::Internet, NodeSet, LatencyModel) {
        let net = InternetConfig::scaled(Scale::Tiny).generate(42);
        let sel = max_subgraph_greedy(net.graph(), 75);
        let latency = LatencyModel::sample(&net, 3);
        (net.clone(), sel.brokers().clone(), latency)
    }

    fn sessions(net: &topology::Internet, n: usize, sla: f64) -> Vec<Session> {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let count = net.graph().node_count() as u32;
        (0..n)
            .map(|_| Session {
                src: NodeId(rng.gen_range(0..count)),
                dst: NodeId(rng.gen_range(0..count)),
                sla_ms: sla,
            })
            .filter(|s| s.src != s.dst)
            .collect()
    }

    #[test]
    fn supervision_beats_fixed_baseline() {
        let (net, brokers, latency) = setup();
        let g = net.graph();
        let ss = sessions(&net, 40, 120.0);
        let cfg = MonitorConfig {
            epochs: 80,
            degrade_prob: 0.02,
            ..Default::default()
        };
        let report = supervise(g, &brokers, &latency, &ss, &cfg);
        let sup = report.supervised_violation_rate();
        let base = report.baseline_violation_rate();
        assert!(
            sup <= base,
            "supervision ({sup}) should not violate more than the baseline ({base})"
        );
        // Reroutes actually happened.
        let reroutes: usize = report.sessions.iter().map(|s| s.reroutes).sum();
        assert!(reroutes > 0, "no reroute in 80 epochs of degradations");
    }

    #[test]
    fn no_degradation_no_violation() {
        let (net, brokers, latency) = setup();
        let ss = sessions(&net, 20, 500.0); // generous SLA
        let cfg = MonitorConfig {
            epochs: 20,
            degrade_prob: 0.0,
            ..Default::default()
        };
        let report = supervise(net.graph(), &brokers, &latency, &ss, &cfg);
        assert_eq!(report.supervised_violation_rate(), 0.0);
        assert_eq!(report.baseline_violation_rate(), 0.0);
    }

    #[test]
    fn impossible_sla_never_admitted() {
        let (net, brokers, latency) = setup();
        let ss = sessions(&net, 10, 0.001);
        let report = supervise(
            net.graph(),
            &brokers,
            &latency,
            &ss,
            &MonitorConfig::default(),
        );
        assert!(report.sessions.iter().all(|s| !s.admitted));
        assert_eq!(report.supervised_violation_rate(), 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (net, brokers, latency) = setup();
        let ss = sessions(&net, 15, 150.0);
        let cfg = MonitorConfig {
            epochs: 30,
            seed: 9,
            ..Default::default()
        };
        let a = supervise(net.graph(), &brokers, &latency, &ss, &cfg);
        let b = supervise(net.graph(), &brokers, &latency, &ss, &cfg);
        assert_eq!(a, b);
    }

    /// Pins the run's exact aggregate output, not just run-to-run
    /// equality. The degradation draws consume RNG in active-edge order;
    /// before the BTreeSet conversion that order came from HashSet
    /// iteration (rescued by an explicit sort). These golden values fail
    /// if any future change perturbs the draw order — e.g. reintroducing
    /// an unordered container on this path.
    #[test]
    fn pinned_degradation_outcome() {
        let (net, brokers, latency) = setup();
        let ss = sessions(&net, 25, 140.0);
        let cfg = MonitorConfig {
            epochs: 60,
            degrade_prob: 0.03,
            seed: 7,
            ..Default::default()
        };
        let report = supervise(net.graph(), &brokers, &latency, &ss, &cfg);
        let sup: usize = report
            .sessions
            .iter()
            .map(|s| s.supervised_violations)
            .sum();
        let base: usize = report.sessions.iter().map(|s| s.baseline_violations).sum();
        let reroutes: usize = report.sessions.iter().map(|s| s.reroutes).sum();
        let admitted = report.sessions.iter().filter(|s| s.admitted).count();
        assert_eq!(
            (sup, base, reroutes, admitted),
            (18, 90, 14, 24),
            "pinned supervision outcome drifted (sup, base, reroutes, admitted)"
        );
    }

    #[test]
    #[should_panic(expected = "degrade_epochs")]
    fn zero_degrade_epochs_rejected() {
        let (net, brokers, latency) = setup();
        supervise(
            net.graph(),
            &brokers,
            &latency,
            &[],
            &MonitorConfig {
                degrade_epochs: 0,
                degrade_prob: 0.5,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "epoch")]
    fn zero_epochs_rejected() {
        let (net, brokers, latency) = setup();
        supervise(
            net.graph(),
            &brokers,
            &latency,
            &[],
            &MonitorConfig {
                epochs: 0,
                ..Default::default()
            },
        );
    }
}
