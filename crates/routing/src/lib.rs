//! # routing — policy-aware routing substrate
//!
//! The broker-set results of Section 6 assume bidirectional reachability;
//! Section 6.2 then asks what happens when traffic must obey real
//! business relationships (Gao–Rexford valley-free export rules), and how
//! much of the resulting degradation is repaired by converting a fraction
//! of inter-broker links to settlement-free peering (Fig. 5b/c). This
//! crate provides:
//!
//! - [`PolicyGraph`] — a directed, relationship-classified view of an
//!   [`topology::Internet`], with mutation helpers for the peering-
//!   conversion experiments;
//! - [`valleyfree`] — valley-free reachability (two-phase BFS);
//! - [`directional`] — E2E connectivity under valley-free + B-dominating
//!   constraints (Fig. 5b/c) and under free routing;
//! - [`inflation`] — path-length inflation of broker-constrained routing
//!   versus free-path routing (Table 4);
//! - [`stitch`] — broker-mediated path construction: the actual
//!   dominating path a brokerage deployment would install, plus a
//!   synthetic per-edge latency model ([`qos`]) to compare broker paths
//!   against BGP-style valley-free defaults.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bgp;
pub mod capacity;
pub mod chaos;
pub mod directional;
pub mod failover;
pub mod inflation;
pub mod monitor;
pub mod plan;
pub mod policy;
pub mod qos;
pub mod stitch;
pub mod validate;
pub mod valleyfree;

pub use bgp::{bgp_paths_dominated, bgp_routes, Route, RouteClass, RouteTable};
pub use capacity::{admit_demands, AdmissionReport, CapacityModel, Demand};
pub use chaos::{
    plan_recovery, replay_session, replay_session_evolving, replay_sessions,
    replay_sessions_evolving, RecoveryTransition, SessionReplay, SessionStats,
};
pub use directional::{
    directional_connectivity, directional_connectivity_threaded, DirectionalReport,
};
pub use failover::{failover_plan, protection_ratio, FailoverPlan};
pub use inflation::{inflation_report, InflationReport};
pub use monitor::{supervise, MonitorConfig, MonitorReport, Session, SessionReport};
pub use plan::{
    ExecTrace, PlanCertificate, PlanError, PlanSummary, PlannedSession, ReconfigPlan, SessionKind,
    Step, StepRecord,
};
pub use policy::{EdgeClass, PolicyGraph};
pub use qos::{LatencyModel, PathQos};
pub use stitch::{stitch_answer_path, stitch_path, stitch_path_weighted, StitchedPath};
pub use validate::{AuditReport, PathCertificate, Validate};
pub use valleyfree::{valley_free_path, valley_free_reach, Phase, ValleyFreeView};
