//! Differential property tests for the reconfiguration planner.
//!
//! The planner promises that *every* topological order of a plan's
//! dependency DAG is safe — not just the canonical antichain schedule it
//! executes. These tests replay random plans through an independent
//! step-by-step checker (its own coverage and domination logic, none of
//! the planner's incremental state), driving randomly-chosen topological
//! orders, and also feed tampered plans back through
//! [`ReconfigPlan::from_parts`] expecting typed rejections.

use netgraph::{Graph, GraphBuilder, NodeId, NodeSet, Validate};
use proptest::prelude::*;
use routing::{PlanError, ReconfigPlan, SessionKind, Step};
use std::collections::BTreeSet;
use std::collections::HashSet;

const N: u32 = 14;

/// Assemble an undirected graph from random edge triples (duplicates
/// and self-loops dropped).
fn graph(n: u32, raw: &[(u32, u32)]) -> Graph {
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut b = GraphBuilder::new(n as usize);
    for &(x, y) in raw {
        let (u, v) = if x < y { (x, y) } else { (y, x) };
        if u != v && seen.insert((u, v)) {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

fn node_set(n: u32, ids: &HashSet<u32>) -> NodeSet {
    NodeSet::from_iter_with_capacity(n as usize, ids.iter().map(|&i| NodeId(i)))
}

fn session_pairs(raw: &[(u32, u32)]) -> Vec<(NodeId, NodeId)> {
    raw.iter()
        .filter(|(u, v)| u != v)
        .map(|&(u, v)| (NodeId(u), NodeId(v)))
        .collect()
}

/// `x` is covered by `set`: in it, or adjacent to a member.
fn covered(g: &Graph, set: &NodeSet, x: NodeId) -> bool {
    set.contains(x) || g.neighbors(x).iter().any(|&b| set.contains(b))
}

/// A random topological order of the plan's DAG: repeatedly pick a
/// ready step, the choice driven by a little multiplicative generator
/// so different seeds explore different orders.
fn random_topo_order(plan: &ReconfigPlan, seed: u64) -> Vec<usize> {
    let count = plan.steps().len();
    let mut indeg: Vec<usize> = (0..count).map(|i| plan.deps(i).len()).collect();
    let mut done = vec![false; count];
    let mut state = seed | 1;
    let mut order = Vec::with_capacity(count);
    while order.len() < count {
        let ready: Vec<usize> = (0..count).filter(|&i| !done[i] && indeg[i] == 0).collect();
        assert!(!ready.is_empty(), "DAG stalled (cycle?)");
        state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        let pick = ready[(state % ready.len() as u64) as usize];
        done[pick] = true;
        order.push(pick);
        for j in 0..count {
            if !done[j] && plan.deps(j).contains(&pick) {
                indeg[j] -= 1;
            }
        }
    }
    order
}

/// Independent invariant check of one intermediate state: coverage of
/// doubly-covered vertices, and hop domination of every live session.
fn state_is_safe(
    g: &Graph,
    plan: &ReconfigPlan,
    active: &NodeSet,
    migrated: &[bool],
) -> Result<(), String> {
    let both: Vec<NodeId> = (0..g.node_count() as u32)
        .map(NodeId)
        .filter(|&x| covered(g, plan.current(), x) && covered(g, plan.target(), x))
        .collect();
    for x in both {
        if !covered(g, active, x) {
            return Err(format!("vertex {x} lost coverage"));
        }
    }
    for (si, sess) in plan.sessions().iter().enumerate() {
        let path = match sess.kind {
            SessionKind::Dropped => None,
            SessionKind::Kept => sess.before.as_ref(),
            SessionKind::Migrating { .. } if migrated[si] => sess.after.as_ref(),
            SessionKind::Migrating { .. } => sess.before.as_ref(),
        };
        if let Some(p) = path {
            for w in p.path.windows(2) {
                if !active.contains(w[0]) && !active.contains(w[1]) {
                    return Err(format!("session {si} hop {} - {} undominated", w[0], w[1]));
                }
            }
        }
    }
    Ok(())
}

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..N, 0..N), 0..50)
}

fn arb_brokers() -> impl Strategy<Value = HashSet<u32>> {
    proptest::collection::hash_set(0..N, 0..7)
}

proptest! {
    /// Every topological order of a built plan (a) keeps every prefix
    /// state invariant-safe under the independent checker and (b) lands
    /// on exactly the target configuration.
    #[test]
    fn every_topological_order_is_safe(raw in arb_edges(),
                                       cur in arb_brokers(),
                                       tgt in arb_brokers(),
                                       sess in proptest::collection::vec((0..N, 0..N), 0..6),
                                       seed in 0u64..u64::MAX) {
        let g = graph(N, &raw);
        let cur = node_set(N, &cur);
        let tgt = node_set(N, &tgt);
        let pairs = session_pairs(&sess);
        let plan = ReconfigPlan::build(&g, &cur, &tgt, &pairs);
        let plan = match plan {
            Ok(p) => p,
            Err(e) => return Err(format!("in-range inputs must plan: {e}")),
        };
        for round in 0..4u64 {
            let order = random_topo_order(&plan, seed ^ round.wrapping_mul(0xA5A5_5A5A));
            let mut active = cur.clone();
            let mut migrated = vec![false; plan.sessions().len()];
            prop_assert!(state_is_safe(&g, &plan, &active, &migrated).is_ok());
            for &i in &order {
                match plan.steps()[i] {
                    Step::ActivateBroker(b) => {
                        active.insert(b);
                    }
                    Step::DeactivateBroker(b) => {
                        active.remove(b);
                    }
                    Step::MigrateSession { session, .. } => migrated[session] = true,
                }
                if let Err(why) = state_is_safe(&g, &plan, &active, &migrated) {
                    return Err(format!("order {order:?}, after step {i}: {why}"));
                }
            }
            prop_assert_eq!(&active, &tgt);
        }
    }

    /// A built plan round-trips through `from_parts` bit-identically,
    /// and its canonical execution agrees with the certificate.
    #[test]
    fn built_plans_round_trip_and_certify(raw in arb_edges(),
                                          cur in arb_brokers(),
                                          tgt in arb_brokers(),
                                          sess in proptest::collection::vec((0..N, 0..N), 0..6)) {
        let g = graph(N, &raw);
        let cur = node_set(N, &cur);
        let tgt = node_set(N, &tgt);
        let pairs = session_pairs(&sess);
        let plan = match ReconfigPlan::build(&g, &cur, &tgt, &pairs) {
            Ok(p) => p,
            Err(e) => return Err(format!("in-range inputs must plan: {e}")),
        };
        let deps: Vec<BTreeSet<usize>> =
            (0..plan.steps().len()).map(|i| plan.deps(i).clone()).collect();
        let adopted =
            ReconfigPlan::from_parts(&g, &cur, &tgt, &pairs, plan.steps().to_vec(), deps);
        let adopted = match adopted {
            Ok(p) => p,
            Err(e) => return Err(format!("own parts rejected: {e}")),
        };
        prop_assert_eq!(adopted.construction_checksum(), plan.construction_checksum());
        prop_assert_eq!(adopted.layers(), plan.layers());
        let rep = plan.certificate(&g).audit();
        prop_assert!(rep.is_ok(), "certificate: {}", rep);
        let trace = plan.execute(&g, 3);
        prop_assert!(trace.cut_audit.is_ok(), "cuts: {}", trace.cut_audit);
    }

    /// Tampering is rejected with the matching typed error: injected
    /// cycles, dropped steps, and stripped dependencies (when the plan
    /// actually needed them).
    #[test]
    fn tampered_plans_are_rejected(raw in arb_edges(),
                                   cur in arb_brokers(),
                                   tgt in arb_brokers(),
                                   sess in proptest::collection::vec((0..N, 0..N), 0..6)) {
        let g = graph(N, &raw);
        let cur = node_set(N, &cur);
        let tgt = node_set(N, &tgt);
        let pairs = session_pairs(&sess);
        let plan = match ReconfigPlan::build(&g, &cur, &tgt, &pairs) {
            Ok(p) => p,
            Err(e) => return Err(format!("in-range inputs must plan: {e}")),
        };
        let steps = plan.steps().to_vec();
        let deps: Vec<BTreeSet<usize>> =
            (0..steps.len()).map(|i| plan.deps(i).clone()).collect();
        prop_assume!(steps.len() >= 2);

        // Two-cycle between the first and last step.
        let mut cyc = deps.clone();
        cyc[0].insert(steps.len() - 1);
        cyc[steps.len() - 1].insert(0);
        let err = ReconfigPlan::from_parts(&g, &cur, &tgt, &pairs, steps.clone(), cyc);
        prop_assert!(matches!(err, Err(PlanError::Cycle { .. })), "{:?}", err);

        // Last step dropped (dangling dependencies stripped so the step
        // set mismatch is what gets reported).
        let mut short = steps.clone();
        let dropped = short.pop();
        let kept: Vec<BTreeSet<usize>> = deps[..steps.len() - 1]
            .iter()
            .map(|row| row.iter().copied().filter(|&d| d < steps.len() - 1).collect())
            .collect();
        let err = ReconfigPlan::from_parts(&g, &cur, &tgt, &pairs, short, kept);
        match (err, dropped) {
            (Err(PlanError::MissingStep { step }), Some(d)) => prop_assert_eq!(step, d),
            (other, _) => return Err(format!("dropped step not reported: {other:?}")),
        }

        // All dependencies stripped: must be UnsafeOrder whenever the
        // plan had any edges (discovery adds edges only when an
        // ordering constraint demands them).
        let free: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); steps.len()];
        let err = ReconfigPlan::from_parts(&g, &cur, &tgt, &pairs, steps, free);
        if plan.edge_count() > 0 {
            prop_assert!(matches!(err, Err(PlanError::UnsafeOrder { .. })), "{:?}", err);
        } else {
            prop_assert!(err.is_ok(), "{:?}", err);
        }
    }
}

/// The planner's own layer schedule is one of the orders the
/// differential checker accepts — pinned on a fixture so a layering
/// regression cannot hide behind the randomized cases.
#[test]
fn canonical_schedule_passes_the_independent_checker() {
    let g = graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
    let cur = NodeSet::from_iter_with_capacity(6, [NodeId(1), NodeId(4)]);
    let tgt = NodeSet::from_iter_with_capacity(6, [NodeId(2), NodeId(4)]);
    let pairs = [(NodeId(0), NodeId(3))];
    let plan = ReconfigPlan::build(&g, &cur, &tgt, &pairs).expect("plan");
    let mut active = cur.clone();
    let mut migrated = vec![false; plan.sessions().len()];
    for layer in plan.layers() {
        for &i in layer {
            match plan.steps()[i] {
                Step::ActivateBroker(b) => {
                    active.insert(b);
                }
                Step::DeactivateBroker(b) => {
                    active.remove(b);
                }
                Step::MigrateSession { session, .. } => migrated[session] = true,
            }
        }
        assert!(state_is_safe(&g, &plan, &active, &migrated).is_ok());
    }
    assert_eq!(active, tgt);
}
