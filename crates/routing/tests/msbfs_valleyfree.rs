//! The msbfs kernel over the valley-free `(vertex, phase)` product
//! graph. [`ValleyFreeView`] is *directed* (`is_symmetric()` is false),
//! so this pins the push-only path: automatic direction selection must
//! never pull, and every lane must match the per-source engine BFS that
//! `valley_free_reach` uses.

use netgraph::{msbfs_distances, with_arena, Graph, GraphBuilder, GraphView, NodeId, NodeSet};
use proptest::prelude::*;
use routing::valleyfree::ReachOptions;
use routing::{PolicyGraph, ValleyFreeView};
use std::collections::HashSet;
use topology::{Internet, NodeKind, Relationship};

/// Assemble a policy graph from random undirected edges with random
/// transit/peering relationships (no IXPs — fabric vertices get their
/// own dedicated fixture test below via the generated topology).
fn policy_graph(n: u32, raw: &[(u32, u32, u8)]) -> PolicyGraph {
    let mut seen: HashSet<(u32, u32)> = HashSet::new();
    let mut b = GraphBuilder::new(n as usize);
    let mut rels = Vec::new();
    for &(x, y, r) in raw {
        let (u, v) = if x < y { (x, y) } else { (y, x) };
        if u == v || !seen.insert((u, v)) {
            continue;
        }
        b.add_edge(NodeId(u), NodeId(v));
        let rel = match r % 3 {
            0 => Relationship::CustomerOfB,
            1 => Relationship::ProviderOfB,
            _ => Relationship::Peer,
        };
        rels.push((NodeId(u), NodeId(v), rel));
    }
    let g: Graph = b.build();
    let kinds = vec![NodeKind::Access; n as usize];
    let names = (0..n).map(|i| format!("as{i}")).collect();
    let net = Internet::from_parts(g, kinds, names, rels);
    PolicyGraph::new(&net)
}

/// Per-source engine distances over the state graph — the baseline
/// `valley_free_reach` is built on.
fn engine_states(view: &ValleyFreeView<'_>, start: NodeId) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run_bounded(view, start, u32::MAX);
        (0..view.node_count())
            .map(|s| arena.distance(NodeId(s as u32)))
            .collect()
    })
}

fn arb_policy_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32, u8)>> {
    proptest::collection::vec((0..n, 0..n, 0u8..=255), 0..max_edges)
}

proptest! {
    /// Each lane of a batched run over the directed state graph equals
    /// the per-source engine run from the same start state.
    #[test]
    fn valley_free_lanes_match_engine(raw in arb_policy_edges(12, 40),
                                      sources in proptest::collection::hash_set(0u32..12, 1..10)) {
        let pg = policy_graph(12, &raw);
        let view = ValleyFreeView::new(&pg, ReachOptions::default());
        prop_assert!(!view.is_symmetric(), "state graph must stay directed");

        let mut starts: Vec<NodeId> = sources
            .iter()
            .map(|&s| ValleyFreeView::start_state(NodeId(s)))
            .collect();
        starts.sort_unstable();
        let dist = msbfs_distances(view, &starts);
        for (lane, &start) in starts.iter().enumerate() {
            prop_assert_eq!(&dist[lane], &engine_states(&view, start));
        }
    }

    /// Same equivalence with a broker-domination filter on the hops —
    /// the composition `lhop`-style consumers would use.
    #[test]
    fn dominated_valley_free_lanes_match_engine(raw in arb_policy_edges(12, 40),
                                                sources in proptest::collection::hash_set(0u32..12, 1..10),
                                                brokers in proptest::collection::hash_set(0u32..12, 0..6)) {
        let pg = policy_graph(12, &raw);
        let bset = NodeSet::from_iter_with_capacity(12, brokers.iter().map(|&b| NodeId(b)));
        let opts = ReachOptions {
            brokers: Some(&bset),
            alliance: None,
            max_hops: None,
        };
        let view = ValleyFreeView::new(&pg, opts);

        let mut starts: Vec<NodeId> = sources
            .iter()
            .map(|&s| ValleyFreeView::start_state(NodeId(s)))
            .collect();
        starts.sort_unstable();
        let dist = msbfs_distances(view, &starts);
        for (lane, &start) in starts.iter().enumerate() {
            prop_assert_eq!(&dist[lane], &engine_states(&view, start));
        }
    }
}

/// Forcing bottom-up pull on the directed state graph must panic — the
/// kernel refuses rather than silently traversing reversed edges.
#[test]
#[should_panic(expected = "symmetric")]
fn pull_is_rejected_on_the_state_graph() {
    use netgraph::msbfs::Direction;
    let pg = policy_graph(4, &[(0, 1, 0), (1, 2, 2), (2, 3, 1)]);
    let view = ValleyFreeView::new(&pg, ReachOptions::default());
    let mut arena = netgraph::MsBfsArena::new();
    arena.run_with(
        view,
        &[ValleyFreeView::start_state(NodeId(0))],
        u32::MAX,
        Direction::Pull,
        |_| {},
    );
}

/// On a generated topology (IXP fabrics included), one 64-lane batch
/// reproduces `valley_free_reach` for every lane: project the lane's
/// state distances down to vertices and compare reach sets.
#[test]
fn batched_reach_matches_valley_free_reach_on_generated_topology() {
    use topology::{InternetConfig, Scale};

    let net = InternetConfig::scaled(Scale::Tiny).generate(2014);
    let pg = PolicyGraph::new(&net);
    let n = net.graph().node_count();
    let view = ValleyFreeView::new(&pg, ReachOptions::default());

    let vertices: Vec<NodeId> = net.graph().nodes().take(64).collect();
    let starts: Vec<NodeId> = vertices
        .iter()
        .map(|&v| ValleyFreeView::start_state(v))
        .collect();
    let dist = msbfs_distances(view, &starts);
    for (lane, &src) in vertices.iter().enumerate() {
        let mut reached = NodeSet::new(n);
        for (state, d) in dist[lane].iter().enumerate() {
            if d.is_some() {
                reached.insert(ValleyFreeView::vertex_of(NodeId(state as u32)));
            }
        }
        let want = routing::valley_free_reach(&pg, src, ReachOptions::default());
        assert_eq!(
            reached.iter().collect::<Vec<_>>(),
            want.iter().collect::<Vec<_>>(),
            "lane {lane} (source {src}) diverged from valley_free_reach"
        );
    }
}
