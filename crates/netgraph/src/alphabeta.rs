//! (α, β)-graph property estimation (Definition 2 of the paper).
//!
//! A graph is an (α, β)-graph when `Prob[d(u, v) ≤ β] ≥ α` over uniformly
//! random vertex pairs. The AS-level Internet is a (0.99, 4)-graph, which
//! is what makes Algorithm 2's broker-stitching step cheap. Exact
//! evaluation needs all-pairs BFS (`O(n(n + m))`); for the 52k-node
//! topology we estimate by sampling sources, with the standard-error bound
//! reported alongside.

use crate::msbfs::{self, with_msbfs};
use crate::view::FullView;
use crate::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Distribution of pairwise hop distances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopHistogram {
    /// `counts[d]` = number of ordered pairs at distance exactly `d`
    /// (distance 0, i.e. `u == u`, is excluded).
    pub counts: Vec<u64>,
    /// Ordered pairs that are disconnected.
    pub unreachable: u64,
    /// Ordered pairs sampled/evaluated in total (`counts` sum + unreachable).
    pub total_pairs: u64,
    /// Number of BFS sources used (== n for exact evaluation).
    pub sources: usize,
}

impl HopHistogram {
    /// `Prob[d(u,v) ≤ beta]` over the evaluated pairs.
    pub fn prob_within(&self, beta: usize) -> f64 {
        if self.total_pairs == 0 {
            return 0.0;
        }
        let within: u64 = self.counts.iter().take(beta + 1).sum();
        within as f64 / self.total_pairs as f64
    }

    /// Cumulative distribution: `cdf()[d]` = fraction of pairs within `d`
    /// hops.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0u64;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                if self.total_pairs == 0 {
                    0.0
                } else {
                    acc as f64 / self.total_pairs as f64
                }
            })
            .collect()
    }

    /// Smallest `β` such that `prob_within(β) ≥ alpha`, or `None` if even
    /// full connectivity doesn't reach `alpha`.
    pub fn beta_for(&self, alpha: f64) -> Option<usize> {
        let mut acc = 0u64;
        for (d, &c) in self.counts.iter().enumerate() {
            acc += c;
            if self.total_pairs > 0 && acc as f64 / self.total_pairs as f64 >= alpha {
                return Some(d);
            }
        }
        None
    }

    /// Mean hop distance over connected pairs, `None` if no pair connects.
    pub fn mean_distance(&self) -> Option<f64> {
        let connected: u64 = self.counts.iter().sum();
        if connected == 0 {
            return None;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(weighted as f64 / connected as f64)
    }
}

/// Exact hop histogram via all-sources BFS. `O(n(n + m))` — fine up to a
/// few thousand vertices; use [`hop_histogram_sampled`] beyond.
pub fn hop_histogram(g: &Graph) -> HopHistogram {
    let sources: Vec<NodeId> = g.nodes().collect();
    histogram_for_sources(g, &sources)
}

/// Hop histogram estimated from `samples` uniformly chosen BFS sources
/// (without replacement). Unbiased for pair-distance probabilities.
pub fn hop_histogram_sampled<R: Rng>(g: &Graph, samples: usize, rng: &mut R) -> HopHistogram {
    let mut sources: Vec<NodeId> = g.nodes().collect();
    sources.shuffle(rng);
    sources.truncate(samples.max(1).min(g.node_count()));
    histogram_for_sources(g, &sources)
}

fn histogram_for_sources(g: &Graph, sources: &[NodeId]) -> HopHistogram {
    let n = g.node_count();
    let mut counts: Vec<u64> = Vec::new();
    let mut unreachable = 0u64;
    let view = FullView::new(g);
    // 64 sources per msbfs batch: counts[d] accumulates each wavefront's
    // pair count (level 0 is the sources themselves, excluded), and each
    // lane's unreached remainder is `n` minus its discoveries.
    with_msbfs(|arena| {
        for batch in sources.chunks(msbfs::LANES) {
            let discovered = arena.run(view, batch, u32::MAX, |wf| {
                let d = wf.level() as usize;
                if d == 0 {
                    return;
                }
                if counts.len() <= d {
                    counts.resize(d + 1, 0);
                }
                counts[d] += wf.new_pairs();
            });
            unreachable += batch.len() as u64 * n as u64 - discovered;
        }
    });
    let total = counts.iter().sum::<u64>() + unreachable;
    HopHistogram {
        counts,
        unreachable,
        total_pairs: total,
        sources: sources.len(),
    }
}

/// Outcome of an (α, β) estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaBetaEstimate {
    /// Estimated `Prob[d(u, v) ≤ β]`.
    pub alpha: f64,
    /// The β the estimate was taken at.
    pub beta: usize,
    /// One-sigma sampling error (0 when evaluated exactly).
    pub std_error: f64,
    /// Whether the graph satisfies Definition 2 at the requested level.
    pub satisfied: bool,
}

/// Estimate whether `g` is an (`alpha`, `beta`)-graph.
///
/// Uses `samples` BFS sources (all of them if `samples ≥ n`). The standard
/// error reported treats sources as i.i.d. — a slight approximation, but
/// tight in practice for `samples ≥ 100` on well-mixed graphs.
pub fn estimate_alpha<R: Rng>(
    g: &Graph,
    alpha: f64,
    beta: usize,
    samples: usize,
    rng: &mut R,
) -> AlphaBetaEstimate {
    assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0, 1]");
    let hist = if samples >= g.node_count() {
        hop_histogram(g)
    } else {
        hop_histogram_sampled(g, samples, rng)
    };
    let p = hist.prob_within(beta);
    let std_error = if samples >= g.node_count() || hist.total_pairs == 0 {
        0.0
    } else {
        (p * (1.0 - p) / hist.sources as f64).sqrt()
    };
    AlphaBetaEstimate {
        alpha: p,
        beta,
        std_error,
        satisfied: p >= alpha,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_graph(n: u32) -> Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn exact_histogram_on_path() {
        // Path of 4: ordered pairs at d=1: 6, d=2: 4, d=3: 2.
        let hist = hop_histogram(&path_graph(4));
        assert_eq!(hist.counts[1], 6);
        assert_eq!(hist.counts[2], 4);
        assert_eq!(hist.counts[3], 2);
        assert_eq!(hist.unreachable, 0);
        assert_eq!(hist.total_pairs, 12);
        assert!((hist.prob_within(2) - 10.0 / 12.0).abs() < 1e-12);
        assert_eq!(hist.beta_for(0.8), Some(2));
        assert_eq!(hist.beta_for(1.0), Some(3));
        assert!((hist.mean_distance().unwrap() - (6.0 + 8.0 + 6.0) / 12.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_unreachable() {
        let g = from_edges(4, [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        let hist = hop_histogram(&g);
        assert_eq!(hist.counts[1], 4);
        assert_eq!(hist.unreachable, 8);
        assert!(hist.beta_for(0.9).is_none());
    }

    #[test]
    fn clique_is_one_beta_graph() {
        let mut edges = vec![];
        for i in 0..6u32 {
            for j in (i + 1)..6 {
                edges.push((NodeId(i), NodeId(j)));
            }
        }
        let g = from_edges(6, edges);
        let est = estimate_alpha(&g, 1.0, 1, usize::MAX, &mut ChaCha8Rng::seed_from_u64(1));
        assert!(est.satisfied);
        assert_eq!(est.alpha, 1.0);
        assert_eq!(est.std_error, 0.0);
    }

    #[test]
    fn sampled_estimate_close_to_exact() {
        let g = crate::barabasi_albert(500, 3, &mut ChaCha8Rng::seed_from_u64(5));
        let exact = hop_histogram(&g).prob_within(3);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let est = estimate_alpha(&g, 0.5, 3, 200, &mut rng);
        assert!(
            (est.alpha - exact).abs() < 0.05,
            "sampled {} vs exact {exact}",
            est.alpha
        );
        assert!(est.std_error > 0.0);
    }

    #[test]
    fn cdf_monotone() {
        let g = crate::barabasi_albert(200, 2, &mut ChaCha8Rng::seed_from_u64(3));
        let cdf = hop_histogram(&g).cdf();
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0] - 1e-15);
        }
        assert!(cdf.last().copied().unwrap_or(0.0) <= 1.0 + 1e-12);
    }

    #[test]
    fn empty_histogram_behaves() {
        let hist = HopHistogram {
            counts: vec![],
            unreachable: 0,
            total_pairs: 0,
            sources: 0,
        };
        assert_eq!(hist.prob_within(4), 0.0);
        assert!(hist.mean_distance().is_none());
        assert!(hist.cdf().is_empty());
    }
}
