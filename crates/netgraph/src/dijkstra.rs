//! Weighted shortest paths (Dijkstra).
//!
//! The AS-level experiments are hop-based, but Algorithm 2 of the paper is
//! stated with Dijkstra over arbitrary non-negative link weights, and the
//! MCBG-with-path-length-constraints problem (Problem 4) admits weighted
//! interpretations (e.g. per-hop latency SLAs). We provide a classic
//! binary-heap Dijkstra over a lightweight [`WeightedGraph`] view.

use crate::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A weighting of an existing [`Graph`]'s edges.
///
/// Implementors return the non-negative cost of traversing `{u, v}`. The
/// blanket behaviour of [`UnitWeights`] recovers hop counts.
pub trait WeightedGraph {
    /// Cost of edge `{u, v}`; must be ≥ 0 and finite.
    fn weight(&self, u: NodeId, v: NodeId) -> f64;
}

/// Hop-count weighting: every edge costs 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitWeights;

impl WeightedGraph for UnitWeights {
    #[inline]
    fn weight(&self, _u: NodeId, _v: NodeId) -> f64 {
        1.0
    }
}

/// Weighting backed by a closure.
#[derive(Debug, Clone, Copy)]
pub struct FnWeights<F>(pub F);

impl<F: Fn(NodeId, NodeId) -> f64> WeightedGraph for FnWeights<F> {
    #[inline]
    fn weight(&self, u: NodeId, v: NodeId) -> f64 {
        (self.0)(u, v)
    }
}

#[derive(Debug, PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance via reversed comparison; ties by node id for
        // determinism. total_cmp keeps the ordering total even for NaN.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Result of a single-source Dijkstra run.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// `dist[v]` = cost of the cheapest path, `f64::INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// `parent[v]` = predecessor on one cheapest path; `None` if
    /// unreachable, `Some(src)` for the source itself.
    pub parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The cheapest path from the run's source to `dst`, or `None`.
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        self.parent[dst.index()]?;
        let mut path = vec![dst];
        let mut cur = dst;
        while let Some(p) = self.parent[cur.index()] {
            if p == cur {
                break;
            }
            path.push(p);
            cur = p;
        }
        debug_assert!(
            self.parent[cur.index()].is_some(),
            "parent chain broke before reaching the source"
        );
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from `src` under `weights`.
///
/// # Panics
///
/// Panics if a negative edge weight is encountered.
pub fn dijkstra<W: WeightedGraph>(g: &Graph, src: NodeId, weights: &W) -> ShortestPaths {
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    parent[src.index()] = Some(src);
    heap.push(HeapEntry {
        dist: 0.0,
        node: src,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if d > dist[u.index()] {
            continue; // stale entry
        }
        for &v in g.neighbors(u) {
            let w = weights.weight(u, v);
            assert!(w >= 0.0, "negative edge weight {w} on ({u}, {v})");
            let nd = d + w;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                parent[v.index()] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    ShortestPaths { dist, parent }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn unit_weights_match_bfs() {
        let g = from_edges(
            5,
            [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let sp = dijkstra(&g, NodeId(0), &UnitWeights);
        let bfs = crate::bfs_distances(&g, NodeId(0));
        for v in 0..5 {
            assert_eq!(sp.dist[v] as u32, bfs[v].unwrap());
        }
    }

    #[test]
    fn weighted_prefers_cheap_detour() {
        // 0-1 cost 10; 0-2-1 cost 2+2.
        let g = from_edges(
            3,
            [(0, 1), (0, 2), (2, 1)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let w = FnWeights(|u: NodeId, v: NodeId| {
            if (u.0.min(v.0), u.0.max(v.0)) == (0, 1) {
                10.0
            } else {
                2.0
            }
        });
        let sp = dijkstra(&g, NodeId(0), &w);
        assert_eq!(sp.dist[1], 4.0);
        assert_eq!(
            sp.path_to(NodeId(1)).unwrap(),
            vec![NodeId(0), NodeId(2), NodeId(1)]
        );
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        let sp = dijkstra(&g, NodeId(0), &UnitWeights);
        assert!(sp.dist[2].is_infinite());
        assert!(sp.path_to(NodeId(2)).is_none());
    }

    #[test]
    fn path_to_source_is_singleton() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        let sp = dijkstra(&g, NodeId(0), &UnitWeights);
        assert_eq!(sp.path_to(NodeId(0)).unwrap(), vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_weight_panics() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        dijkstra(&g, NodeId(0), &FnWeights(|_, _| -1.0));
    }
}
