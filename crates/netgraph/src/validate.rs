//! Structural invariant auditing — the [`Validate`] trait.
//!
//! Every crate in the workspace implements [`Validate`] for its central
//! data structure (or a certificate wrapper around one): the CSR graph
//! here, the Internet model in `topology`, coverage certificates in
//! `brokerset`, valley-free path certificates in `routing`, and the
//! game-theoretic solution certificates in `economics`. An audit is a
//! *re-derivation* of the invariants from the raw representation — it
//! shares no code with the constructors whose output it checks.
//!
//! Audits return an [`AuditReport`] rather than panicking, so callers
//! choose the failure mode: the `broker-cli audit` subcommand prints
//! reports, tests assert on them, and construction boundaries call
//! [`debug_validate`] (a no-op in release builds).

use crate::{Graph, NodeId};
use std::fmt;

/// One violated invariant, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Short stable name of the invariant (e.g. `csr.offsets-monotone`).
    pub invariant: &'static str,
    /// Human-readable description of the specific violation.
    pub detail: String,
}

/// Outcome of an invariant audit: which checks ran, what failed.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// What was audited (e.g. `netgraph::Graph`).
    pub subject: String,
    /// Number of invariant checks performed.
    pub checks: usize,
    /// Violations discovered (empty means the audit passed).
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// Start an empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        AuditReport {
            subject: subject.into(),
            checks: 0,
            findings: Vec::new(),
        }
    }

    /// Record one check; `detail` is only evaluated on failure.
    pub fn check(&mut self, invariant: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.findings.push(Finding {
                invariant,
                detail: detail(),
            });
        }
    }

    /// Fold a sub-audit into this report (its subject prefixes details).
    pub fn absorb(&mut self, sub: AuditReport) {
        self.checks += sub.checks;
        for f in sub.findings {
            self.findings.push(Finding {
                invariant: f.invariant,
                detail: format!("[{}] {}", sub.subject, f.detail),
            });
        }
    }

    /// Whether every check passed.
    pub fn is_ok(&self) -> bool {
        self.findings.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ok() {
            write!(
                f,
                "{}: {} checks, all invariants hold",
                self.subject, self.checks
            )
        } else {
            writeln!(
                f,
                "{}: {} of {} checks FAILED",
                self.subject,
                self.findings.len(),
                self.checks
            )?;
            for finding in &self.findings {
                writeln!(f, "  {}: {}", finding.invariant, finding.detail)?;
            }
            Ok(())
        }
    }
}

/// Deep structural self-audit.
pub trait Validate {
    /// Re-derive every invariant of `self` from its raw representation.
    fn audit(&self) -> AuditReport;
}

/// Run an audit and panic on findings — only under `debug_assertions`.
///
/// This is the hook construction boundaries call: free in release
/// builds, a full invariant sweep in debug builds and tests.
pub fn debug_validate<T: Validate + ?Sized>(value: &T) {
    #[cfg(debug_assertions)]
    {
        let report = value.audit();
        assert!(report.is_ok(), "invariant audit failed:\n{report}");
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = value;
    }
}

/// Cap on per-invariant exemplars so a badly corrupted structure still
/// produces a readable report.
const MAX_EXEMPLARS: usize = 4;

/// Collect up to [`MAX_EXEMPLARS`] offending items plus a total count
/// into one detail string.
fn summarize(total: usize, exemplars: &[String]) -> String {
    if total <= exemplars.len() {
        exemplars.join("; ")
    } else {
        format!(
            "{} (and {} more)",
            exemplars.join("; "),
            total - exemplars.len()
        )
    }
}

impl Validate for AuditReport {
    /// Meta-audit: a report is itself well-formed when it names a
    /// subject, never records more findings than checks, and every
    /// finding names its invariant.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("netgraph::AuditReport");
        rep.check("report.has-subject", !self.subject.is_empty(), || {
            "empty subject".into()
        });
        rep.check(
            "report.findings-bounded",
            self.findings.len() <= self.checks,
            || {
                format!(
                    "{} findings from only {} checks",
                    self.findings.len(),
                    self.checks
                )
            },
        );
        rep.check(
            "report.findings-named",
            self.findings.iter().all(|f| !f.invariant.is_empty()),
            || "a finding has an empty invariant name".into(),
        );
        rep
    }
}

impl Validate for Graph {
    /// Deep CSR audit, re-deriving the representation invariants:
    ///
    /// 1. `offsets` has `n + 1` entries, starts at 0, is monotone
    ///    non-decreasing, and ends at `2m = neighbors.len()`;
    /// 2. every adjacency list is strictly ascending (sorted, deduped)
    ///    and free of self-loops, with all ids in `0..n`;
    /// 3. adjacency is symmetric: `u ∈ N(v) ⇔ v ∈ N(u)`;
    /// 4. the degree sum equals `2m`.
    fn audit(&self) -> AuditReport {
        let (offsets, neighbors, m) = self.csr_parts();
        let mut rep = AuditReport::new("netgraph::Graph");
        let n = offsets.len().saturating_sub(1);

        rep.check(
            "csr.offsets-shape",
            !offsets.is_empty() && offsets[0] == 0,
            || format!("offsets len {} first {:?}", offsets.len(), offsets.first()),
        );
        let monotone = offsets.windows(2).all(|w| w[0] <= w[1]);
        rep.check("csr.offsets-monotone", monotone, || {
            let bad = offsets
                .windows(2)
                .position(|w| w[0] > w[1])
                .unwrap_or_default();
            format!(
                "offsets[{}]={} > offsets[{}]={}",
                bad,
                offsets[bad],
                bad + 1,
                offsets[bad + 1]
            )
        });
        let end = offsets.last().copied().unwrap_or_default() as usize;
        rep.check(
            "csr.offsets-end",
            end == neighbors.len() && end == 2 * m,
            || {
                format!(
                    "offsets end {end}, neighbors.len() {}, 2m {}",
                    neighbors.len(),
                    2 * m
                )
            },
        );

        // Per-vertex list checks. Guard indices so a corrupted `offsets`
        // cannot panic the auditor itself.
        let mut unsorted = 0usize;
        let mut self_loops = 0usize;
        let mut out_of_range = 0usize;
        let mut asymmetric = 0usize;
        let mut ex_unsorted = Vec::new();
        let mut ex_loops = Vec::new();
        let mut ex_range = Vec::new();
        let mut ex_asym = Vec::new();
        let span = |v: usize| -> &[NodeId] {
            if v + 1 >= offsets.len() {
                return &[];
            }
            let lo = (offsets[v] as usize).min(neighbors.len());
            let hi = (offsets[v + 1] as usize).clamp(lo, neighbors.len());
            &neighbors[lo..hi]
        };
        for v in 0..n {
            let list = span(v);
            if !list.windows(2).all(|w| w[0] < w[1]) {
                unsorted += 1;
                if ex_unsorted.len() < MAX_EXEMPLARS {
                    ex_unsorted.push(format!("vertex {v}"));
                }
            }
            for &u in list {
                if u.index() >= n {
                    out_of_range += 1;
                    if ex_range.len() < MAX_EXEMPLARS {
                        ex_range.push(format!("{v} -> {}", u.0));
                    }
                    continue;
                }
                if u.index() == v {
                    self_loops += 1;
                    if ex_loops.len() < MAX_EXEMPLARS {
                        ex_loops.push(format!("vertex {v}"));
                    }
                }
                if span(u.index()).binary_search(&NodeId(v as u32)).is_err() {
                    asymmetric += 1;
                    if ex_asym.len() < MAX_EXEMPLARS {
                        ex_asym.push(format!("{v} -> {} without back-edge", u.0));
                    }
                }
            }
        }
        rep.check("csr.lists-sorted-deduped", unsorted == 0, || {
            summarize(unsorted, &ex_unsorted)
        });
        rep.check("csr.no-self-loops", self_loops == 0, || {
            summarize(self_loops, &ex_loops)
        });
        rep.check("csr.ids-in-range", out_of_range == 0, || {
            summarize(out_of_range, &ex_range)
        });
        rep.check("csr.symmetric", asymmetric == 0, || {
            summarize(asymmetric, &ex_asym)
        });

        let degree_sum: usize = (0..n).map(|v| span(v).len()).sum();
        rep.check("csr.degree-sum", degree_sum == 2 * m, || {
            format!("degree sum {degree_sum}, expected 2m = {}", 2 * m)
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{from_edges, GraphBuilder};
    use proptest::prelude::*;

    fn csr_clone(g: &Graph) -> (Vec<u32>, Vec<NodeId>, usize) {
        let (o, a, m) = g.csr_parts();
        (o.to_vec(), a.to_vec(), m)
    }

    fn sample_graph() -> Graph {
        from_edges(
            5,
            [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)].map(|(a, b)| (NodeId(a), NodeId(b))),
        )
    }

    #[test]
    fn built_graphs_pass() {
        let g = sample_graph();
        let rep = g.audit();
        assert!(rep.is_ok(), "{rep}");
        assert!(rep.checks >= 7);
        assert!(rep.to_string().contains("all invariants hold"));
        // Empty graph, isolated vertices.
        assert!(from_edges(0, std::iter::empty()).audit().is_ok());
        assert!(from_edges(3, std::iter::empty()).audit().is_ok());
    }

    #[test]
    fn broken_symmetry_detected() {
        let (o, mut a, m) = csr_clone(&sample_graph());
        // Redirect one half-edge: 0's first neighbor becomes 3 (no
        // back-edge 3 -> 0 at the right multiplicity).
        a[0] = NodeId(3);
        let bad = Graph::from_csr_unchecked(o, a, m);
        let rep = bad.audit();
        assert!(!rep.is_ok());
        assert!(
            rep.findings.iter().any(|f| f.invariant == "csr.symmetric"),
            "{rep}"
        );
    }

    #[test]
    fn self_loop_detected() {
        let (o, mut a, m) = csr_clone(&sample_graph());
        // Vertex 1's list contains 0; point it at 1 itself.
        let lo = o[1] as usize;
        a[lo] = NodeId(1);
        let bad = Graph::from_csr_unchecked(o, a, m);
        let rep = bad.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "csr.no-self-loops"),
            "{rep}"
        );
    }

    #[test]
    fn offset_corruption_detected() {
        let (mut o, a, m) = csr_clone(&sample_graph());
        let last = o.len() - 1;
        o[last] += 2;
        let bad = Graph::from_csr_unchecked(o, a, m);
        let rep = bad.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "csr.offsets-end"),
            "{rep}"
        );

        let (mut o, a, m) = csr_clone(&sample_graph());
        o.swap(1, 2);
        let bad = Graph::from_csr_unchecked(o, a, m);
        assert!(!bad.audit().is_ok());
    }

    #[test]
    fn out_of_range_detected() {
        let (o, mut a, m) = csr_clone(&sample_graph());
        a[1] = NodeId(99);
        let bad = Graph::from_csr_unchecked(o, a, m);
        let rep = bad.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "csr.ids-in-range"),
            "{rep}"
        );
    }

    #[test]
    fn report_meta_audit_accepts_and_detects_corruption() {
        let mut rep = AuditReport::new("subject");
        rep.check("x.holds", true, || unreachable!());
        rep.check("x.fails", false, || "boom".into());
        assert!(rep.audit().is_ok(), "a well-formed report passes");

        // Hand-assembled reports that violate the meta-invariants.
        let nameless = AuditReport::new("");
        assert!(nameless
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "report.has-subject"));

        let mut overfull = AuditReport::new("s");
        overfull.findings.push(Finding {
            invariant: "x.phantom",
            detail: "finding without a check".into(),
        });
        assert!(overfull
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "report.findings-bounded"));

        let mut unnamed = AuditReport::new("s");
        unnamed.checks = 1;
        unnamed.findings.push(Finding {
            invariant: "",
            detail: "anonymous".into(),
        });
        assert!(unnamed
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "report.findings-named"));
    }

    #[test]
    fn report_absorb_prefixes_subject() {
        let mut outer = AuditReport::new("outer");
        let mut inner = AuditReport::new("inner");
        inner.check("x.fails", false, || "boom".into());
        outer.absorb(inner);
        assert_eq!(outer.findings.len(), 1);
        assert!(outer.findings[0].detail.contains("[inner]"));
        assert!(outer.to_string().contains("FAILED"));
    }

    proptest! {
        /// Every builder output passes the audit, whatever the raw edge
        /// soup (duplicates, self-loops, reversed pairs) looked like.
        #[test]
        fn audit_accepts_all_builder_outputs(
            n in 1usize..40,
            raw in proptest::collection::vec((0u32..64, 0u32..64), 0..120)
        ) {
            let mut b = GraphBuilder::new(n);
            for (u, v) in raw {
                let (u, v) = (u as usize % n, v as usize % n);
                if u != v {
                    b.add_edge(NodeId(u as u32), NodeId(v as u32));
                }
            }
            let g = b.build();
            let rep = g.audit();
            prop_assert!(rep.is_ok(), "{}", rep);
        }

        /// Mutating any single neighbor entry of a non-trivial graph is
        /// caught by at least one invariant.
        #[test]
        fn audit_rejects_neighbor_mutations(
            seed_edges in proptest::collection::vec((0u32..12, 0u32..12), 8..40),
            idx in 0usize..1000,
            delta in 1u32..5,
        ) {
            let mut b = GraphBuilder::new(12);
            for (u, v) in seed_edges {
                if u != v {
                    b.add_edge(NodeId(u), NodeId(v));
                }
            }
            let g = b.build();
            let (o, mut a, m) = csr_clone(&g);
            prop_assume!(!a.is_empty());
            let i = idx % a.len();
            // Shift one endpoint; modular arithmetic keeps it in range,
            // so the corruption must be caught structurally (sortedness,
            // symmetry, or self-loop), not by a bounds check.
            let old = a[i];
            a[i] = NodeId((old.0 + delta) % 12);
            prop_assume!(a[i] != old);
            let bad = Graph::from_csr_unchecked(o, a, m);
            prop_assert!(!bad.audit().is_ok());
        }
    }
}
