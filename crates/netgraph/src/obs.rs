//! Zero-overhead observability: counters, log2 histograms, span timers.
//!
//! The traversal/evaluation stack (msbfs, the arena pool, the parallel
//! executor, the connectivity evaluators) is deliberately a black box in
//! release builds — no prints, no logging dependencies. This module makes
//! its internal behaviour *inspectable on demand* without giving up the
//! zero-dependency, zero-overhead-by-default posture:
//!
//! - **Counters** and **histograms** are `static`s registered lazily in a
//!   global registry. The hot path of [`counter!`](crate::counter) is one
//!   completed-`Once` check plus one `fetch_add(Relaxed)`; a
//!   [`histogram!`](crate::histogram) record adds one `leading_zeros`
//!   bucket computation. No locks, no allocation, no formatting.
//! - With the `obs` cargo **feature disabled** (the default), the macros
//!   expand to `()` — literally no code — so instrumented kernels are
//!   bit-for-bit the uninstrumented ones. Feature selection happens at
//!   *this* crate's compile time (the macro definitions themselves are
//!   `#[cfg]`-gated), so downstream crates cannot accidentally toggle it
//!   per-consumer.
//! - **Span timers** ([`span!`](crate::span)) are RAII guards that record
//!   elapsed wall-clock nanoseconds into a histogram on drop, with a
//!   thread-local nesting depth. This module is the only product-library
//!   home of `std::time::Instant` (lint rule R8 enforces that).
//! - A [`Snapshot`] captures every registered metric, merged by name and
//!   sorted, and serializes to JSON with a hand-rolled writer — snapshots
//!   of the same program state are deterministic byte-for-byte.
//!
//! Metrics are process-global and cumulative; [`reset`] zeroes them (for
//! delta measurements and tests). All mutation is relaxed-atomic: totals
//! are exact because every increment lands, even though a snapshot taken
//! *concurrently* with running work may see a mid-flight mix.
//!
//! ## Naming convention
//!
//! `layer.metric` with dots: `msbfs.levels`, `arena.pool.acquire`,
//! `par.chunks_per_worker`. Two macro call sites may share a name; their
//! contributions merge in the snapshot.

/// Number of histogram buckets: bucket 0 holds exact zeros, bucket `i`
/// (`i ≥ 1`) holds values in `[2^(i-1), 2^i - 1]`. 64 value buckets cover
/// the whole `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Whether this build carries the instrumentation (the `obs` cargo
/// feature of `netgraph`). When `false`, the macros expand to `()` and
/// [`snapshot`] is always empty.
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// Lower bound of histogram bucket `i` (see [`HISTOGRAM_BUCKETS`]).
///
/// # Panics
///
/// Panics when `i >= HISTOGRAM_BUCKETS`.
pub fn bucket_low(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// The bucket index a value lands in: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (u64::BITS - v.leading_zeros()) as usize
    }
}

#[cfg(feature = "obs")]
mod core {
    use super::{bucket_index, HISTOGRAM_BUCKETS};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, Once, PoisonError};
    use std::time::Instant;

    /// A named monotonically increasing (modulo `u64` wrap) counter.
    ///
    /// Designed to live in a `static` (see [`counter!`](crate::counter)):
    /// construction is `const`, registration happens on first use.
    #[derive(Debug)]
    pub struct Counter {
        name: &'static str,
        value: AtomicU64,
        registered: Once,
    }

    impl Counter {
        /// A zeroed counter named `name` (const; use in a `static`).
        pub const fn new(name: &'static str) -> Counter {
            Counter {
                name,
                value: AtomicU64::new(0),
                registered: Once::new(),
            }
        }

        /// Add `n` (wrapping on `u64` overflow, like the underlying
        /// `fetch_add`). First call registers the counter globally.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.registered
                .call_once(|| register(Metric::Counter(self)));
            self.value.fetch_add(n, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> u64 {
            self.value.load(Ordering::Relaxed)
        }

        /// The counter's registry name.
        pub fn name(&self) -> &'static str {
            self.name
        }

        fn reset(&self) {
            self.value.store(0, Ordering::Relaxed);
        }
    }

    /// A named log2-bucketed histogram of `u64` samples.
    ///
    /// Tracks per-bucket counts plus the exact total count and sum, so a
    /// snapshot can report both the distribution shape and the mean.
    #[derive(Debug)]
    pub struct Histogram {
        name: &'static str,
        buckets: [AtomicU64; HISTOGRAM_BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
        registered: Once,
    }

    impl Histogram {
        /// An empty histogram named `name` (const; use in a `static`).
        pub const fn new(name: &'static str) -> Histogram {
            Histogram {
                name,
                buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                registered: Once::new(),
            }
        }

        /// Record one sample. First call registers the histogram.
        #[inline]
        pub fn record(&'static self, v: u64) {
            self.registered
                .call_once(|| register(Metric::Histogram(self)));
            self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }

        /// The histogram's registry name.
        pub fn name(&self) -> &'static str {
            self.name
        }

        /// `(count, sum, per-bucket counts)` at this instant.
        pub fn read(&self) -> (u64, u64, [u64; HISTOGRAM_BUCKETS]) {
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
                *slot = b.load(Ordering::Relaxed);
            }
            (
                self.count.load(Ordering::Relaxed),
                self.sum.load(Ordering::Relaxed),
                buckets,
            )
        }

        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
        }
    }

    /// An RAII span timer: created via [`span!`](crate::span), records
    /// the elapsed wall-clock nanoseconds into its histogram on drop.
    /// Spans nest; [`span_depth`] reports this thread's current depth.
    #[derive(Debug)]
    pub struct Span {
        hist: &'static Histogram,
        start: Instant,
    }

    thread_local! {
        static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
    }

    /// This thread's current span-nesting depth (0 outside any span).
    pub fn span_depth() -> u32 {
        SPAN_DEPTH.with(Cell::get)
    }

    impl Span {
        /// Start timing; the guard records into `hist` when dropped.
        pub fn start(hist: &'static Histogram) -> Span {
            SPAN_DEPTH.with(|d| d.set(d.get() + 1));
            Span {
                hist,
                start: Instant::now(),
            }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos();
            self.hist.record(u64::try_from(ns).unwrap_or(u64::MAX));
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        }
    }

    /// A registered metric (static counters/histograms, by reference).
    enum Metric {
        Counter(&'static Counter),
        Histogram(&'static Histogram),
    }

    static REGISTRY: Mutex<Vec<Metric>> = Mutex::new(Vec::new());

    fn register(m: Metric) {
        REGISTRY
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(m);
    }

    pub(super) fn gather() -> super::Snapshot {
        use std::collections::BTreeMap;
        let reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        // Merge by name (two macro sites may share one metric name);
        // BTreeMap gives the deterministic name-sorted order for free.
        let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
        let mut hists: BTreeMap<&str, (u64, u64, [u64; HISTOGRAM_BUCKETS])> = BTreeMap::new();
        for m in reg.iter() {
            match m {
                Metric::Counter(c) => {
                    let entry = counters.entry(c.name()).or_insert(0);
                    *entry = entry.wrapping_add(c.get());
                }
                Metric::Histogram(h) => {
                    let (count, sum, buckets) = h.read();
                    let entry = hists
                        .entry(h.name())
                        .or_insert((0, 0, [0u64; HISTOGRAM_BUCKETS]));
                    entry.0 = entry.0.wrapping_add(count);
                    entry.1 = entry.1.wrapping_add(sum);
                    for (slot, b) in entry.2.iter_mut().zip(buckets) {
                        *slot = slot.wrapping_add(b);
                    }
                }
            }
        }
        super::Snapshot {
            counters: counters
                .into_iter()
                .map(|(name, value)| super::CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: hists
                .into_iter()
                .map(|(name, (count, sum, buckets))| super::HistogramSnapshot {
                    name: name.to_string(),
                    count,
                    sum,
                    buckets: buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c != 0)
                        .map(|(i, &c)| super::BucketCount {
                            low: super::bucket_low(i),
                            count: c,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    impl crate::Validate for Counter {
        /// Audit the naming convention: a counter must carry a non-empty
        /// dotted `layer.metric` name (the registry merges by name, so a
        /// blank or undotted name silently aliases metrics).
        fn audit(&self) -> crate::AuditReport {
            let mut rep = crate::AuditReport::new("netgraph::obs::Counter");
            rep.check("counter.named", !self.name.is_empty(), || {
                "empty metric name".into()
            });
            rep.check("counter.dotted-name", self.name.contains('.'), || {
                format!("name {:?} lacks a layer prefix", self.name)
            });
            rep
        }
    }

    impl crate::Validate for Histogram {
        /// Re-derive the histogram's counting invariant: the total count
        /// equals the sum of the per-bucket counts (every recorded sample
        /// landed in exactly one bucket), plus the naming convention.
        fn audit(&self) -> crate::AuditReport {
            let mut rep = crate::AuditReport::new("netgraph::obs::Histogram");
            rep.check("histogram.named", !self.name.is_empty(), || {
                "empty metric name".into()
            });
            rep.check("histogram.dotted-name", self.name.contains('.'), || {
                format!("name {:?} lacks a layer prefix", self.name)
            });
            let count = self.count.load(Ordering::SeqCst);
            let bucket_total: u64 = self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::SeqCst))
                .fold(0u64, u64::wrapping_add);
            rep.check("histogram.count-consistent", count == bucket_total, || {
                format!("count {count}, bucket total {bucket_total}")
            });
            rep
        }
    }

    pub(super) fn reset_all() {
        let reg = REGISTRY.lock().unwrap_or_else(PoisonError::into_inner);
        for m in reg.iter() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    #[cfg(test)]
    mod core_tests {
        use super::*;
        use crate::Validate;

        #[test]
        fn metric_audits_accept_and_detect_corruption() {
            assert!(Counter::new("layer.metric").audit().is_ok());
            assert!(Histogram::new("layer.latency").audit().is_ok());

            // Naming-convention violations.
            assert!(Counter::new("")
                .audit()
                .findings
                .iter()
                .any(|f| f.invariant == "counter.named"));
            assert!(Counter::new("flat")
                .audit()
                .findings
                .iter()
                .any(|f| f.invariant == "counter.dotted-name"));
            assert!(!Histogram::new("flat").audit().is_ok());

            // Counting invariant: bump the total without any bucket
            // landing a sample (requires private access — the public
            // `record` path keeps them in sync by construction).
            let h = Histogram::new("layer.broken");
            h.count.store(3, Ordering::SeqCst);
            assert!(h
                .audit()
                .findings
                .iter()
                .any(|f| f.invariant == "histogram.count-consistent"));
        }
    }
}

#[cfg(feature = "obs")]
pub use core::{span_depth, Counter, Histogram, Span};

/// One counter in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name (`layer.metric`).
    pub name: String,
    /// Cumulative value at snapshot time.
    pub value: u64,
}

/// One non-empty histogram bucket in a [`Snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive lower bound of the bucket ([`bucket_low`]).
    pub low: u64,
    /// Samples that landed in the bucket.
    pub count: u64,
}

/// One histogram in a [`Snapshot`]: totals plus the non-zero buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name (`layer.metric`).
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Non-empty buckets, ascending by lower bound.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean sample value, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time capture of every registered metric, merged by name and
/// sorted, so two snapshots of identical program state render to
/// identical JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// All counters, ascending by name.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, ascending by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of the counter called `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The histogram called `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Render as a self-contained JSON document (deterministic: metrics
    /// are name-sorted and the writer emits no insignificant whitespace
    /// variation).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"obs_enabled\": ");
        out.push_str(if enabled() { "true" } else { "false" });
        out.push_str(",\n  \"counters\": {");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    \"{}\": {}", json_escape(&c.name), c.value));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_escape(&h.name),
                h.count,
                h.sum
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", b.low, b.count));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Capture every registered metric. Empty when [`enabled`] is `false` or
/// nothing has been recorded yet.
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "obs")]
    {
        core::gather()
    }
    #[cfg(not(feature = "obs"))]
    {
        Snapshot::default()
    }
}

/// Zero every registered metric (names stay registered). No-op when
/// [`enabled`] is `false`.
pub fn reset() {
    #[cfg(feature = "obs")]
    core::reset_all();
}

/// Bump a named counter: `counter!("msbfs.levels")` adds 1,
/// `counter!("msbfs.levels", n)` adds `n` (a `u64`). Evaluates to `()`.
///
/// With the `obs` feature off this expands to `()` — the argument
/// expressions are **not** evaluated, so keep them side-effect free.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1u64)
    };
    ($name:expr, $n:expr) => {{
        static __OBS_COUNTER: $crate::obs::Counter = $crate::obs::Counter::new($name);
        __OBS_COUNTER.add($n);
    }};
}

/// Bump a named counter: `counter!("msbfs.levels")` adds 1,
/// `counter!("msbfs.levels", n)` adds `n` (a `u64`). Evaluates to `()`.
///
/// The `obs` feature is off in this build, so the macro expands to `()`
/// and its arguments are not evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! counter {
    ($($args:tt)*) => {
        ()
    };
}

/// Record a `u64` sample into a named log2 histogram:
/// `histogram!("par.chunks_per_worker", n)`. Evaluates to `()`.
///
/// With the `obs` feature off this expands to `()` — the argument
/// expressions are **not** evaluated, so keep them side-effect free.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! histogram {
    ($name:expr, $v:expr) => {{
        static __OBS_HISTOGRAM: $crate::obs::Histogram = $crate::obs::Histogram::new($name);
        __OBS_HISTOGRAM.record($v);
    }};
}

/// Record a `u64` sample into a named log2 histogram:
/// `histogram!("par.chunks_per_worker", n)`. Evaluates to `()`.
///
/// The `obs` feature is off in this build, so the macro expands to `()`
/// and its arguments are not evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! histogram {
    ($($args:tt)*) => {
        ()
    };
}

/// Start a span timer recording elapsed nanoseconds into the named
/// histogram when the returned guard drops:
/// `let _span = netgraph::span!("table3.curve");`.
///
/// With the `obs` feature off this expands to `()` (dropping immediately,
/// timing nothing).
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __OBS_SPAN: $crate::obs::Histogram = $crate::obs::Histogram::new($name);
        $crate::obs::Span::start(&__OBS_SPAN)
    }};
}

/// Start a span timer recording elapsed nanoseconds into the named
/// histogram when the returned guard drops:
/// `let _span = netgraph::span!("table3.curve");`.
///
/// The `obs` feature is off in this build, so the macro expands to `()`.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        ()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            // Every bucket's lower bound maps back into that bucket.
            assert_eq!(bucket_index(bucket_low(i)), i, "bucket {i}");
        }
        assert_eq!(bucket_low(0), 0);
        assert_eq!(bucket_low(1), 1);
        assert_eq!(bucket_low(5), 16);
    }

    #[test]
    fn empty_snapshot_shapes() {
        let s = Snapshot::default();
        assert_eq!(s.counter("nope"), None);
        assert!(s.histogram("nope").is_none());
        let json = s.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"histograms\""));
    }

    #[test]
    fn json_escaping_in_names() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain.name"), "plain.name");
    }

    #[test]
    fn histogram_snapshot_mean() {
        let h = HistogramSnapshot {
            name: "x".into(),
            count: 4,
            sum: 10,
            buckets: Vec::new(),
        };
        assert!((h.mean() - 2.5).abs() < 1e-12);
        let empty = HistogramSnapshot {
            name: "y".into(),
            count: 0,
            sum: 0,
            buckets: Vec::new(),
        };
        assert_eq!(empty.mean(), 0.0);
    }
}
