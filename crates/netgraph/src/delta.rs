//! Epochal topology deltas: serializable graph edits and their
//! application.
//!
//! The CSR [`Graph`] is immutable by design — every evaluation in the
//! workspace assumes a frozen adjacency. Topology *evolution* (IXP
//! births, new memberships, AS births and deaths) therefore enters the
//! engine as data: a [`GraphDelta`] is one epoch's worth of edits,
//! normalized and serializable, and can be consumed two ways:
//!
//! - [`Graph::apply_delta`] — rebuild-with-diff. Produces a fresh CSR
//!   graph with **stable vertex ids**: new vertices are appended after
//!   the existing id range and removed vertices are tombstoned in place
//!   (they keep their id but lose every incident edge), so broker sets,
//!   fault schedules and per-node arrays indexed against the old graph
//!   stay meaningful against the new one.
//! - [`DeltaView`] — an overlay implementing [`GraphView`], for peeking
//!   at the post-delta adjacency without paying the CSR rebuild. The
//!   whole traversal machinery ([`crate::with_arena`],
//!   [`crate::with_msbfs`], [`crate::par`]) runs over it unchanged, and
//!   it composes with [`crate::FaultView`] exactly like the other views
//!   — which is what lets churn and faults share one epoch timeline.
//!
//! Application order within a delta is fixed: grow the vertex set, add
//! edges, remove edges, then remove vertices. An edge both added and
//! removed in the same delta is therefore removed, and an edge added to
//! a vertex removed in the same delta does not survive.

use crate::graph::{undirected_key, Graph, GraphBuilder, NodeId};
use crate::validate::{AuditReport, Validate};
use crate::view::GraphView;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One epoch's worth of graph edits against a base graph with
/// `base_nodes` vertices.
///
/// ```
/// use netgraph::{graph::from_edges, GraphDelta, NodeId};
///
/// let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let mut d = GraphDelta::new(3);
/// let w = d.add_node();              // NodeId(3), appended after the range
/// d.add_edge(NodeId(0), w);
/// d.remove_edge(NodeId(1), NodeId(2));
/// let g2 = g.apply_delta(&d);
/// assert_eq!(g2.node_count(), 4);
/// assert!(g2.has_edge(NodeId(0), NodeId(3)));
/// assert!(!g2.has_edge(NodeId(1), NodeId(2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Vertex count of the graph this delta applies to.
    base_nodes: usize,
    /// Fresh vertices appended after the base range
    /// (`base_nodes .. base_nodes + new_nodes`).
    new_nodes: usize,
    /// Edges to add, keys normalized per [`undirected_key`].
    added_edges: Vec<(u32, u32)>,
    /// Edges to cut, keys normalized per [`undirected_key`].
    removed_edges: Vec<(u32, u32)>,
    /// Vertices tombstoned in place: the id survives, every incident
    /// edge is dropped.
    removed_nodes: Vec<NodeId>,
}

impl GraphDelta {
    /// An empty delta against a graph with `base_nodes` vertices.
    pub fn new(base_nodes: usize) -> Self {
        GraphDelta {
            base_nodes,
            new_nodes: 0,
            added_edges: Vec::new(),
            removed_edges: Vec::new(),
            removed_nodes: Vec::new(),
        }
    }

    /// Vertex count of the graph this delta applies to.
    pub fn base_nodes(&self) -> usize {
        self.base_nodes
    }

    /// Vertex count after application (`base_nodes + new_nodes`; removed
    /// vertices are tombstoned, never compacted away).
    pub fn node_count_after(&self) -> usize {
        self.base_nodes + self.new_nodes
    }

    /// Append a fresh vertex; returns its (stable) id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from(self.base_nodes + self.new_nodes);
        self.new_nodes += 1;
        id
    }

    /// Record an edge addition. Self-loops are ignored, matching
    /// [`GraphBuilder::add_edge`].
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is outside `0..node_count_after()`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            return;
        }
        self.check_range(u);
        self.check_range(v);
        self.added_edges.push(undirected_key(u, v));
    }

    /// Record an edge removal (a no-op at application time if the edge
    /// does not exist).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is outside `0..node_count_after()`.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        if u == v {
            return;
        }
        self.check_range(u);
        self.check_range(v);
        self.removed_edges.push(undirected_key(u, v));
    }

    /// Tombstone vertex `v`: it keeps its id but loses every incident
    /// edge (present and added-this-delta alike).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `0..node_count_after()`.
    pub fn remove_node(&mut self, v: NodeId) {
        self.check_range(v);
        self.removed_nodes.push(v);
    }

    /// Edges added, normalized keys, insertion order.
    pub fn added_edges(&self) -> &[(u32, u32)] {
        &self.added_edges
    }

    /// Edges removed, normalized keys, insertion order.
    pub fn removed_edges(&self) -> &[(u32, u32)] {
        &self.removed_edges
    }

    /// Vertices tombstoned by this delta.
    pub fn removed_nodes(&self) -> &[NodeId] {
        &self.removed_nodes
    }

    /// Number of fresh vertices this delta appends.
    pub fn new_node_count(&self) -> usize {
        self.new_nodes
    }

    /// Whether the delta edits nothing.
    pub fn is_empty(&self) -> bool {
        self.new_nodes == 0
            && self.added_edges.is_empty()
            && self.removed_edges.is_empty()
            && self.removed_nodes.is_empty()
    }

    /// Total edit operations recorded (node births count once each).
    pub fn op_count(&self) -> usize {
        self.new_nodes
            + self.added_edges.len()
            + self.removed_edges.len()
            + self.removed_nodes.len()
    }

    fn check_range(&self, v: NodeId) {
        assert!(
            v.index() < self.node_count_after(),
            "{v} outside 0..{} (base {} + {} new)",
            self.node_count_after(),
            self.base_nodes,
            self.new_nodes
        );
    }
}

impl Validate for GraphDelta {
    /// Re-derive the constructor contract on the stored edit lists: edge
    /// keys strictly normalized (`a < b`, so no self-loops survive) and
    /// every referenced vertex inside `0..node_count_after()`.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("netgraph::GraphDelta");
        let n = self.node_count_after() as u32;
        let keys_ok = |edges: &[(u32, u32)]| edges.iter().all(|&(a, b)| a < b && b < n);
        rep.check(
            "delta.added-keys-normalized",
            keys_ok(&self.added_edges),
            || "an added edge key is not strictly (min, max) in range".into(),
        );
        rep.check(
            "delta.removed-keys-normalized",
            keys_ok(&self.removed_edges),
            || "a removed edge key is not strictly (min, max) in range".into(),
        );
        rep.check(
            "delta.removed-nodes-in-range",
            self.removed_nodes.iter().all(|&v| v.0 < n),
            || "a tombstoned vertex is outside the post-delta range".into(),
        );
        rep
    }
}

impl Graph {
    /// Apply `delta`, producing a fresh CSR graph with stable vertex
    /// ids: new vertices appended, removed vertices tombstoned in place
    /// (id kept, adjacency emptied).
    ///
    /// # Panics
    ///
    /// Panics if `delta.base_nodes()` disagrees with this graph's vertex
    /// count.
    pub fn apply_delta(&self, delta: &GraphDelta) -> Graph {
        assert_eq!(
            self.node_count(),
            delta.base_nodes(),
            "delta was built against a {}-vertex graph",
            delta.base_nodes()
        );
        let n2 = delta.node_count_after();
        let cut: BTreeSet<(u32, u32)> = delta.removed_edges.iter().copied().collect();
        let mut dead = crate::NodeSet::new(n2);
        for &v in &delta.removed_nodes {
            dead.insert(v);
        }
        let keep = |u: NodeId, v: NodeId| {
            !dead.contains(u) && !dead.contains(v) && !cut.contains(&undirected_key(u, v))
        };
        let mut b = GraphBuilder::with_capacity(n2, self.edge_count() + delta.added_edges.len());
        for (u, v) in self.edges() {
            if keep(u, v) {
                b.add_edge(u, v);
            }
        }
        for &(a, z) in &delta.added_edges {
            let (u, v) = (NodeId(a), NodeId(z));
            if keep(u, v) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }
}

/// Overlay view of a base graph with a [`GraphDelta`] applied, without
/// the CSR rebuild. Implements [`GraphView`], so the arena BFS, the
/// 64-lane msbfs kernel and the parallel executor all traverse the
/// post-delta topology unchanged — and a [`crate::FaultView`] can wrap
/// it to run churn and faults on one timeline.
///
/// Neighbor enumeration order is deterministic: surviving base
/// neighbors in CSR (ascending) order first, then surviving added
/// neighbors in ascending order.
#[derive(Debug, Clone)]
pub struct DeltaView<'a> {
    base: &'a Graph,
    node_count: usize,
    /// Added adjacency (both directions), ascending, deduplicated
    /// against the base graph.
    extra: BTreeMap<u32, Vec<NodeId>>,
    removed_edges: BTreeSet<(u32, u32)>,
    dead: crate::NodeSet,
}

impl<'a> DeltaView<'a> {
    /// Overlay `delta` on `base`.
    ///
    /// # Panics
    ///
    /// Panics if `delta.base_nodes()` disagrees with `base`.
    pub fn new(base: &'a Graph, delta: &GraphDelta) -> Self {
        assert_eq!(
            base.node_count(),
            delta.base_nodes(),
            "delta was built against a {}-vertex graph",
            delta.base_nodes()
        );
        let node_count = delta.node_count_after();
        let removed_edges: BTreeSet<(u32, u32)> = delta.removed_edges.iter().copied().collect();
        let mut dead = crate::NodeSet::new(node_count);
        for &v in &delta.removed_nodes {
            dead.insert(v);
        }
        // Added edges, minus those already present in the base (they
        // must not be enumerated twice), deduplicated among themselves.
        let mut extra: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
        let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(a, z) in delta.added_edges() {
            if !seen.insert((a, z)) {
                continue;
            }
            let in_base = (a as usize) < base.node_count()
                && (z as usize) < base.node_count()
                && base.has_edge(NodeId(a), NodeId(z));
            if in_base {
                continue;
            }
            extra.entry(a).or_default().push(NodeId(z));
            extra.entry(z).or_default().push(NodeId(a));
        }
        for nbs in extra.values_mut() {
            nbs.sort_unstable();
        }
        DeltaView {
            base,
            node_count,
            extra,
            removed_edges,
            dead,
        }
    }
}

impl GraphView for DeltaView<'_> {
    fn node_count(&self) -> usize {
        self.node_count
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        if self.dead.contains(u) {
            return;
        }
        let alive = |u: NodeId, v: NodeId| {
            !self.dead.contains(v) && !self.removed_edges.contains(&undirected_key(u, v))
        };
        if u.index() < self.base.node_count() {
            for &v in self.base.neighbors(u) {
                if alive(u, v) {
                    visit(v);
                }
            }
        }
        if let Some(extra) = self.extra.get(&u.0) {
            for &v in extra {
                if alive(u, v) {
                    visit(v);
                }
            }
        }
    }

    #[inline]
    fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.node_count && !self.dead.contains(v)
    }

    fn is_symmetric(&self) -> bool {
        // Undirected edits on an undirected graph: both directions of
        // every surviving edge are enumerated.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn path5() -> Graph {
        from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn apply_grows_and_edits() {
        let g = path5();
        let mut d = GraphDelta::new(5);
        let w = d.add_node();
        assert_eq!(w, NodeId(5));
        d.add_edge(NodeId(0), w);
        d.remove_edge(NodeId(2), NodeId(3));
        let g2 = g.apply_delta(&d);
        assert_eq!(g2.node_count(), 6);
        assert_eq!(g2.edge_count(), 4); // 4 - 1 + 1
        assert!(g2.has_edge(NodeId(0), NodeId(5)));
        assert!(!g2.has_edge(NodeId(2), NodeId(3)));
        assert!(g2.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn tombstone_keeps_id_drops_adjacency() {
        let g = path5();
        let mut d = GraphDelta::new(5);
        d.remove_node(NodeId(2));
        d.add_edge(NodeId(2), NodeId(4)); // added to a dead vertex: dropped
        let g2 = g.apply_delta(&d);
        assert_eq!(g2.node_count(), 5, "ids stay stable");
        assert_eq!(g2.degree(NodeId(2)), 0);
        assert!(!g2.has_edge(NodeId(1), NodeId(2)));
        assert!(g2.has_edge(NodeId(3), NodeId(4)));
    }

    #[test]
    fn add_then_remove_same_edge_removes() {
        let g = path5();
        let mut d = GraphDelta::new(5);
        d.add_edge(NodeId(0), NodeId(4));
        d.remove_edge(NodeId(4), NodeId(0)); // normalized to the same key
        let g2 = g.apply_delta(&d);
        assert!(!g2.has_edge(NodeId(0), NodeId(4)));
    }

    #[test]
    fn duplicate_add_of_existing_edge_is_noop() {
        let g = path5();
        let mut d = GraphDelta::new(5);
        d.add_edge(NodeId(0), NodeId(1));
        d.add_edge(NodeId(1), NodeId(0));
        let g2 = g.apply_delta(&d);
        assert_eq!(g2.edge_count(), g.edge_count());
    }

    #[test]
    fn empty_delta_is_identity() {
        let g = path5();
        let d = GraphDelta::new(5);
        assert!(d.is_empty());
        assert_eq!(d.op_count(), 0);
        assert_eq!(g.apply_delta(&d), g);
    }

    #[test]
    fn view_matches_rebuild() {
        let g = path5();
        let mut d = GraphDelta::new(5);
        let w = d.add_node();
        d.add_edge(w, NodeId(1));
        d.remove_edge(NodeId(0), NodeId(1));
        d.remove_node(NodeId(4));
        let rebuilt = g.apply_delta(&d);
        let view = DeltaView::new(&g, &d);
        assert_eq!(view.node_count(), rebuilt.node_count());
        assert!(view.is_symmetric());
        for v in rebuilt.nodes() {
            let mut from_view: Vec<NodeId> = Vec::new();
            view.for_each_neighbor(v, |u| from_view.push(u));
            from_view.sort_unstable();
            assert_eq!(from_view, rebuilt.neighbors(v).to_vec(), "vertex {v}");
            assert_eq!(
                view.contains_node(v),
                rebuilt.degree(v) > 0 || !d.removed_nodes().contains(&v)
            );
        }
    }

    #[test]
    fn view_composes_with_arena_and_msbfs() {
        let g = path5();
        let mut d = GraphDelta::new(5);
        let w = d.add_node(); // 5
        d.add_edge(w, NodeId(4));
        d.remove_edge(NodeId(1), NodeId(2));
        let view = DeltaView::new(&g, &d);
        let dist = crate::with_arena(|a| {
            a.run(&view, NodeId(0));
            (0..6).map(|v| a.distance(NodeId(v))).collect::<Vec<_>>()
        });
        assert_eq!(dist, vec![Some(0), Some(1), None, None, None, None]);
        let lanes = crate::msbfs_distances(&view, &[NodeId(2), NodeId(5)]);
        assert_eq!(
            lanes[0],
            vec![None, None, Some(0), Some(1), Some(2), Some(3)]
        );
        assert_eq!(lanes[1][4], Some(1));
    }

    #[test]
    fn audit_accepts_and_detects_corruption() {
        let mut d = GraphDelta::new(4);
        d.add_node();
        d.add_edge(NodeId(0), NodeId(4));
        d.remove_edge(NodeId(1), NodeId(2));
        d.remove_node(NodeId(3));
        assert!(d.audit().is_ok());

        let mut bad = d.clone();
        bad.added_edges.push((3, 1)); // reversed key
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "delta.added-keys-normalized"));

        let mut bad = d.clone();
        bad.removed_edges.push((2, 2)); // self-loop key
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "delta.removed-keys-normalized"));

        let mut bad = d;
        bad.removed_nodes.push(NodeId(99));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "delta.removed-nodes-in-range"));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_edge_rejected() {
        let mut d = GraphDelta::new(3);
        d.add_edge(NodeId(0), NodeId(7));
    }

    #[test]
    #[should_panic(expected = "delta was built against")]
    fn base_mismatch_rejected() {
        let g = path5();
        let d = GraphDelta::new(4);
        let _ = g.apply_delta(&d);
    }

    #[test]
    fn serde_round_trip_is_bit_identical() {
        let mut d = GraphDelta::new(6);
        d.add_node();
        d.add_edge(NodeId(6), NodeId(0));
        d.remove_edge(NodeId(1), NodeId(2));
        d.remove_node(NodeId(5));
        let json = serde_json::to_string(&d).expect("serialize");
        let back: GraphDelta = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, d);
        assert_eq!(serde_json::to_string(&back).expect("reserialize"), json);
    }
}
