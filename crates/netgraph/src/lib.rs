//! # netgraph — compact graph substrate for network-scale algorithmics
//!
//! This crate provides the graph machinery the rest of the workspace is
//! built on: a cache-friendly CSR ([`Graph`]) representation for undirected
//! graphs with tens of thousands of vertices and hundreds of thousands of
//! edges, plus the traversal, component, centrality and random-generation
//! routines needed to reproduce the evaluation of *"On the Feasibility of
//! Inter-Domain Routing via a Small Broker Set"* (Liu, Lui, Lin, Hui).
//!
//! Everything is implemented from scratch — no external graph crate — and
//! all randomized routines take an explicit seedable RNG so experiments are
//! reproducible bit-for-bit.
//!
//! ## Quick tour
//!
//! ```
//! use netgraph::{GraphBuilder, NodeId};
//!
//! // A 4-cycle with a chord.
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId(0), NodeId(1));
//! b.add_edge(NodeId(1), NodeId(2));
//! b.add_edge(NodeId(2), NodeId(3));
//! b.add_edge(NodeId(3), NodeId(0));
//! b.add_edge(NodeId(0), NodeId(2));
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 4);
//! assert_eq!(g.edge_count(), 5);
//! assert_eq!(g.degree(NodeId(0)), 3);
//!
//! let dist = netgraph::bfs_distances(&g, NodeId(1));
//! assert_eq!(dist[3], Some(2));
//! ```
//!
//! ## Modules
//!
//! - [`graph`] — the CSR graph and its builder.
//! - [`nodeset`] — dense bitset over node ids, the working currency of the
//!   coverage algorithms.
//! - [`view`] — zero-cost graph views (full, broker-dominated, induced,
//!   failure-masked) the traversal engine is generic over.
//! - [`traverse`] — the traversal engine: pooled [`TraversalArena`] BFS over
//!   any view (single source, multi source, bounded, early-exit), plus
//!   allocating convenience wrappers.
//! - [`msbfs`] — bit-parallel multi-source BFS: 64 sources per `u64` lane
//!   with direction-optimizing (push/pull) frontier expansion.
//! - [`par`] — deterministic parallel executor for per-source fan-out.
//! - [`delta`] — epochal topology deltas: serializable [`GraphDelta`]
//!   edits, rebuild-with-diff application and the [`DeltaView`] overlay.
//! - [`mod@dijkstra`] — weighted shortest paths.
//! - [`components`] — connected components and a union-find.
//! - [`fault`] — deterministic fault injection: serializable epochal
//!   [`fault::FaultSchedule`]s (node/edge/broker/group failures and
//!   recoveries) and the [`fault::FaultView`] that masks them.
//! - [`centrality`] — degree, PageRank, k-core decomposition.
//! - [`gen`] — Erdős–Rényi, Watts–Strogatz, Barabási–Albert generators.
//! - [`alphabeta`] — (α, β)-graph property estimation (Definition 2 of the
//!   paper).
//! - [`export`] — DOT / edge-list export for visualization.
//! - [`obs`] — zero-overhead observability: [`counter!`], [`histogram!`]
//!   and [`span!`] macros (no-ops unless the `obs` cargo feature is on)
//!   plus the JSON-serializable [`obs::Snapshot`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alphabeta;
pub mod binio;
pub mod centrality;
pub mod components;
pub mod delta;
pub mod dijkstra;
pub mod error;
pub mod export;
pub mod fault;
pub mod gen;
pub mod graph;
pub mod metrics;
pub mod msbfs;
pub mod nodeset;
pub mod obs;
pub mod par;
pub mod traverse;
pub mod validate;
pub mod view;

pub use alphabeta::{estimate_alpha, hop_histogram, AlphaBetaEstimate, HopHistogram};
pub use binio::{graph_from_bytes, graph_to_bytes, CodecError};
pub use centrality::{coreness, degree_sequence, pagerank, top_by_score, PageRankConfig};
pub use components::{
    connected_components, giant_component, view_components, Components, UnionFind,
};
pub use delta::{DeltaView, GraphDelta};
pub use dijkstra::{dijkstra, WeightedGraph};
pub use error::GraphError;
pub use export::{to_dot, to_edge_list};
pub use fault::{
    FaultAction, FaultEvent, FaultGroup, FaultSchedule, FaultState, FaultTarget, FaultView,
};
pub use gen::{barabasi_albert, erdos_renyi_gnm, erdos_renyi_gnp, watts_strogatz};
pub use graph::{undirected_key, Graph, GraphBuilder, NodeId, Permuted};
pub use metrics::{
    betweenness, betweenness_threaded, closeness, closeness_threaded, clustering_coefficients,
    degree_assortativity, degree_stats, diameter_lower_bound, mean_clustering, DegreeStats,
};
pub use msbfs::{msbfs_distances, with_msbfs, LaneSet, MsBfsArena, Wavefront};
pub use nodeset::NodeSet;
pub use traverse::{
    bfs_distances, bfs_distances_bounded, bfs_parents, multi_source_bfs, restricted_bfs_distances,
    shortest_path, with_arena, TraversalArena,
};
pub use validate::{debug_validate, AuditReport, Finding, Validate};
pub use view::{DominatedView, FullView, GraphView, InducedView, MaskedView};
