//! Compressed-sparse-row (CSR) undirected graph.
//!
//! The evaluation graphs in this workspace are static once built (the
//! Internet topology snapshot does not mutate while algorithms run), so we
//! trade mutability for a compact, cache-friendly adjacency layout: one
//! `offsets` array of length `n + 1` and one flat `neighbors` array of
//! length `2m`. Construction goes through [`GraphBuilder`], which
//! deduplicates parallel edges and drops self-loops.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`Graph`].
///
/// A thin newtype over the vertex index. Vertices of a graph with `n` nodes
/// are exactly `NodeId(0) .. NodeId(n - 1)`.
///
/// ```
/// use netgraph::NodeId;
/// let v = NodeId(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(NodeId::from(3usize), NodeId(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The vertex index as a `usize`, for indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(i: u32) -> Self {
        NodeId(i)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable undirected graph in CSR form.
///
/// Build one with [`GraphBuilder`]. Parallel edges are coalesced and
/// self-loops are dropped at build time, so `degree(v)` counts *distinct*
/// neighbors.
///
/// ```
/// use netgraph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(0)); // duplicate, coalesced
/// b.add_edge(NodeId(1), NodeId(1)); // self-loop, dropped
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0)]);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v] .. offsets[v + 1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<u32>,
    /// Flat neighbor lists, each sorted ascending.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges (half the length of `neighbors`).
    edges: usize,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl Graph {
    /// Number of vertices.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (parallel edges coalesced, no self-loops).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Whether the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// The sorted, deduplicated neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Number of distinct neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Whether an undirected edge `{u, v}` exists. `O(log deg(u))`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all vertices.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Average degree `2m / n`; `0.0` for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / self.node_count() as f64
        }
    }

    /// Returns the induced subgraph on `keep` together with the mapping
    /// from new ids to original ids.
    ///
    /// Vertices are renumbered `0..keep.len()` in the order given by
    /// `keep`'s set iteration (ascending original id).
    pub fn induced_subgraph(&self, keep: &crate::NodeSet) -> (Graph, Vec<NodeId>) {
        let old_of_new: Vec<NodeId> = keep.iter().collect();
        let mut new_of_old = vec![u32::MAX; self.node_count()];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old.index()] = new as u32;
        }
        let mut b = GraphBuilder::new(old_of_new.len());
        for (new, &old) in old_of_new.iter().enumerate() {
            for &nb in self.neighbors(old) {
                let nb_new = new_of_old[nb.index()];
                if nb_new != u32::MAX && (new as u32) < nb_new {
                    b.add_edge(NodeId(new as u32), NodeId(nb_new));
                }
            }
        }
        (b.build(), old_of_new)
    }
}

/// Incremental builder for [`Graph`].
///
/// Edges may be added in any order and direction; `build` sorts and
/// deduplicates. Self-loops are silently dropped (the AS-level topology has
/// no meaningful self-connections).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    nodes: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Start a builder for a graph with `nodes` vertices and no edges.
    pub fn new(nodes: usize) -> Self {
        GraphBuilder {
            nodes,
            edges: Vec::new(),
        }
    }

    /// Start a builder pre-sized for `edges` edge insertions.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            nodes,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Grow the vertex set to at least `nodes` vertices.
    pub fn grow_to(&mut self, nodes: usize) {
        self.nodes = self.nodes.max(nodes);
    }

    /// Add a fresh vertex and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from(self.nodes);
        self.nodes += 1;
        id
    }

    /// Record an undirected edge `{u, v}`. Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a valid vertex.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(
            u.index() < self.nodes && v.index() < self.nodes,
            "edge ({u}, {v}) references a vertex outside 0..{}",
            self.nodes
        );
        if u == v {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b));
    }

    /// Record many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
    }

    /// Finalize into an immutable [`Graph`].
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.nodes;
        let mut degrees = vec![0u32; n];
        for &(u, v) in &self.edges {
            degrees[u.index()] += 1;
            degrees[v.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![NodeId(0); acc as usize];
        for &(u, v) in &self.edges {
            neighbors[cursor[u.index()] as usize] = v;
            cursor[u.index()] += 1;
            neighbors[cursor[v.index()] as usize] = u;
            cursor[v.index()] += 1;
        }
        // Each list is already ascending for the `u -> v` halves because
        // edges were sorted, but the back-edges (`v -> u`) interleave, so
        // sort each adjacency list.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }
        let g = Graph {
            offsets,
            neighbors,
            edges: self.edges.len(),
        };
        // Full CSR re-audit at the construction boundary (debug builds
        // only; release builds skip it entirely).
        crate::validate::debug_validate(&g);
        g
    }
}

impl crate::Validate for GraphBuilder {
    /// Audit the pending edge list against the builder's insert-time
    /// contract: every recorded edge is endpoint-normalized (`a < b`, so
    /// no self-loops survive) and references vertices in `0..nodes`.
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("netgraph::GraphBuilder");
        let n = self.nodes;
        let mut unnormalized = 0usize;
        let mut out_of_range = 0usize;
        for &(a, b) in &self.edges {
            if a >= b {
                unnormalized += 1;
            }
            if a.index() >= n || b.index() >= n {
                out_of_range += 1;
            }
        }
        rep.check("builder.edges-normalized", unnormalized == 0, || {
            format!("{unnormalized} edge(s) with a >= b")
        });
        rep.check("builder.edges-in-range", out_of_range == 0, || {
            format!("{out_of_range} edge(s) reference vertices outside 0..{n}")
        });
        rep
    }
}

impl Graph {
    /// Raw CSR arrays for the in-crate invariant audit
    /// ([`crate::validate`]); not part of the public surface.
    pub(crate) fn csr_parts(&self) -> (&[u32], &[NodeId], usize) {
        (&self.offsets, &self.neighbors, self.edges)
    }

    /// Assemble a graph directly from CSR arrays, bypassing the builder
    /// and all invariants — exists so the audit tests can manufacture
    /// corrupted representations.
    #[cfg(test)]
    pub(crate) fn from_csr_unchecked(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        edges: usize,
    ) -> Graph {
        Graph {
            offsets,
            neighbors,
            edges,
        }
    }
}

/// A [`Graph`] re-laid-out under a deterministic cache-aware vertex
/// permutation, together with the round-trip node-id mapping.
///
/// Built by [`Graph::permute_by_degree`]: vertices are relabeled in
/// degree-descending order (ties broken by ascending original id), which
/// packs the hub adjacency lists — the rows every BFS touches most — into
/// the front of the CSR arrays where they share cache lines. The handle
/// owns the permuted graph plus both directions of the mapping, so
/// callers run algorithms on [`Permuted::graph`] in the permuted id
/// space and translate inputs with [`Permuted::map_set`] /
/// [`Permuted::to_new`] and results back with [`Permuted::to_old`] /
/// [`Permuted::unpermute`] — **all public results stay in original
/// ids**.
///
/// The permutation relabels vertices of the *same* edge set, so any
/// label-invariant aggregate (l-hop coverage counts, connected-pair
/// totals, degree histograms) is bit-identical between the two layouts;
/// the determinism suites pin exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permuted {
    graph: Graph,
    /// `old_of_new[new]` = original id of permuted vertex `new`.
    old_of_new: Vec<NodeId>,
    /// `new_of_old[old]` = permuted id of original vertex `old`.
    new_of_old: Vec<u32>,
}

impl Graph {
    /// Compute the deterministic degree-descending permutation of this
    /// graph once and re-lay the CSR out under it.
    ///
    /// The order is a pure function of the graph (degree descending,
    /// ties by ascending original id — no RNG, no hashing), so repeated
    /// calls and different builds produce the identical layout.
    pub fn permute_by_degree(&self) -> Permuted {
        let n = self.node_count();
        let mut old_of_new: Vec<NodeId> = self.nodes().collect();
        old_of_new.sort_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v.0));
        let mut new_of_old = vec![0u32; n];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old.index()] = new as u32;
        }
        let mut b = GraphBuilder::with_capacity(n, self.edge_count());
        for (u, v) in self.edges() {
            b.add_edge(NodeId(new_of_old[u.index()]), NodeId(new_of_old[v.index()]));
        }
        let p = Permuted {
            graph: b.build(),
            old_of_new,
            new_of_old,
        };
        // Construction-boundary audit (debug builds only), like every
        // other constructor in the workspace.
        crate::validate::debug_validate(&p);
        p
    }
}

impl Permuted {
    /// The permuted-layout graph. Vertex `v` here is original vertex
    /// [`to_old`](Permuted::to_old)`(v)`.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Original id -> permuted id.
    ///
    /// # Panics
    ///
    /// Panics if `old` is out of range.
    #[inline]
    pub fn to_new(&self, old: NodeId) -> NodeId {
        NodeId(self.new_of_old[old.index()])
    }

    /// Permuted id -> original id.
    ///
    /// # Panics
    ///
    /// Panics if `new` is out of range.
    #[inline]
    pub fn to_old(&self, new: NodeId) -> NodeId {
        self.old_of_new[new.index()]
    }

    /// Translate a set of original ids (a broker set, a failure mask)
    /// into the permuted id space.
    pub fn map_set(&self, set: &crate::NodeSet) -> crate::NodeSet {
        let mut mapped = crate::NodeSet::new(self.graph.node_count());
        for old in set.iter() {
            mapped.insert(self.to_new(old));
        }
        mapped
    }

    /// Reorder a per-vertex result vector from permuted layout back to
    /// original ids: `out[old] = per_new[to_new(old)]`.
    pub fn unpermute<T: Clone>(&self, per_new: &[T]) -> Vec<T> {
        assert_eq!(per_new.len(), self.graph.node_count());
        (0..per_new.len())
            .map(|old| per_new[self.new_of_old[old] as usize].clone())
            .collect()
    }
}

impl crate::Validate for Permuted {
    /// Re-derive the permutation invariants: the two mappings are
    /// mutually inverse bijections over `0..n`, and the layout order is
    /// exactly degree-descending with ascending-original-id ties.
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("netgraph::Permuted");
        let n = self.graph.node_count();
        rep.check(
            "permuted.mapping-lengths",
            self.old_of_new.len() == n && self.new_of_old.len() == n,
            || {
                format!(
                    "mappings cover {} / {} ids for {n} vertices",
                    self.old_of_new.len(),
                    self.new_of_old.len()
                )
            },
        );
        let round_trips = self
            .old_of_new
            .iter()
            .enumerate()
            .all(|(new, &old)| old.index() < n && self.new_of_old[old.index()] as usize == new);
        rep.check("permuted.bijection", round_trips, || {
            "old_of_new / new_of_old are not mutually inverse".to_string()
        });
        let ordered = self.old_of_new.windows(2).enumerate().all(|(new, w)| {
            let (da, db) = (self.graph.degree(NodeId(new as u32)), {
                self.graph.degree(NodeId(new as u32 + 1))
            });
            da > db || (da == db && w[0].0 < w[1].0)
        });
        rep.check("permuted.degree-order", ordered, || {
            "layout is not degree-descending with ascending-id ties".to_string()
        });
        rep
    }
}

/// Canonical `(min, max)` key of an undirected edge — the map/set key
/// convention used across the workspace for per-edge attributes
/// (latencies, capacities, degradations).
///
/// ```
/// use netgraph::{graph::undirected_key, NodeId};
/// assert_eq!(undirected_key(NodeId(7), NodeId(2)), (2, 7));
/// assert_eq!(undirected_key(NodeId(2), NodeId(7)), (2, 7));
/// ```
#[inline]
pub fn undirected_key(a: NodeId, b: NodeId) -> (u32, u32) {
    (a.0.min(b.0), a.0.max(b.0))
}

/// Build a graph directly from an iterator of edges over `nodes` vertices.
///
/// Convenience wrapper over [`GraphBuilder`]:
///
/// ```
/// use netgraph::graph::from_edges;
/// use netgraph::NodeId;
/// let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// assert_eq!(g.edge_count(), 2);
/// ```
pub fn from_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(nodes: usize, edges: I) -> Graph {
    let mut b = GraphBuilder::new(nodes);
    b.extend_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: u32, b: u32) -> (NodeId, NodeId) {
        (NodeId(a), NodeId(b))
    }

    #[test]
    fn builder_audit_accepts_and_detects_corruption() {
        use crate::Validate;
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(3), NodeId(1)); // stored normalized (1, 3)
        b.add_edge(NodeId(0), NodeId(2));
        assert!(b.audit().is_ok());
        assert!(GraphBuilder::new(0).audit().is_ok());

        // A denormalized (reversed) edge bypassing add_edge.
        let mut bad = b.clone();
        bad.edges.push((NodeId(2), NodeId(0)));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "builder.edges-normalized"));

        // A surviving self-loop is a normalization failure too (a < b).
        let mut bad = b.clone();
        bad.edges.push((NodeId(1), NodeId(1)));
        assert!(!bad.audit().is_ok());

        // An edge referencing a vertex outside 0..nodes.
        let mut bad = b.clone();
        bad.edges.push((NodeId(1), NodeId(9)));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "builder.edges-in-range"));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_empty());
        assert_eq!(g.mean_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 0);
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn dedup_and_self_loops() {
        let g = from_edges(
            3,
            [pair(0, 1), pair(1, 0), pair(0, 1), pair(2, 2), pair(1, 2)],
        );
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.degree(NodeId(2)), 1);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
    }

    fn degree(g: &Graph, v: u32) -> usize {
        g.degree(NodeId(v))
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = from_edges(6, [pair(3, 1), pair(3, 5), pair(3, 0), pair(3, 2)]);
        let nb: Vec<u32> = g.neighbors(NodeId(3)).iter().map(|n| n.0).collect();
        assert_eq!(nb, vec![0, 1, 2, 5]);
        assert_eq!(degree(&g, 3), 4);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = from_edges(4, [pair(0, 1), pair(1, 2), pair(2, 3), pair(3, 0)]);
        let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn mean_degree_cycle() {
        let g = from_edges(4, [pair(0, 1), pair(1, 2), pair(2, 3), pair(3, 0)]);
        assert!((g.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn add_edge_out_of_range_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(2));
    }

    #[test]
    fn grow_and_add_node() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, NodeId(1));
        b.grow_to(10);
        b.grow_to(4); // no shrink
        assert_eq!(b.node_count(), 10);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        // Path 0-1-2-3, keep {1, 2, 3} -> path of 3 nodes.
        let g = from_edges(4, [pair(0, 1), pair(1, 2), pair(2, 3)]);
        let mut keep = crate::NodeSet::new(4);
        keep.insert(NodeId(1));
        keep.insert(NodeId(2));
        keep.insert(NodeId(3));
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(map, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(sub.has_edge(NodeId(0), NodeId(1))); // old 1-2
        assert!(sub.has_edge(NodeId(1), NodeId(2))); // old 2-3
        assert!(!sub.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn serde_roundtrip() {
        let g = from_edges(3, [pair(0, 1), pair(1, 2)]);
        let json = serde_json::to_string(&g).unwrap();
        let g2: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn permute_by_degree_orders_and_round_trips() {
        use crate::Validate;
        // Star centered on 3 plus chord 0-2: degrees 3:4, then 0 and 2
        // tied at 2, then 1 and 4 tied at 1 — ties break by ascending
        // original id.
        let g = from_edges(
            5,
            [pair(3, 0), pair(3, 1), pair(3, 2), pair(3, 4), pair(0, 2)],
        );
        let p = g.permute_by_degree();
        assert!(p.audit().is_ok());
        assert_eq!(p.to_new(NodeId(3)), NodeId(0), "hub relabels to slot 0");
        // Degree-2 tie resolves by original id: 0 before 2.
        assert_eq!(p.to_new(NodeId(0)), NodeId(1));
        assert_eq!(p.to_new(NodeId(2)), NodeId(2));
        // Degree-1 tie likewise: 1 before 4.
        assert_eq!(p.to_new(NodeId(1)), NodeId(3));
        assert_eq!(p.to_new(NodeId(4)), NodeId(4));
        for v in g.nodes() {
            assert_eq!(p.to_old(p.to_new(v)), v);
            assert_eq!(g.degree(v), p.graph().degree(p.to_new(v)));
        }
        // Degrees are non-increasing in the new id space.
        let degs: Vec<usize> = p.graph().nodes().map(|v| p.graph().degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]));
        // Every original edge survives under the mapping, and nothing else.
        assert_eq!(p.graph().edge_count(), g.edge_count());
        for (u, v) in g.edges() {
            assert!(p.graph().has_edge(p.to_new(u), p.to_new(v)));
        }
    }

    #[test]
    fn permuted_map_set_and_unpermute() {
        let g = from_edges(4, [pair(0, 1), pair(1, 2), pair(1, 3)]);
        let p = g.permute_by_degree();
        let mut set = crate::NodeSet::new(4);
        set.insert(NodeId(0));
        set.insert(NodeId(3));
        let mapped = p.map_set(&set);
        assert_eq!(mapped.len(), 2);
        for old in set.iter() {
            assert!(mapped.contains(p.to_new(old)));
        }
        // A per-node vector computed in the new id space unpermutes back
        // to original-id order.
        let per_new: Vec<u32> = (0..4).map(|new| p.to_old(NodeId(new)).0 * 10).collect();
        let per_old = p.unpermute(&per_new);
        assert_eq!(per_old, vec![0, 10, 20, 30]);
    }
}
