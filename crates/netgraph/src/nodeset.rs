//! Dense bitset over node ids.
//!
//! The coverage algorithms spend almost all their time asking "is `v`
//! already covered?" and "how many new nodes would broker `w` cover?".
//! A `u64`-word bitset answers both with word-parallel operations and is
//! the working currency of `brokerset`.

use crate::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-capacity set of [`NodeId`]s backed by a bit vector.
///
/// ```
/// use netgraph::{NodeSet, NodeId};
/// let mut s = NodeSet::new(100);
/// s.insert(NodeId(3));
/// s.insert(NodeId(64));
/// assert!(s.contains(NodeId(3)));
/// assert_eq!(s.len(), 2);
/// let ids: Vec<u32> = s.iter().map(|n| n.0).collect();
/// assert_eq!(ids, vec![3, 64]);
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
    len: usize,
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeSet(len={}, cap={})", self.len, self.capacity)
    }
}

impl NodeSet {
    /// Empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            len: 0,
        }
    }

    /// Set containing every id in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = NodeSet::new(capacity);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        // Clear the tail bits past `capacity`.
        let tail = capacity % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s.len = capacity;
        s
    }

    /// Build from an iterator of ids.
    pub fn from_iter_with_capacity<I: IntoIterator<Item = NodeId>>(
        capacity: usize,
        iter: I,
    ) -> Self {
        let mut s = NodeSet::new(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Maximum id + 1 this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of members.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `0..capacity`.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        assert!(v.index() < self.capacity, "{v} outside set capacity");
        self.words[v.index() / 64] >> (v.index() % 64) & 1 == 1
    }

    /// Insert `v`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `0..capacity`.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        assert!(v.index() < self.capacity, "{v} outside set capacity");
        let word = &mut self.words[v.index() / 64];
        let mask = 1u64 << (v.index() % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Remove `v`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside `0..capacity`.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        assert!(v.index() < self.capacity, "{v} outside set capacity");
        let word = &mut self.words[v.index() / 64];
        let mask = 1u64 << (v.index() % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Remove all members, keeping capacity.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// In-place union. Both sets must have the same capacity.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place intersection. Both sets must have the same capacity.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// In-place difference (`self \ other`). Same capacities required.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut len = 0usize;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
            len += a.count_ones() as usize;
        }
        self.len = len;
    }

    /// Size of the union without materializing it.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn union_len(&self, other: &NodeSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// Number of members of `other` not already in `self`.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn count_new(&self, other: &NodeSet) -> usize {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (!a & b).count_ones() as usize)
            .sum()
    }

    /// Iterate members in ascending id order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collect members into a `Vec`.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Ascending iterator over a [`NodeSet`]'s members.
#[derive(Debug)]
pub struct Iter<'a> {
    set: &'a NodeSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(NodeId((self.word_idx * 64 + bit) as u32))
    }
}

impl crate::Validate for NodeSet {
    /// Re-derive the bitset invariants from the raw words:
    ///
    /// 1. the word vector is exactly `ceil(capacity / 64)` long;
    /// 2. no bit is set at a position `>= capacity` (the tail of the last
    ///    word is clear);
    /// 3. the cached length equals the total popcount.
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("netgraph::NodeSet");
        rep.check(
            "nodeset.word-count",
            self.words.len() == self.capacity.div_ceil(64),
            || {
                format!(
                    "{} words for capacity {} (expected {})",
                    self.words.len(),
                    self.capacity,
                    self.capacity.div_ceil(64)
                )
            },
        );
        let tail = self.capacity % 64;
        let tail_clear = tail == 0
            || self
                .words
                .last()
                .is_none_or(|&w| w & !((1u64 << tail) - 1) == 0);
        rep.check("nodeset.tail-clear", tail_clear, || {
            format!("bits set beyond capacity {}", self.capacity)
        });
        let popcount: usize = self.words.iter().map(|w| w.count_ones() as usize).sum();
        rep.check("nodeset.cached-len", popcount == self.len, || {
            format!("cached len {}, popcount {popcount}", self.len)
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_accepts_and_detects_corruption() {
        use crate::Validate;
        let mut s = NodeSet::new(70);
        s.insert(NodeId(3));
        s.insert(NodeId(69));
        assert!(s.audit().is_ok());
        assert!(NodeSet::new(0).audit().is_ok());
        assert!(NodeSet::full(64).audit().is_ok());

        // Cached length out of sync with the popcount.
        let mut bad = s.clone();
        bad.len = 5;
        let rep = bad.audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "nodeset.cached-len"));

        // A bit set beyond the capacity (in the last word's tail).
        let mut bad = s.clone();
        *bad.words.last_mut().unwrap() |= 1 << 63; // index 127 >= 70
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "nodeset.tail-clear"));

        // Word vector length no longer matches the capacity.
        let mut bad = s.clone();
        bad.words.push(0);
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "nodeset.word-count"));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(0)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(NodeId(129)));
        assert!(s.remove(NodeId(0)));
        assert!(!s.remove(NodeId(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_tail() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(NodeId(69)));
        assert_eq!(s.iter().count(), 70);
        let s64 = NodeSet::full(64);
        assert_eq!(s64.len(), 64);
    }

    #[test]
    fn empty_set_iter() {
        let s = NodeSet::new(0);
        assert_eq!(s.iter().count(), 0);
        let s = NodeSet::new(100);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter_with_capacity(100, [1, 2, 3].map(NodeId));
        let b = NodeSet::from_iter_with_capacity(100, [3, 4].map(NodeId));

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        assert_eq!(a.union_len(&b), 4);
        assert_eq!(a.count_new(&b), 1);
        assert_eq!(b.count_new(&a), 2);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![NodeId(3)]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn iter_ascending_across_words() {
        let ids = [0u32, 63, 64, 65, 127, 128];
        let s = NodeSet::from_iter_with_capacity(200, ids.map(NodeId));
        let got: Vec<u32> = s.iter().map(|n| n.0).collect();
        assert_eq!(got, ids);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn contains_out_of_range_panics() {
        let s = NodeSet::new(10);
        s.contains(NodeId(10));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = NodeSet::new(10);
        let b = NodeSet::new(20);
        a.union_with(&b);
    }
}
