//! Export helpers: Graphviz DOT and plain edge lists.
//!
//! Fig. 1 and Fig. 4 of the paper are topology visualizations; these
//! exporters let the bench harness dump graphs (optionally with a
//! highlighted broker set) for external rendering.

use crate::{Graph, NodeId, NodeSet};
use std::fmt::Write as _;

/// Render `g` as an undirected Graphviz DOT document.
///
/// Vertices in `highlight` (e.g. a broker set) are drawn filled. `labels`,
/// when provided, must supply one label per vertex.
///
/// # Panics
///
/// Panics if `labels` is `Some` but its length differs from the vertex
/// count.
pub fn to_dot(g: &Graph, highlight: Option<&NodeSet>, labels: Option<&[String]>) -> String {
    if let Some(labels) = labels {
        assert_eq!(
            labels.len(),
            g.node_count(),
            "labels length must equal node count"
        );
    }
    let mut out = String::new();
    out.push_str("graph topology {\n  node [shape=circle, fontsize=8];\n");
    for v in g.nodes() {
        let mut attrs = Vec::new();
        if let Some(labels) = labels {
            attrs.push(format!("label=\"{}\"", labels[v.index()].replace('"', "'")));
        }
        if highlight.is_some_and(|h| h.contains(v)) {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=gold".to_string());
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {};", v.0);
        } else {
            let _ = writeln!(out, "  {} [{}];", v.0, attrs.join(", "));
        }
    }
    for (u, v) in g.edges() {
        let _ = writeln!(out, "  {} -- {};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

/// Render `g` as a whitespace-separated edge list, one `u v` line per
/// undirected edge with `u < v`.
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u.0, v.0);
    }
    out
}

/// Parse an edge list produced by [`to_edge_list`] (or any `u v` pairs).
///
/// The vertex count is `max id + 1` unless `min_nodes` is larger.
///
/// # Errors
///
/// Returns a message describing the first malformed line.
pub fn from_edge_list(text: &str, min_nodes: usize) -> Result<Graph, String> {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut max_id = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<usize, String> {
            tok.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                .parse::<usize>()
                .map_err(|e| format!("line {}: {e}", lineno + 1))
        };
        let u = parse(parts.next())?;
        let v = parse(parts.next())?;
        max_id = max_id.max(u).max(v);
        edges.push((NodeId::from(u), NodeId::from(v)));
    }
    let nodes = min_nodes.max(if edges.is_empty() { 0 } else { max_id + 1 });
    Ok(crate::graph::from_edges(nodes, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn dot_contains_edges_and_highlights() {
        let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let mut hl = NodeSet::new(3);
        hl.insert(NodeId(1));
        let dot = to_dot(&g, Some(&hl), None);
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.contains("1 [style=filled, fillcolor=gold];"));
        assert!(dot.starts_with("graph topology {"));
    }

    #[test]
    fn dot_with_labels() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        let labels = vec!["AS\"1\"".to_string(), "IXP".to_string()];
        let dot = to_dot(&g, None, Some(&labels));
        assert!(dot.contains("label=\"AS'1'\""));
        assert!(dot.contains("label=\"IXP\""));
    }

    #[test]
    #[should_panic(expected = "labels length")]
    fn dot_label_mismatch_panics() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        to_dot(&g, None, Some(&["x".to_string()]));
    }

    #[test]
    fn edge_list_roundtrip() {
        let g = from_edges(
            4,
            [(0, 1), (1, 2), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let text = to_edge_list(&g);
        let g2 = from_edge_list(&text, 0).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn edge_list_parse_errors_and_comments() {
        assert!(from_edge_list("0 x", 0).is_err());
        assert!(from_edge_list("0", 0).is_err());
        let g = from_edge_list("# comment\n\n0 1\n", 5).unwrap();
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn empty_edge_list() {
        let g = from_edge_list("", 0).unwrap();
        assert_eq!(g.node_count(), 0);
    }
}
