//! Random-graph generators: Erdős–Rényi, Watts–Strogatz, Barabási–Albert.
//!
//! Table 3 of the paper compares l-hop connectivity across "ER-Random",
//! "WS-Small-World" and "BA-Scale-free" graphs sharing the vertex count of
//! the AS topology. All generators take an explicit RNG, so runs are
//! reproducible with a fixed seed.

use crate::{Graph, GraphBuilder, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// Matches an observed topology's node *and* edge counts, which is how the
/// Table 3 baselines were constructed ("the same vertex sets ... but the
/// edge sets are generated according to the topologies' features").
///
/// # Panics
///
/// Panics if `m` exceeds the number of distinct vertex pairs.
pub fn erdos_renyi_gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "G(n={n}, m={m}) infeasible: at most {max_edges} edges"
    );
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut chosen = std::collections::BTreeSet::new();
    while chosen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if chosen.insert(key) {
            b.add_edge(NodeId::from(key.0), NodeId::from(key.1));
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: each pair independently with probability `p`.
///
/// Uses geometric skipping, so sparse graphs cost `O(n + m)` rather than
/// `O(n²)`.
///
/// # Panics
///
/// Panics unless `0 ≤ p ≤ 1`.
pub fn erdos_renyi_gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1], got {p}");
    let mut b = GraphBuilder::new(n);
    if p == 0.0 || n < 2 {
        return b.build();
    }
    if p == 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                b.add_edge(NodeId::from(u), NodeId::from(v));
            }
        }
        return b.build();
    }
    // Batagelj–Brandes: enumerate pairs (v, w) with w < v, skipping
    // geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let n = n as i64;
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        w += 1 + ((1.0 - r).ln() / log_q).floor() as i64;
        while w >= v && v < n {
            w -= v;
            v += 1;
        }
        if v < n {
            b.add_edge(NodeId::from(v as usize), NodeId::from(w as usize));
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors on
/// each side (so degree `2k`), each lattice edge rewired with probability
/// `beta` to a uniform random endpoint.
///
/// # Panics
///
/// Panics if `2k ≥ n` or `beta ∉ [0, 1]`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(n > 2 * k, "Watts–Strogatz requires n > 2k (n={n}, k={k})");
    assert!(
        (0.0..=1.0).contains(&beta),
        "beta must be in [0, 1], got {beta}"
    );
    let mut b = GraphBuilder::with_capacity(n, n * k);
    let mut present = std::collections::BTreeSet::new();
    // Lattice edges (u, u + j mod n) for j = 1..=k.
    for u in 0..n {
        for j in 1..=k {
            let v = (u + j) % n;
            let key = (u.min(v), u.max(v));
            if !present.insert(key) {
                continue;
            }
            let (mut a, mut c) = (u, v);
            if rng.gen_bool(beta) {
                // Rewire the far endpoint uniformly, avoiding self loops
                // and duplicates; keep the lattice edge if no slot found
                // quickly (standard practical WS behaviour).
                for _ in 0..16 {
                    let w = rng.gen_range(0..n);
                    let cand = (u.min(w), u.max(w));
                    if w != u && !present.contains(&cand) {
                        present.remove(&key);
                        present.insert(cand);
                        a = cand.0;
                        c = cand.1;
                        break;
                    }
                }
            }
            b.add_edge(NodeId::from(a), NodeId::from(c));
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: start from a clique of
/// `m0 = m` vertices; each new vertex attaches `m` edges to existing
/// vertices chosen proportionally to degree.
///
/// # Panics
///
/// Panics if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "BA attachment count m must be >= 1");
    assert!(n > m, "BA requires n > m (n={n}, m={m})");
    let mut b = GraphBuilder::with_capacity(n, n * m);
    // `targets` holds one entry per half-edge endpoint: sampling uniformly
    // from it realizes degree-proportional selection.
    let mut endpoints: Vec<u32> = Vec::with_capacity(2 * n * m);
    // Seed clique on m vertices (for m = 1, a single vertex).
    for u in 0..m {
        for v in (u + 1)..m {
            b.add_edge(NodeId::from(u), NodeId::from(v));
            endpoints.push(u as u32);
            endpoints.push(v as u32);
        }
    }
    if m == 1 {
        endpoints.push(0); // lone seed vertex gets a virtual half-edge
    }
    for new in m..n {
        // A sorted Vec keeps iteration order deterministic (HashSet order
        // would leak RandomState into the generated graph's RNG stream).
        let mut picked: Vec<u32> = Vec::with_capacity(m);
        while picked.len() < m {
            // The pool always holds the seed half-edges, so `choose` only
            // returns `None` on an impossible empty pool; bail rather
            // than spin.
            let Some(&t) = endpoints.choose(rng) else {
                break;
            };
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        picked.sort_unstable();
        for &t in &picked {
            b.add_edge(NodeId::from(new), NodeId(t));
            endpoints.push(new as u32);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(42)
    }

    #[test]
    fn gnm_exact_edge_count() {
        let g = erdos_renyi_gnm(50, 100, &mut rng());
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 100);
    }

    #[test]
    fn gnm_full_graph() {
        let g = erdos_renyi_gnm(5, 10, &mut rng());
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn gnm_too_many_edges_panics() {
        erdos_renyi_gnm(3, 4, &mut rng());
    }

    #[test]
    fn gnp_expected_density() {
        let n = 300;
        let p = 0.05;
        let g = erdos_renyi_gnp(n, p, &mut rng());
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi_gnp(10, 0.0, &mut rng()).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(5, 1.0, &mut rng()).edge_count(), 10);
        assert_eq!(erdos_renyi_gnp(1, 0.5, &mut rng()).edge_count(), 0);
        assert_eq!(erdos_renyi_gnp(0, 0.5, &mut rng()).node_count(), 0);
    }

    #[test]
    fn ws_degree_regular_without_rewiring() {
        let g = watts_strogatz(20, 3, 0.0, &mut rng());
        assert_eq!(g.edge_count(), 60);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    fn ws_rewired_preserves_edge_count_roughly() {
        let g = watts_strogatz(100, 2, 0.3, &mut rng());
        // Rewiring may occasionally fail to find a slot and keep the
        // lattice edge; edge count stays within [n*k - slack, n*k].
        assert!(g.edge_count() <= 200 && g.edge_count() >= 190);
    }

    #[test]
    #[should_panic(expected = "n > 2k")]
    fn ws_rejects_dense_lattice() {
        watts_strogatz(6, 3, 0.1, &mut rng());
    }

    #[test]
    fn ba_edge_count_and_hub_emergence() {
        let n = 400;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng());
        // Clique: m(m-1)/2 = 3 edges; each of (n - m) newcomers adds m.
        assert_eq!(g.edge_count(), 3 + (n - m) * m);
        let mut degs: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Scale-free: the top hub should be far above the mean degree.
        let mean = g.mean_degree();
        assert!(
            degs[0] as f64 > 4.0 * mean,
            "hub degree {} vs mean {mean}",
            degs[0]
        );
        // Newcomers attach m distinct edges: minimum degree is m.
        assert!(*degs.last().unwrap() >= m);
    }

    #[test]
    fn ba_m1_is_tree() {
        let g = barabasi_albert(50, 1, &mut rng());
        assert_eq!(g.edge_count(), 49);
        let comps = crate::connected_components(&g);
        assert_eq!(comps.count(), 1);
    }

    #[test]
    fn generators_deterministic_under_seed() {
        let a = barabasi_albert(100, 2, &mut ChaCha8Rng::seed_from_u64(7));
        let b = barabasi_albert(100, 2, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = erdos_renyi_gnm(100, 200, &mut ChaCha8Rng::seed_from_u64(9));
        let d = erdos_renyi_gnm(100, 200, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(c, d);
    }
}
