//! Bit-parallel multi-source BFS (MS-BFS) with direction-optimizing
//! traversal.
//!
//! Every headline evaluation in the paper — the l-hop connectivity curves
//! `F_B(l)`, hop-count histograms, distance centralities — is a
//! many-source BFS over a (masked) topology. Running one arena BFS per
//! source repeats the frontier expansion `n` times; this kernel instead
//! packs **64 sources into the bit lanes of a `u64`** (the MS-BFS scheme
//! of Then et al., VLDB 2015) and keeps three masks per vertex:
//!
//! - `seen[v]` — lanes whose BFS has already discovered `v`,
//! - `frontier[v]` — lanes that discovered `v` in the current level,
//! - `next[v]` — lanes reaching `v` in the next level (being built).
//!
//! One pass over the adjacency per level then serves all 64 sources at
//! once: pushing a frontier mask across an edge is a single `OR`.
//!
//! ## Direction-optimizing expansion
//!
//! Each level is expanded either **top-down** (iterate frontier vertices,
//! scatter their masks to neighbors) or **bottom-up** (iterate vertices
//! with undiscovered lanes, gather their neighbors' frontier masks),
//! switching on frontier density in the style of Beamer et al. (SC 2012).
//! Both directions compute the same `next` masks — a lane reaches `v` at
//! level `d + 1` iff some neighbor of `v` carried that lane at level `d`,
//! and set union is order-independent — so the heuristic affects running
//! time only, never results. Bottom-up gathers over a vertex's *neighbor
//! list* as if it were its in-edge list, which requires
//! [`GraphView::is_symmetric`]; asymmetric views (the routing crate's
//! valley-free product graph) are always expanded top-down.
//!
//! ## Determinism
//!
//! A run is a pure function of `(view, sources, max_depth)`: levels are
//! produced in order and every per-level quantity ([`Wavefront`]) is a
//! set cardinality, independent of scan order. Batch-level parallelism
//! composes through [`crate::par`]'s chunk-ordered merge, so results are
//! bit-identical at every thread count — see the engine determinism
//! suites.
//!
//! ```
//! use netgraph::{graph::from_edges, msbfs, NodeId};
//!
//! // A path 0-1-2-3: distances from both endpoints in one batch.
//! let g = from_edges(4, (0..3).map(|i| (NodeId(i), NodeId(i + 1))));
//! let dist = msbfs::msbfs_distances(netgraph::FullView::new(&g), &[NodeId(0), NodeId(3)]);
//! assert_eq!(dist[0], vec![Some(0), Some(1), Some(2), Some(3)]);
//! assert_eq!(dist[1], vec![Some(3), Some(2), Some(1), Some(0)]);
//! ```

use crate::view::GraphView;
use crate::NodeId;
use std::cell::RefCell;

/// Sources served by one batch: the bit lanes of a `u64`.
pub const LANES: usize = 64;

/// Expansion goes bottom-up once the frontier holds more than
/// `1 / PULL_DENSITY` of all vertices (and the view is symmetric).
const PULL_DENSITY: usize = 8;

/// How a batch expands its frontier each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Direction {
    /// Beamer-style switching: top-down for sparse frontiers, bottom-up
    /// for dense ones (symmetric views only). The choice never affects
    /// results, only speed.
    #[default]
    Auto,
    /// Always top-down (scatter frontier masks along out-edges). Correct
    /// on every view.
    Push,
    /// Always bottom-up (gather neighbor masks into unseen vertices).
    /// Panics on views that are not [`GraphView::is_symmetric`].
    Pull,
}

/// The set of lanes (batch source indices) attached to one vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneSet(u64);

impl LaneSet {
    /// Number of lanes in the set.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether lane `lane` (the source at that index in the batch slice)
    /// is present.
    #[inline]
    pub fn contains(self, lane: usize) -> bool {
        lane < LANES && (self.0 >> lane) & 1 == 1
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Invoke `f` with each lane index, in ascending order.
    #[inline]
    pub fn for_each_lane(self, mut f: impl FnMut(usize)) {
        let mut m = self.0;
        while m != 0 {
            f(m.trailing_zeros() as usize);
            m &= m - 1;
        }
    }

    /// The raw mask (lane `i` ↔ bit `i`).
    #[inline]
    pub fn bits(self) -> u64 {
        self.0
    }
}

/// One BFS level of a batch: the vertices first discovered at exactly
/// [`level`](Wavefront::level) hops, each with the lanes that discovered
/// it. Level 0 is the sources discovering themselves.
#[derive(Debug)]
pub struct Wavefront<'a> {
    level: u32,
    newly: &'a [NodeId],
    masks: &'a [u64],
}

impl Wavefront<'_> {
    /// Hop distance of this level (0 for the sources themselves).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Vertices first discovered at this level, ascending by id.
    pub fn new_vertices(&self) -> &[NodeId] {
        self.newly
    }

    /// Lanes that discovered `v` at this level. Empty for vertices not in
    /// [`new_vertices`](Wavefront::new_vertices).
    pub fn lanes_of(&self, v: NodeId) -> LaneSet {
        LaneSet(self.masks[v.index()])
    }

    /// Total `(source, vertex)` pairs discovered at this level — the sum
    /// of lane counts over the new vertices.
    pub fn new_pairs(&self) -> u64 {
        self.newly
            .iter()
            .map(|v| u64::from(LaneSet(self.masks[v.index()]).count()))
            .sum()
    }

    /// Invoke `f` for every newly discovered vertex with its lanes,
    /// ascending by vertex id.
    pub fn for_each_new(&self, mut f: impl FnMut(NodeId, LaneSet)) {
        for &v in self.newly {
            f(v, LaneSet(self.masks[v.index()]));
        }
    }
}

/// Reusable state for batched multi-source BFS: the three per-vertex mask
/// arrays plus the current frontier vertex list. Like
/// [`crate::TraversalArena`], create once and [`run`](MsBfsArena::run)
/// many times (or borrow a thread-local one via [`with_msbfs`]).
#[derive(Debug, Clone, Default)]
pub struct MsBfsArena {
    seen: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
    front: Vec<NodeId>,
}

impl MsBfsArena {
    /// A fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        MsBfsArena::default()
    }

    /// An arena pre-sized for views of `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        MsBfsArena {
            seen: Vec::with_capacity(n),
            frontier: Vec::with_capacity(n),
            next: Vec::with_capacity(n),
            front: Vec::with_capacity(n),
        }
    }

    /// Run up to [`LANES`] simultaneous BFS traversals with automatic
    /// direction switching, invoking `on_level` with each [`Wavefront`]
    /// in level order (level 0 = the sources, up to and including
    /// `max_depth`). Sources not in the view seed nothing, exactly like
    /// the per-source engine. Returns the total number of
    /// `(source, vertex)` discoveries, self-discoveries included.
    pub fn run<V: GraphView>(
        &mut self,
        view: V,
        sources: &[NodeId],
        max_depth: u32,
        on_level: impl FnMut(&Wavefront<'_>),
    ) -> u64 {
        self.run_with(view, sources, max_depth, Direction::Auto, on_level)
    }

    /// [`run`](MsBfsArena::run) with a forced expansion [`Direction`]
    /// (used by the equivalence tests and benches to exercise both
    /// code paths).
    ///
    /// # Panics
    ///
    /// If `sources` exceeds [`LANES`], or `Direction::Pull` is forced on
    /// an asymmetric view.
    pub fn run_with<V: GraphView>(
        &mut self,
        view: V,
        sources: &[NodeId],
        max_depth: u32,
        direction: Direction,
        mut on_level: impl FnMut(&Wavefront<'_>),
    ) -> u64 {
        assert!(
            sources.len() <= LANES,
            "a batch holds at most {LANES} sources, got {}",
            sources.len()
        );
        assert!(
            direction != Direction::Pull || view.is_symmetric(),
            "bottom-up pull requires a symmetric view"
        );
        let n = view.node_count();
        self.seen.clear();
        self.seen.resize(n, 0);
        self.frontier.clear();
        self.frontier.resize(n, 0);
        self.next.clear();
        self.next.resize(n, 0);

        let mut seeded = 0u64;
        for (lane, &s) in sources.iter().enumerate() {
            if view.contains_node(s) {
                self.next[s.index()] |= 1 << lane;
                seeded |= 1 << lane;
            }
        }
        if seeded == 0 {
            self.front.clear();
            return 0;
        }
        let () = crate::counter!("msbfs.runs");
        let () = crate::histogram!("msbfs.lane_occupancy", u64::from(seeded.count_ones()));

        let pull_ok = view.is_symmetric();
        let MsBfsArena {
            seen,
            frontier,
            next,
            front,
        } = self;
        let mut discovered = 0u64;
        let mut level = 0u32;
        loop {
            // Promote `next` into the frontier: unseen lanes only, and
            // rebuild the frontier vertex list in ascending order.
            front.clear();
            for i in 0..n {
                let m = next[i] & !seen[i];
                next[i] = 0;
                frontier[i] = m;
                if m != 0 {
                    seen[i] |= m;
                    front.push(NodeId(i as u32));
                    discovered += u64::from(m.count_ones());
                }
            }
            if front.is_empty() {
                break;
            }
            let () = crate::counter!("msbfs.levels");
            on_level(&Wavefront {
                level,
                newly: front,
                masks: frontier,
            });
            if level >= max_depth {
                break;
            }
            let pull = match direction {
                Direction::Push => false,
                Direction::Pull => true,
                Direction::Auto => pull_ok && front.len() * PULL_DENSITY > n,
            };
            if pull {
                // Bottom-up: every vertex with undiscovered lanes gathers
                // the frontier masks of its (symmetric) neighbors. The
                // obs arguments below are evaluated only in `obs` builds.
                let () = crate::histogram!(
                    "msbfs.pull_frontier_permille",
                    (front.len() * 1000 / n.max(1)) as u64
                );
                let () = crate::counter!(
                    "msbfs.pull_expansions",
                    (0..n).filter(|&i| seen[i] != seeded).count() as u64
                );
                for i in 0..n {
                    if seen[i] == seeded {
                        continue;
                    }
                    let mut m = 0u64;
                    view.for_each_neighbor(NodeId(i as u32), |v| m |= frontier[v.index()]);
                    next[i] = m;
                }
            } else {
                // Top-down: every frontier vertex scatters its mask
                // across its surviving edges.
                let () = crate::counter!("msbfs.push_expansions", front.len() as u64);
                for &u in front.iter() {
                    let fu = frontier[u.index()];
                    view.for_each_neighbor(u, |v| next[v.index()] |= fu);
                }
            }
            level += 1;
        }
        discovered
    }

    /// Lanes that discovered `v` during the last run (at any level).
    pub fn seen_lanes(&self, v: NodeId) -> LaneSet {
        LaneSet(self.seen[v.index()])
    }

    /// Per-lane discovery totals from the last run: `reach[lane]` =
    /// number of vertices that lane's BFS reached, itself included (0
    /// for lanes whose source was not in the view).
    pub fn lane_reach(&self) -> [u32; LANES] {
        let mut reach = [0u32; LANES];
        for &m in &self.seen {
            let mut bits = m;
            while bits != 0 {
                reach[bits.trailing_zeros() as usize] += 1;
                bits &= bits - 1;
            }
        }
        reach
    }
}

thread_local! {
    static MSBFS_POOL: RefCell<MsBfsArena> = RefCell::new(MsBfsArena::new());
}

/// Borrow this thread's pooled [`MsBfsArena`] — the batched counterpart
/// of [`crate::with_arena`]. Reentrant calls fall back to a fresh arena.
pub fn with_msbfs<R>(f: impl FnOnce(&mut MsBfsArena) -> R) -> R {
    MSBFS_POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => {
            let () = crate::counter!("msbfs.pool.acquire");
            f(&mut arena)
        }
        Err(_) => {
            let () = crate::counter!("msbfs.pool.fresh");
            f(&mut MsBfsArena::new())
        }
    })
}

/// Allocating convenience: per-source distance vectors for up to
/// [`LANES`] sources in one batch (`None` = unreached). Mirrors the
/// shape of [`crate::bfs_distances`] for easy comparison in tests.
pub fn msbfs_distances<V: GraphView>(view: V, sources: &[NodeId]) -> Vec<Vec<Option<u32>>> {
    let n = view.node_count();
    let mut dist = vec![vec![None; n]; sources.len()];
    with_msbfs(|arena| {
        arena.run(&view, sources, u32::MAX, |wf| {
            let level = wf.level();
            wf.for_each_new(|v, lanes| {
                lanes.for_each_lane(|lane| dist[lane][v.index()] = Some(level));
            });
        });
    });
    dist
}

impl crate::Validate for MsBfsArena {
    /// Audit the lane-mask buffers:
    ///
    /// 1. the three per-vertex mask arrays are index-aligned;
    /// 2. every frontier-list vertex is in range and actually carries
    ///    frontier bits;
    /// 3. frontier bits are a subset of the seen bits (a vertex cannot be
    ///    on the wavefront of a lane that has not discovered it).
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("netgraph::MsBfsArena");
        let n = self.seen.len();
        rep.check(
            "msbfs.buffers-aligned",
            self.frontier.len() == n && self.next.len() == n,
            || {
                format!(
                    "seen {} frontier {} next {}",
                    n,
                    self.frontier.len(),
                    self.next.len()
                )
            },
        );
        let in_range = self.front.iter().all(|v| v.index() < n);
        rep.check("msbfs.front-in-range", in_range, || {
            format!("a frontier vertex id is >= {n}")
        });
        if !in_range || self.frontier.len() != n {
            return rep;
        }
        rep.check(
            "msbfs.front-has-bits",
            self.front.iter().all(|v| self.frontier[v.index()] != 0),
            || "a listed frontier vertex has an empty lane mask".into(),
        );
        let subset = (0..n).all(|v| self.frontier[v] & !self.seen[v] == 0);
        rep.check("msbfs.frontier-subset-of-seen", subset, || {
            "a frontier bit is set for a lane that never saw the vertex".into()
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use crate::view::{DominatedView, FullView};
    use crate::NodeSet;

    fn path(n: u32) -> crate::Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn arena_audit_accepts_and_detects_corruption() {
        use crate::Validate;
        assert!(MsBfsArena::new().audit().is_ok());

        // A hand-built mid-wave state: vertex 0 seen+frontier on lane 0.
        let mut arena = MsBfsArena {
            seen: vec![0b1, 0b0, 0b0],
            frontier: vec![0b1, 0, 0],
            next: vec![0, 0, 0],
            front: vec![NodeId(0)],
        };
        assert!(arena.audit().is_ok());

        // Frontier bit on a lane that never discovered the vertex.
        arena.frontier[1] = 0b10;
        arena.front.push(NodeId(1));
        let rep = arena.audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "msbfs.frontier-subset-of-seen"));

        // Listed frontier vertex with an empty mask.
        arena.frontier[1] = 0;
        assert!(arena
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "msbfs.front-has-bits"));

        // Out-of-range frontier vertex short-circuits safely.
        arena.front.push(NodeId(99));
        assert!(arena
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "msbfs.front-in-range"));

        // Misaligned per-vertex buffers.
        arena.next.pop();
        assert!(arena
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "msbfs.buffers-aligned"));
    }

    #[test]
    fn lane_set_basics() {
        let s = LaneSet(0b1010_0001);
        assert_eq!(s.count(), 3);
        assert!(s.contains(0) && s.contains(5) && s.contains(7));
        assert!(!s.contains(1) && !s.contains(64));
        assert!(!s.is_empty());
        let mut lanes = Vec::new();
        s.for_each_lane(|l| lanes.push(l));
        assert_eq!(lanes, vec![0, 5, 7]);
        assert_eq!(s.bits(), 0b1010_0001);
    }

    #[test]
    fn two_sources_on_a_path() {
        let g = path(5);
        let mut levels = Vec::new();
        let total = with_msbfs(|arena| {
            arena.run(FullView::new(&g), &[NodeId(0), NodeId(4)], u32::MAX, |wf| {
                levels.push((wf.level(), wf.new_pairs(), wf.new_vertices().to_vec()));
            })
        });
        // Level 0: both sources; levels 1-2 walk inward; lane fronts meet.
        assert_eq!(total, 10); // each lane reaches all 5 vertices
        assert_eq!(levels[0].0, 0);
        assert_eq!(levels[0].1, 2);
        assert_eq!(levels[1].2, vec![NodeId(1), NodeId(3)]);
        assert_eq!(levels.last().map(|l| l.0), Some(4));
    }

    #[test]
    fn max_depth_bounds_levels() {
        let g = path(6);
        let mut max_level = 0;
        let total = with_msbfs(|arena| {
            arena.run(FullView::new(&g), &[NodeId(0)], 2, |wf| {
                max_level = wf.level();
            })
        });
        assert_eq!(max_level, 2);
        assert_eq!(total, 3); // vertices 0, 1, 2
    }

    #[test]
    fn push_and_pull_agree() {
        let g = path(7);
        let brokers = NodeSet::from_iter_with_capacity(7, [NodeId(2), NodeId(4)]);
        let view = DominatedView::new(&g, &brokers);
        let sources: Vec<NodeId> = g.nodes().collect();
        let mut arena = MsBfsArena::new();
        let mut run = |dir| {
            let mut trace = Vec::new();
            let total = arena.run_with(view, &sources, u32::MAX, dir, |wf| {
                trace.push((wf.level(), wf.new_vertices().to_vec(), wf.new_pairs()));
            });
            (total, trace, arena.lane_reach())
        };
        assert_eq!(run(Direction::Push), run(Direction::Pull));
        assert_eq!(run(Direction::Push), run(Direction::Auto));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn pull_rejects_asymmetric_views() {
        struct OneWay;
        impl GraphView for OneWay {
            fn node_count(&self) -> usize {
                2
            }
            fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
                if u == NodeId(0) {
                    visit(NodeId(1));
                }
            }
        }
        MsBfsArena::new().run_with(OneWay, &[NodeId(0)], u32::MAX, Direction::Pull, |_| {});
    }

    #[test]
    fn excluded_sources_seed_nothing() {
        let g = path(4);
        let mut allowed = NodeSet::full(4);
        allowed.remove(NodeId(0));
        let view = crate::view::InducedView::new(&g, &allowed);
        let dist = msbfs_distances(view, &[NodeId(0), NodeId(1)]);
        assert!(dist[0].iter().all(Option::is_none));
        assert_eq!(dist[1][3], Some(2));
        with_msbfs(|arena| {
            arena.run(view, &[NodeId(0)], u32::MAX, |_| {
                panic!("no wavefront expected");
            });
            assert_eq!(arena.lane_reach(), [0u32; LANES]);
        });
    }

    #[test]
    fn arena_reuse_is_stateless() {
        let ga = path(6);
        let gb = path(3);
        let mut arena = MsBfsArena::new();
        let reach = |arena: &mut MsBfsArena, g| {
            arena.run(FullView::new(g), &[NodeId(0)], u32::MAX, |_| {});
            arena.lane_reach()[0]
        };
        let want = reach(&mut arena, &ga);
        assert_eq!(reach(&mut arena, &gb), 3);
        assert_eq!(reach(&mut arena, &ga), want);
    }

    #[test]
    fn seen_lanes_report_discoverers() {
        let g = path(3);
        with_msbfs(|arena| {
            arena.run(FullView::new(&g), &[NodeId(0), NodeId(2)], 1, |_| {});
            // Middle vertex reached by both lanes within 1 hop.
            let lanes = arena.seen_lanes(NodeId(1));
            assert!(lanes.contains(0) && lanes.contains(1));
            assert_eq!(lanes.count(), 2);
        });
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn oversized_batches_panic() {
        let g = path(2);
        let sources = vec![NodeId(0); LANES + 1];
        MsBfsArena::new().run(FullView::new(&g), &sources, 0, |_| {});
    }
}
