//! Compact binary graph serialization.
//!
//! JSON snapshots of the full 52k-node topology run to hundreds of
//! megabytes; the CSR arrays themselves are a few megabytes of `u32`s.
//! This module provides a little-endian, versioned binary codec for
//! [`Graph`]:
//!
//! ```text
//! magic  "NGR1" (4 bytes)
//! n      u32    vertex count
//! m      u32    undirected edge count
//! edges  m x (u32, u32)   canonical (min, max) pairs, sorted
//! ```

use crate::{Graph, GraphBuilder, NodeId};

const MAGIC: &[u8; 4] = b"NGR1";

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input shorter than the declared contents.
    Truncated,
    /// Bad magic bytes (not an NGR1 blob).
    BadMagic,
    /// An edge referenced a vertex outside `0..n`.
    EdgeOutOfRange {
        /// The offending vertex id.
        id: u32,
        /// Declared vertex count.
        n: u32,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "binary graph blob truncated"),
            CodecError::BadMagic => write!(f, "missing NGR1 magic"),
            CodecError::EdgeOutOfRange { id, n } => {
                write!(f, "edge endpoint {id} out of range for {n} vertices")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a graph into the NGR1 binary format.
pub fn graph_to_bytes(g: &Graph) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + 8 * g.edge_count());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(g.node_count() as u32).to_le_bytes());
    buf.extend_from_slice(&(g.edge_count() as u32).to_le_bytes());
    for (u, v) in g.edges() {
        buf.extend_from_slice(&u.0.to_le_bytes());
        buf.extend_from_slice(&v.0.to_le_bytes());
    }
    buf
}

/// Little-endian `u32` cursor over a byte slice.
struct Cursor<'a> {
    data: &'a [u8],
}

impl Cursor<'_> {
    fn take_u32(&mut self) -> u32 {
        let mut word = [0u8; 4];
        word.copy_from_slice(&self.data[..4]);
        self.data = &self.data[4..];
        u32::from_le_bytes(word)
    }
}

/// Deserialize a graph from the NGR1 binary format.
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn graph_from_bytes(data: &[u8]) -> Result<Graph, CodecError> {
    if data.len() < 12 {
        return Err(CodecError::Truncated);
    }
    if &data[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut cur = Cursor { data: &data[4..] };
    let n = cur.take_u32();
    let m = cur.take_u32();
    if cur.data.len() < 8 * m as usize {
        return Err(CodecError::Truncated);
    }
    let mut b = GraphBuilder::with_capacity(n as usize, m as usize);
    for _ in 0..m {
        let u = cur.take_u32();
        let v = cur.take_u32();
        if u >= n || v >= n {
            return Err(CodecError::EdgeOutOfRange { id: u.max(v), n });
        }
        b.add_edge(NodeId(u), NodeId(v));
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn roundtrip_small() {
        let g = from_edges(
            4,
            [(0, 1), (1, 2), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let bytes = graph_to_bytes(&g);
        assert_eq!(&bytes[..4], b"NGR1");
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn roundtrip_random_and_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = crate::barabasi_albert(500, 3, &mut rng);
        let bytes = graph_to_bytes(&g);
        assert_eq!(bytes.len(), 12 + 8 * g.edge_count());
        let back = graph_from_bytes(&bytes).unwrap();
        assert_eq!(g, back);
        // Tighter than JSON (the gap widens with graph size: fixed 8
        // bytes per edge vs decimal digits + separators per entry).
        let json = serde_json::to_vec(&g).unwrap();
        assert!(
            bytes.len() < json.len(),
            "{} vs {}",
            bytes.len(),
            json.len()
        );
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = from_edges(0, std::iter::empty());
        let back = graph_from_bytes(&graph_to_bytes(&g)).unwrap();
        assert_eq!(g, back);
        let g1 = from_edges(5, std::iter::empty());
        let back = graph_from_bytes(&graph_to_bytes(&g1)).unwrap();
        assert_eq!(g1, back);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert_eq!(graph_from_bytes(b"NGR"), Err(CodecError::Truncated));
        assert_eq!(
            graph_from_bytes(b"XXXX\0\0\0\0\0\0\0\0"),
            Err(CodecError::BadMagic)
        );
        // Declares one edge but provides none.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NGR1");
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        assert_eq!(graph_from_bytes(&buf), Err(CodecError::Truncated));
        // Edge endpoint out of range.
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            graph_from_bytes(&buf),
            Err(CodecError::EdgeOutOfRange { id: 9, n: 2 })
        );
        // Error formatting.
        assert!(CodecError::Truncated.to_string().contains("truncated"));
    }
}
