//! Graph views: zero-cost edge/neighbor filtering for the traversal engine.
//!
//! Every evaluation in the paper is a traversal over a *masked* variant of
//! one underlying topology: the dominated edge set `E_B` for l-hop
//! connectivity (Section 5.2), failure-masked edges for resilience, and
//! direction-constrained state graphs for valley-free routing. A
//! [`GraphView`] abstracts "some graph-shaped thing with filtered
//! adjacency" so each traversal algorithm is written once in
//! [`crate::traverse`] and instantiated per view with no dynamic dispatch:
//! the visitor closure is monomorphized and the filter inlines into the
//! BFS loop.
//!
//! Concrete views over a CSR [`Graph`]:
//!
//! - [`FullView`] — the unfiltered graph.
//! - [`DominatedView`] — an edge survives iff at least one endpoint is a
//!   broker (`E_B = {(u, v) ∈ E : u ∈ B ∨ v ∈ B}`).
//! - [`InducedView`] — the subgraph induced by an allowed vertex set.
//! - [`MaskedView`] — any inner view minus failed vertices and/or failed
//!   (undirected) edges; composes, e.g. `MaskedView` over `DominatedView`
//!   for failover planning.
//!
//! Downstream crates implement [`GraphView`] for their own state spaces —
//! the routing crate's valley-free reachability runs the same engine over
//! a `(vertex, phase)` product graph of `2n` states.

use crate::{Graph, NodeId, NodeSet};
use std::collections::BTreeSet;

/// A graph-shaped adjacency structure the traversal engine can walk.
///
/// Vertices are dense `NodeId`s in `0..node_count()`. Implementations
/// expose adjacency through an internal-iteration visitor so filters
/// compile down to branches inside the caller's loop (no iterator
/// adapters, no allocation).
pub trait GraphView {
    /// Number of vertices (states) in the view.
    fn node_count(&self) -> usize;

    /// Invoke `visit` for every neighbor `v` of `u` that survives the
    /// view's filter. Neighbors are visited in the underlying adjacency
    /// order, which is what makes engine traversals deterministic.
    fn for_each_neighbor(&self, u: NodeId, visit: impl FnMut(NodeId));

    /// Whether `v` exists in the view at all (vertex-level masks).
    ///
    /// Traversals check this for their sources; edge enumeration is
    /// expected to already respect it.
    fn contains_node(&self, v: NodeId) -> bool {
        let _ = v;
        true
    }

    /// Whether adjacency is symmetric: `v ∈ neighbors(u)` iff
    /// `u ∈ neighbors(v)`, so [`for_each_neighbor`] enumerates the
    /// in-neighbors as well as the out-neighbors of its argument.
    ///
    /// Bottom-up (pull) frontier expansion in [`crate::msbfs`] gathers a
    /// vertex's *incoming* wavefront by scanning its neighbor list, which
    /// is only correct under this guarantee. Views over directed state
    /// graphs (e.g. the routing crate's valley-free product graph) must
    /// keep the default `false`; the kernel then stays top-down, which is
    /// always correct.
    ///
    /// [`for_each_neighbor`]: GraphView::for_each_neighbor
    fn is_symmetric(&self) -> bool {
        false
    }
}

impl<V: GraphView> GraphView for &V {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn for_each_neighbor(&self, u: NodeId, visit: impl FnMut(NodeId)) {
        (**self).for_each_neighbor(u, visit);
    }

    fn contains_node(&self, v: NodeId) -> bool {
        (**self).contains_node(v)
    }

    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

/// The unfiltered graph as a [`GraphView`].
#[derive(Debug, Clone, Copy)]
pub struct FullView<'g> {
    g: &'g Graph,
}

impl<'g> FullView<'g> {
    /// View the whole of `g`.
    pub fn new(g: &'g Graph) -> Self {
        FullView { g }
    }
}

impl GraphView for FullView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        for &v in self.g.neighbors(u) {
            visit(v);
        }
    }

    fn is_symmetric(&self) -> bool {
        true // the CSR graph stores undirected edges in both rows
    }
}

/// The dominated edge set `E_B`: an edge survives iff at least one
/// endpoint is in the broker set `B`. Paths in this view are exactly the
/// paper's B-dominating paths (Section 5.2).
#[derive(Debug, Clone, Copy)]
pub struct DominatedView<'a> {
    g: &'a Graph,
    brokers: &'a NodeSet,
}

impl<'a> DominatedView<'a> {
    /// View `g` restricted to edges dominated by `brokers`.
    pub fn new(g: &'a Graph, brokers: &'a NodeSet) -> Self {
        DominatedView { g, brokers }
    }
}

impl GraphView for DominatedView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        let u_is_broker = self.brokers.contains(u);
        for &v in self.g.neighbors(u) {
            if u_is_broker || self.brokers.contains(v) {
                visit(v);
            }
        }
    }

    fn is_symmetric(&self) -> bool {
        true // `u ∈ B ∨ v ∈ B` is symmetric in (u, v)
    }
}

/// The subgraph induced by an allowed vertex set: only edges with both
/// endpoints allowed survive, and disallowed vertices are not valid
/// sources.
#[derive(Debug, Clone, Copy)]
pub struct InducedView<'a> {
    g: &'a Graph,
    allowed: &'a NodeSet,
}

impl<'a> InducedView<'a> {
    /// View the subgraph of `g` induced by `allowed`.
    pub fn new(g: &'a Graph, allowed: &'a NodeSet) -> Self {
        InducedView { g, allowed }
    }
}

impl GraphView for InducedView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        if !self.allowed.contains(u) {
            return;
        }
        for &v in self.g.neighbors(u) {
            if self.allowed.contains(v) {
                visit(v);
            }
        }
    }

    #[inline]
    fn contains_node(&self, v: NodeId) -> bool {
        self.allowed.contains(v)
    }

    fn is_symmetric(&self) -> bool {
        true // both-endpoints-allowed is symmetric in (u, v)
    }
}

/// An inner view minus failed vertices and/or failed undirected edges
/// (keys from [`crate::undirected_key`]). Used for resilience sweeps and
/// edge-disjoint failover planning.
#[derive(Debug, Clone, Copy)]
pub struct MaskedView<'a, V> {
    inner: V,
    failed_nodes: Option<&'a NodeSet>,
    failed_edges: Option<&'a BTreeSet<(u32, u32)>>,
}

impl<'a, V: GraphView> MaskedView<'a, V> {
    /// Mask `inner` by removed vertices and/or removed undirected edges.
    pub fn new(
        inner: V,
        failed_nodes: Option<&'a NodeSet>,
        failed_edges: Option<&'a BTreeSet<(u32, u32)>>,
    ) -> Self {
        MaskedView {
            inner,
            failed_nodes,
            failed_edges,
        }
    }

    /// Mask `inner` by removed undirected edges only.
    pub fn without_edges(inner: V, failed_edges: &'a BTreeSet<(u32, u32)>) -> Self {
        MaskedView::new(inner, None, Some(failed_edges))
    }

    /// Mask `inner` by removed vertices only.
    pub fn without_nodes(inner: V, failed_nodes: &'a NodeSet) -> Self {
        MaskedView::new(inner, Some(failed_nodes), None)
    }
}

impl<V: GraphView> GraphView for MaskedView<'_, V> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        if self.failed_nodes.is_some_and(|f| f.contains(u)) {
            return;
        }
        self.inner.for_each_neighbor(u, |v| {
            if self.failed_nodes.is_some_and(|f| f.contains(v)) {
                return;
            }
            if self
                .failed_edges
                .is_some_and(|f| f.contains(&crate::undirected_key(u, v)))
            {
                return;
            }
            visit(v);
        });
    }

    #[inline]
    fn contains_node(&self, v: NodeId) -> bool {
        self.inner.contains_node(v) && !self.failed_nodes.is_some_and(|f| f.contains(v))
    }

    fn is_symmetric(&self) -> bool {
        // Node and undirected-edge masks preserve symmetry, so the mask
        // is exactly as symmetric as what it wraps.
        self.inner.is_symmetric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn collect<V: GraphView>(view: &V, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        view.for_each_neighbor(u, |v| out.push(v));
        out
    }

    fn diamond() -> Graph {
        // 0-1, 1-2, 2-3, 3-0: a 4-cycle.
        from_edges(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0)].map(|(a, b)| (NodeId(a), NodeId(b))),
        )
    }

    #[test]
    fn full_view_is_transparent() {
        let g = diamond();
        let view = FullView::new(&g);
        assert_eq!(view.node_count(), 4);
        assert_eq!(collect(&view, NodeId(0)), g.neighbors(NodeId(0)).to_vec());
        assert!(view.contains_node(NodeId(3)));
    }

    #[test]
    fn dominated_view_drops_unbrokered_edges() {
        let g = diamond();
        let brokers = NodeSet::from_iter_with_capacity(4, [NodeId(1)]);
        let view = DominatedView::new(&g, &brokers);
        // 0's edges: 0-1 dominated (broker 1), 0-3 not.
        assert_eq!(collect(&view, NodeId(0)), vec![NodeId(1)]);
        // 1 is a broker: both its edges survive.
        assert_eq!(collect(&view, NodeId(1)).len(), 2);
        // 3's edges: 3-2 and 3-0 both undominated.
        assert!(collect(&view, NodeId(3)).is_empty());
    }

    #[test]
    fn induced_view_respects_allowed_set() {
        let g = diamond();
        let mut allowed = NodeSet::full(4);
        allowed.remove(NodeId(2));
        let view = InducedView::new(&g, &allowed);
        assert_eq!(collect(&view, NodeId(1)), vec![NodeId(0)]);
        assert!(collect(&view, NodeId(2)).is_empty());
        assert!(!view.contains_node(NodeId(2)));
        assert!(view.contains_node(NodeId(0)));
    }

    #[test]
    fn masked_view_removes_nodes_and_edges() {
        let g = diamond();
        let mut failed_nodes = NodeSet::new(4);
        failed_nodes.insert(NodeId(2));
        let mut failed_edges = BTreeSet::new();
        failed_edges.insert(crate::undirected_key(NodeId(0), NodeId(1)));
        let view = MaskedView::new(FullView::new(&g), Some(&failed_nodes), Some(&failed_edges));
        // 0: edge to 1 failed, neighbor 3 fine.
        assert_eq!(collect(&view, NodeId(0)), vec![NodeId(3)]);
        // 1: neighbor 0 via failed edge, neighbor 2 is a failed node.
        assert!(collect(&view, NodeId(1)).is_empty());
        // Failed source enumerates nothing.
        assert!(collect(&view, NodeId(2)).is_empty());
        assert!(!view.contains_node(NodeId(2)));
    }

    #[test]
    fn masked_view_composes_with_dominated() {
        let g = diamond();
        let brokers = NodeSet::full(4);
        let mut failed_edges = BTreeSet::new();
        failed_edges.insert(crate::undirected_key(NodeId(1), NodeId(2)));
        let view = MaskedView::without_edges(DominatedView::new(&g, &brokers), &failed_edges);
        assert_eq!(collect(&view, NodeId(1)), vec![NodeId(0)]);
        assert_eq!(collect(&view, NodeId(2)), vec![NodeId(3)]);
    }

    #[test]
    fn view_by_reference_also_implements() {
        let g = diamond();
        let view = FullView::new(&g);
        let by_ref = &view;
        assert_eq!(by_ref.node_count(), 4);
        assert_eq!(collect(&by_ref, NodeId(0)).len(), 2);
        assert!(by_ref.contains_node(NodeId(0)));
    }
}
