//! Deterministic fault injection: serializable failure timelines and the
//! view that masks them.
//!
//! The resilience experiments need richer failure processes than
//! "remove k brokers": link cuts, IXP outages taking every membership
//! edge down at once, correlated regional failures, and churn where
//! elements *recover*. A [`FaultSchedule`] captures such a process as an
//! epochal event timeline — plain data, serializable, replayable — and a
//! [`FaultView`] masks the elements failed at a given epoch so every
//! engine entry point ([`crate::with_arena`], [`crate::with_msbfs`], the
//! [`crate::par`] executor) runs unchanged over the degraded topology.
//!
//! Three target kinds exist:
//!
//! - **Node** — the vertex vanishes: no edge incident to it survives and
//!   it is not a valid traversal source.
//! - **Edge** — one undirected edge (keyed by [`crate::undirected_key`])
//!   vanishes; both endpoints stay up.
//! - **Broker** — a *role* failure: the vertex stays in the graph and
//!   keeps forwarding, but loses whatever supervisory role the caller
//!   assigned it (broker defection, in the paper's terms). [`FaultView`]
//!   deliberately ignores broker failures — interpreting the role is the
//!   broker-set layer's job via [`FaultState::failed_brokers`].
//!
//! [`FaultGroup`]s name correlated element sets ("IXP 17 and its
//! membership edges", "region EU") so one event fails or recovers the
//! whole set atomically.
//!
//! Determinism: a schedule is pure data, [`FaultSchedule::state_at`] is a
//! pure function of it, and every consumer below evaluates epochs as pure
//! functions of the state — which is what makes chaos traces bit-identical
//! across thread counts and serialize/deserialize round trips.

use crate::validate::{AuditReport, Validate};
use crate::view::GraphView;
use crate::{undirected_key, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// What a fault event does to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The target fails (idempotent: failing a failed element is a no-op).
    Fail,
    /// The target recovers (idempotent likewise).
    Recover,
}

/// What a fault event hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// Full vertex outage: masked from the graph entirely.
    Node(NodeId),
    /// One undirected edge, keyed as [`crate::undirected_key`] orders it.
    Edge(u32, u32),
    /// Role failure (broker defection): the vertex stays up; only
    /// [`FaultState::failed_brokers`] records it.
    Broker(NodeId),
    /// Index into [`FaultSchedule::groups`]: every member node and edge
    /// fails/recovers atomically.
    Group(usize),
}

/// One timeline entry: at the start of `epoch`, apply `action` to
/// `target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Epoch the event takes effect (states at this epoch include it).
    pub epoch: u32,
    /// Fail or recover.
    pub action: FaultAction,
    /// The element (or group) hit.
    pub target: FaultTarget,
}

/// A named set of correlated elements that fail and recover together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultGroup {
    /// Human-readable label ("ixp-DE-CIX", "region-EU").
    pub name: String,
    /// Member vertices (full outages).
    pub nodes: Vec<NodeId>,
    /// Member undirected edges, keys normalized per
    /// [`crate::undirected_key`].
    pub edges: Vec<(u32, u32)>,
}

impl FaultGroup {
    /// A group over the given members; edge keys are normalized here.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<NodeId>,
        edges: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Self {
        FaultGroup {
            name: name.into(),
            nodes,
            edges: edges
                .into_iter()
                .map(|(u, v)| undirected_key(u, v))
                .collect(),
        }
    }
}

impl Validate for FaultGroup {
    /// Audit the group against its constructor contract: a non-empty
    /// label and edge keys normalized to `(min, max)` with distinct
    /// endpoints (self-edges cannot exist in the loop-free graphs the
    /// schedule masks).
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("netgraph::FaultGroup");
        rep.check("group.named", !self.name.is_empty(), || {
            "empty group label".into()
        });
        let bad_keys = self.edges.iter().filter(|&&(a, b)| a >= b).count();
        rep.check("group.edge-keys-normalized", bad_keys == 0, || {
            format!("{bad_keys} edge key(s) not strictly (min, max)")
        });
        rep
    }
}

/// A serializable epochal failure timeline over a graph with
/// `node_count` vertices.
///
/// Events are kept sorted by epoch (stable in insertion order within an
/// epoch); the state at epoch `e` is the result of applying every event
/// with `event.epoch <= e` in that order to the all-clear state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    node_count: usize,
    horizon: u32,
    groups: Vec<FaultGroup>,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (one all-clear epoch) over `node_count` vertices.
    pub fn new(node_count: usize) -> Self {
        FaultSchedule {
            node_count,
            horizon: 1,
            groups: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Number of vertices of the graph this schedule applies to.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of epochs to replay: states exist for `0..horizon()`.
    pub fn horizon(&self) -> u32 {
        self.horizon
    }

    /// Extend the horizon to at least `h` epochs (never shrinks — events
    /// always stay inside the horizon).
    pub fn set_horizon(&mut self, h: u32) {
        self.horizon = self.horizon.max(h);
    }

    /// The event timeline, sorted by epoch.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The correlated failure groups events may reference.
    pub fn groups(&self) -> &[FaultGroup] {
        &self.groups
    }

    /// Register a correlated group; returns its index for
    /// [`FaultTarget::Group`] events.
    pub fn add_group(&mut self, group: FaultGroup) -> usize {
        self.groups.push(group);
        self.groups.len() - 1
    }

    /// Insert an event, keeping the timeline sorted by epoch (stable:
    /// same-epoch events apply in insertion order) and the horizon wide
    /// enough to replay it.
    pub fn schedule(&mut self, epoch: u32, action: FaultAction, target: FaultTarget) {
        let at = self.events.partition_point(|e| e.epoch <= epoch);
        self.events.insert(
            at,
            FaultEvent {
                epoch,
                action,
                target,
            },
        );
        self.set_horizon(epoch + 1);
    }

    /// Fail a vertex outright at `epoch`.
    pub fn fail_node(&mut self, epoch: u32, v: NodeId) {
        self.schedule(epoch, FaultAction::Fail, FaultTarget::Node(v));
    }

    /// Recover a failed vertex at `epoch`.
    pub fn recover_node(&mut self, epoch: u32, v: NodeId) {
        self.schedule(epoch, FaultAction::Recover, FaultTarget::Node(v));
    }

    /// Cut the undirected edge `(u, v)` at `epoch`.
    pub fn fail_edge(&mut self, epoch: u32, u: NodeId, v: NodeId) {
        let (a, b) = undirected_key(u, v);
        self.schedule(epoch, FaultAction::Fail, FaultTarget::Edge(a, b));
    }

    /// Restore the undirected edge `(u, v)` at `epoch`.
    pub fn recover_edge(&mut self, epoch: u32, u: NodeId, v: NodeId) {
        let (a, b) = undirected_key(u, v);
        self.schedule(epoch, FaultAction::Recover, FaultTarget::Edge(a, b));
    }

    /// Broker defection at `epoch`: the vertex stays up, the role fails.
    pub fn fail_broker(&mut self, epoch: u32, v: NodeId) {
        self.schedule(epoch, FaultAction::Fail, FaultTarget::Broker(v));
    }

    /// A defected broker rejoins at `epoch`.
    pub fn recover_broker(&mut self, epoch: u32, v: NodeId) {
        self.schedule(epoch, FaultAction::Recover, FaultTarget::Broker(v));
    }

    /// Fail every member of group `g` at `epoch`.
    pub fn fail_group(&mut self, epoch: u32, g: usize) {
        self.schedule(epoch, FaultAction::Fail, FaultTarget::Group(g));
    }

    /// Recover every member of group `g` at `epoch`.
    pub fn recover_group(&mut self, epoch: u32, g: usize) {
        self.schedule(epoch, FaultAction::Recover, FaultTarget::Group(g));
    }

    /// The failed-element state at `epoch`: all events with
    /// `event.epoch <= epoch` applied in timeline order.
    ///
    /// Pure function of the schedule — random access from any thread
    /// yields the same state the incremental [`FaultSchedule::replay`]
    /// passes for that epoch.
    pub fn state_at(&self, epoch: u32) -> FaultState {
        let mut state = FaultState::all_clear(self.node_count);
        for ev in &self.events {
            if ev.epoch > epoch {
                break;
            }
            state.apply(ev, &self.groups);
        }
        state.epoch = epoch;
        state
    }

    /// Replay the timeline incrementally, invoking `f` once per epoch in
    /// `0..horizon()` with the state at that epoch.
    pub fn replay(&self, mut f: impl FnMut(&FaultState)) {
        let mut state = FaultState::all_clear(self.node_count);
        let mut next = 0usize;
        for epoch in 0..self.horizon {
            while next < self.events.len() && self.events[next].epoch <= epoch {
                state.apply(&self.events[next], &self.groups);
                next += 1;
            }
            state.epoch = epoch;
            f(&state);
        }
    }
}

impl Validate for FaultSchedule {
    fn audit(&self) -> AuditReport {
        let mut report = AuditReport::new("FaultSchedule");
        report.check(
            "events sorted by epoch",
            self.events.windows(2).all(|w| w[0].epoch <= w[1].epoch),
            || "timeline out of order (schedule() keeps it sorted)".into(),
        );
        report.check(
            "events inside horizon",
            self.events.iter().all(|e| e.epoch < self.horizon),
            || format!("event past horizon {} would never replay", self.horizon),
        );
        let n = self.node_count as u32;
        let node_ok = |v: NodeId| v.0 < n;
        let edge_ok = |a: u32, b: u32| a <= b && a < n && b < n;
        report.check(
            "event targets in range",
            self.events.iter().all(|e| match e.target {
                FaultTarget::Node(v) | FaultTarget::Broker(v) => node_ok(v),
                FaultTarget::Edge(a, b) => edge_ok(a, b),
                FaultTarget::Group(g) => g < self.groups.len(),
            }),
            || format!("target outside graph of {n} vertices or group table"),
        );
        report.check(
            "group members in range",
            self.groups.iter().all(|g| {
                g.nodes.iter().all(|&v| node_ok(v)) && g.edges.iter().all(|&(a, b)| edge_ok(a, b))
            }),
            || "group member vertex/edge outside the graph or key unnormalized".into(),
        );
        report
    }
}

/// The set of failed elements at one epoch, derived from a
/// [`FaultSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultState {
    epoch: u32,
    failed_nodes: NodeSet,
    failed_edges: BTreeSet<(u32, u32)>,
    failed_brokers: NodeSet,
}

impl FaultState {
    /// The nothing-failed state for a graph of `node_count` vertices.
    pub fn all_clear(node_count: usize) -> Self {
        FaultState {
            epoch: 0,
            failed_nodes: NodeSet::new(node_count),
            failed_edges: BTreeSet::new(),
            failed_brokers: NodeSet::new(node_count),
        }
    }

    /// Epoch this state describes.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Vertices currently down (masked by [`FaultView`]).
    pub fn failed_nodes(&self) -> &NodeSet {
        &self.failed_nodes
    }

    /// Undirected edges currently cut (masked by [`FaultView`]).
    pub fn failed_edges(&self) -> &BTreeSet<(u32, u32)> {
        &self.failed_edges
    }

    /// Vertices whose broker role is currently failed (NOT masked by
    /// [`FaultView`]; the broker-set layer interprets these).
    pub fn failed_brokers(&self) -> &NodeSet {
        &self.failed_brokers
    }

    /// Whether nothing at all is failed.
    pub fn is_clear(&self) -> bool {
        self.failed_nodes.is_empty()
            && self.failed_edges.is_empty()
            && self.failed_brokers.is_empty()
    }

    fn apply(&mut self, ev: &FaultEvent, groups: &[FaultGroup]) {
        let fail = ev.action == FaultAction::Fail;
        match ev.target {
            FaultTarget::Node(v) => {
                set(&mut self.failed_nodes, v, fail);
            }
            FaultTarget::Broker(v) => {
                set(&mut self.failed_brokers, v, fail);
            }
            FaultTarget::Edge(a, b) => {
                if fail {
                    self.failed_edges.insert((a, b));
                } else {
                    self.failed_edges.remove(&(a, b));
                }
            }
            FaultTarget::Group(g) => {
                if let Some(group) = groups.get(g) {
                    for &v in &group.nodes {
                        set(&mut self.failed_nodes, v, fail);
                    }
                    for &e in &group.edges {
                        if fail {
                            self.failed_edges.insert(e);
                        } else {
                            self.failed_edges.remove(&e);
                        }
                    }
                }
            }
        }
    }
}

fn set(s: &mut NodeSet, v: NodeId, on: bool) {
    if on {
        s.insert(v);
    } else {
        s.remove(v);
    }
}

/// An inner view minus the elements failed in a [`FaultState`]: failed
/// vertices vanish (with every incident edge) and cut edges vanish.
/// Broker-role failures are invisible here by design.
///
/// Composes like [`crate::MaskedView`]: wrap a
/// [`crate::DominatedView`] to traverse the degraded dominated edge set,
/// or a [`crate::FullView`] for plain degraded reachability. Masking by
/// vertices and undirected edges preserves adjacency symmetry, so
/// push/pull direction optimization in [`crate::msbfs`] stays valid
/// exactly when it was valid for the inner view.
#[derive(Debug, Clone, Copy)]
pub struct FaultView<'a, V> {
    inner: V,
    state: &'a FaultState,
}

impl<'a, V: GraphView> FaultView<'a, V> {
    /// Mask `inner` by the elements failed in `state`.
    pub fn new(inner: V, state: &'a FaultState) -> Self {
        FaultView { inner, state }
    }
}

impl<V: GraphView> GraphView for FaultView<'_, V> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        if self.state.failed_nodes.contains(u) {
            return;
        }
        let check_edges = !self.state.failed_edges.is_empty();
        self.inner.for_each_neighbor(u, |v| {
            if self.state.failed_nodes.contains(v) {
                return;
            }
            if check_edges && self.state.failed_edges.contains(&undirected_key(u, v)) {
                return;
            }
            visit(v);
        });
    }

    #[inline]
    fn contains_node(&self, v: NodeId) -> bool {
        self.inner.contains_node(v) && !self.state.failed_nodes.contains(v)
    }

    fn is_symmetric(&self) -> bool {
        // Vertex and undirected-edge masks are symmetric in (u, v).
        self.inner.is_symmetric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use crate::view::FullView;
    use crate::Graph;

    fn collect<V: GraphView>(view: &V, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        view.for_each_neighbor(u, |v| out.push(v));
        out
    }

    fn diamond() -> Graph {
        from_edges(
            4,
            [(0, 1), (1, 2), (2, 3), (3, 0)].map(|(a, b)| (NodeId(a), NodeId(b))),
        )
    }

    #[test]
    fn group_audit_accepts_and_detects_corruption() {
        use crate::Validate;
        let good = FaultGroup {
            name: "region-EU".into(),
            nodes: vec![NodeId(1)],
            edges: vec![(0, 1), (1, 2)],
        };
        assert!(good.audit().is_ok());

        let mut bad = good.clone();
        bad.name.clear();
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "group.named"));

        let mut bad = good.clone();
        bad.edges.push((2, 2)); // self-edge: not strictly (min, max)
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "group.edge-keys-normalized"));

        let mut bad = good;
        bad.edges.push((5, 3)); // reversed key
        assert!(!bad.audit().is_ok());
    }

    #[test]
    fn node_outage_masks_vertex_and_incident_edges() {
        let g = diamond();
        let mut sched = FaultSchedule::new(4);
        sched.fail_node(1, NodeId(2));
        let state = sched.state_at(1);
        let view = FaultView::new(FullView::new(&g), &state);
        assert!(!view.contains_node(NodeId(2)));
        assert_eq!(collect(&view, NodeId(1)), vec![NodeId(0)]);
        assert!(collect(&view, NodeId(2)).is_empty());
        assert!(view.is_symmetric());
        // Before the event the view is transparent.
        let clear = sched.state_at(0);
        let view = FaultView::new(FullView::new(&g), &clear);
        assert!(view.contains_node(NodeId(2)));
        assert_eq!(collect(&view, NodeId(1)).len(), 2);
    }

    #[test]
    fn edge_cut_and_recovery() {
        let g = diamond();
        let mut sched = FaultSchedule::new(4);
        sched.fail_edge(1, NodeId(1), NodeId(0));
        sched.recover_edge(3, NodeId(0), NodeId(1));
        let cut = sched.state_at(2);
        let view = FaultView::new(FullView::new(&g), &cut);
        assert_eq!(collect(&view, NodeId(0)), vec![NodeId(3)]);
        assert_eq!(collect(&view, NodeId(1)), vec![NodeId(2)]);
        let back = sched.state_at(3);
        assert!(back.is_clear());
        let view = FaultView::new(FullView::new(&g), &back);
        assert_eq!(collect(&view, NodeId(0)).len(), 2);
    }

    #[test]
    fn broker_defection_does_not_mask_the_graph() {
        let g = diamond();
        let mut sched = FaultSchedule::new(4);
        sched.fail_broker(0, NodeId(1));
        let state = sched.state_at(0);
        assert!(state.failed_brokers().contains(NodeId(1)));
        assert!(!state.is_clear());
        let view = FaultView::new(FullView::new(&g), &state);
        assert!(view.contains_node(NodeId(1)));
        assert_eq!(collect(&view, NodeId(1)).len(), 2);
    }

    #[test]
    fn group_fails_and_recovers_atomically() {
        let g = diamond();
        let mut sched = FaultSchedule::new(4);
        let grp = sched.add_group(FaultGroup::new(
            "corner",
            vec![NodeId(3)],
            [(NodeId(1), NodeId(2))],
        ));
        sched.fail_group(1, grp);
        sched.recover_group(2, grp);
        let down = sched.state_at(1);
        assert!(down.failed_nodes().contains(NodeId(3)));
        assert!(down.failed_edges().contains(&(1, 2)));
        let view = FaultView::new(FullView::new(&g), &down);
        assert!(collect(&view, NodeId(2)).is_empty()); // 2-1 cut, 2-3 node down
        let up = sched.state_at(2);
        assert!(up.is_clear());
        let _ = g;
    }

    #[test]
    fn replay_matches_state_at_every_epoch() {
        let mut sched = FaultSchedule::new(6);
        let grp = sched.add_group(FaultGroup::new(
            "pair",
            vec![NodeId(4), NodeId(5)],
            std::iter::empty(),
        ));
        sched.fail_node(2, NodeId(0));
        sched.fail_broker(1, NodeId(3));
        sched.fail_group(3, grp);
        sched.recover_node(4, NodeId(0));
        sched.recover_group(5, grp);
        sched.set_horizon(7);
        let mut seen = Vec::new();
        sched.replay(|s| seen.push(s.clone()));
        assert_eq!(seen.len(), 7);
        for (e, s) in seen.iter().enumerate() {
            assert_eq!(s.epoch(), e as u32);
            assert_eq!(*s, sched.state_at(e as u32), "epoch {e}");
        }
        // Horizon end: node 0 and the group are back, broker 3 still out.
        let last = &seen[6];
        assert!(last.failed_nodes().is_empty());
        assert!(last.failed_brokers().contains(NodeId(3)));
    }

    #[test]
    fn events_insert_sorted_and_audit_clean() {
        let mut sched = FaultSchedule::new(8);
        sched.fail_node(5, NodeId(1));
        sched.fail_node(1, NodeId(2));
        sched.fail_node(3, NodeId(3));
        let epochs: Vec<u32> = sched.events().iter().map(|e| e.epoch).collect();
        assert_eq!(epochs, vec![1, 3, 5]);
        assert_eq!(sched.horizon(), 6);
        assert!(sched.audit().is_ok());
    }

    #[test]
    fn audit_catches_out_of_range_targets() {
        let mut sched = FaultSchedule::new(3);
        sched.fail_node(0, NodeId(9));
        assert!(!sched.audit().is_ok());
        let mut sched = FaultSchedule::new(3);
        sched.fail_group(0, 0); // no groups registered
        assert!(!sched.audit().is_ok());
        let mut sched = FaultSchedule::new(3);
        sched.fail_edge(0, NodeId(2), NodeId(1)); // normalized by the API
        assert!(sched.audit().is_ok());
    }

    #[test]
    fn serde_round_trip_is_bit_identical() {
        let mut sched = FaultSchedule::new(5);
        let grp = sched.add_group(FaultGroup::new(
            "g0",
            vec![NodeId(4)],
            [(NodeId(3), NodeId(1))],
        ));
        sched.fail_broker(0, NodeId(0));
        sched.fail_group(1, grp);
        sched.fail_edge(2, NodeId(0), NodeId(2));
        sched.recover_group(3, grp);
        sched.set_horizon(5);
        let json = serde_json::to_string(&sched).expect("serialize");
        let back: FaultSchedule = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, sched);
        let json2 = serde_json::to_string(&back).expect("reserialize");
        assert_eq!(json, json2);
        for e in 0..sched.horizon() {
            assert_eq!(back.state_at(e), sched.state_at(e));
        }
    }

    #[test]
    fn fault_view_composes_with_engine_and_msbfs() {
        // Path 0-1-2-3-4; cut 2-3 at epoch 1.
        let g = from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))));
        let mut sched = FaultSchedule::new(5);
        sched.fail_edge(1, NodeId(2), NodeId(3));
        let state = sched.state_at(1);
        let view = FaultView::new(FullView::new(&g), &state);
        let dist = crate::with_arena(|a| {
            a.run(view, NodeId(0));
            (0..5).map(|v| a.distance(NodeId(v))).collect::<Vec<_>>()
        });
        assert_eq!(dist, vec![Some(0), Some(1), Some(2), None, None]);
        let lanes = crate::msbfs_distances(view, &[NodeId(0), NodeId(4)]);
        assert_eq!(lanes[0], dist);
        assert_eq!(lanes[1], vec![None, None, None, Some(1), Some(0)]);
    }
}
