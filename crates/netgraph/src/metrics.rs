//! Structural metrics: betweenness centrality, clustering coefficient,
//! degree-distribution statistics and diameter estimation.
//!
//! Fig. 1 of the paper characterizes the AS-level Internet as a
//! scale-free, layered network with IXPs at core and edge; these metrics
//! are what that characterization is made of, and they also power the
//! betweenness-based selection baseline.

use crate::msbfs::{self, with_msbfs};
use crate::traverse::{with_arena, TraversalArena};
use crate::view::FullView;
use crate::{par, Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Brandes betweenness centrality (unweighted).
///
/// With `sources = None` every vertex seeds a BFS (exact, `O(nm)`);
/// otherwise only the sampled sources do, giving the standard unbiased
/// estimate scaled by `n / |sources|`. Sequential; see
/// [`betweenness_threaded`] for the parallel entry point (identical
/// results by the executor's determinism contract).
pub fn betweenness<R: Rng>(g: &Graph, sources: Option<usize>, rng: &mut R) -> Vec<f64> {
    betweenness_threaded(g, sources, rng, 1)
}

/// [`betweenness`] with the per-source fan-out run on `threads` workers
/// (`0` = all hardware threads) via [`crate::par`]. Bit-identical across
/// thread counts: seeds are chunked at a fixed size and per-chunk partial
/// centrality vectors are merged in chunk-index order.
pub fn betweenness_threaded<R: Rng>(
    g: &Graph,
    sources: Option<usize>,
    rng: &mut R,
    threads: usize,
) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let seeds: Vec<NodeId> = match sources {
        None => g.nodes().collect(),
        Some(s) => {
            let mut all: Vec<NodeId> = g.nodes().collect();
            all.shuffle(rng);
            all.truncate(s.max(1).min(n));
            all
        }
    };
    let scale = n as f64 / seeds.len() as f64;

    // Pool jobs are 'static: the closure owns one CSR clone, shared by
    // every chunk it processes on that worker.
    let g_owned = g.clone();
    let mut centrality = par::map_reduce(
        &seeds,
        par::DEFAULT_CHUNK,
        threads,
        move |chunk| {
            let g = &g_owned;
            let mut centrality = vec![0.0f64; n];
            let mut sigma = vec![0.0f64; n];
            let mut delta = vec![0.0f64; n];
            with_arena(|arena| {
                for &s in chunk {
                    brandes_source(g, s, scale, arena, &mut sigma, &mut delta, &mut centrality);
                }
            });
            centrality
        },
        vec![0.0f64; n],
        |mut acc, part| {
            for (c, p) in acc.iter_mut().zip(part) {
                *c += p;
            }
            acc
        },
    );
    // Undirected graphs count each pair twice.
    centrality.iter_mut().for_each(|c| *c /= 2.0);
    centrality
}

/// One Brandes round: BFS from `s` on the engine arena, path counts in
/// visit order, dependency accumulation in reverse visit order.
fn brandes_source(
    g: &Graph,
    s: NodeId,
    scale: f64,
    arena: &mut TraversalArena,
    sigma: &mut [f64],
    delta: &mut [f64],
    centrality: &mut [f64],
) {
    arena.run(FullView::new(g), s);
    let order = arena.visit_order();
    // Path counts. BFS order guarantees every vertex at distance d - 1 is
    // processed before any at distance d, so `sigma` of all predecessors
    // is final when we read it. Stale values from earlier rounds are never
    // read: predecessors are reached this round, hence assigned below.
    sigma[s.index()] = 1.0;
    for &v in &order[1..] {
        let dv = arena.distance(v).unwrap_or(0);
        let mut sv = 0.0;
        for &u in g.neighbors(v) {
            if arena.distance(u).is_some_and(|du| du + 1 == dv) {
                sv += sigma[u.index()];
            }
        }
        sigma[v.index()] = sv;
    }
    // Dependency accumulation in reverse BFS order.
    for &w in order.iter().rev() {
        let dw = arena.distance(w).unwrap_or(0);
        for &v in g.neighbors(w) {
            if arena.distance(v).is_some_and(|dv| dv + 1 == dw) {
                delta[v.index()] += sigma[v.index()] / sigma[w.index()] * (1.0 + delta[w.index()]);
            }
        }
        if w != s {
            centrality[w.index()] += scale * delta[w.index()];
        }
    }
    // Reset only what this round touched; `delta` accumulates with `+=`.
    for &v in order {
        delta[v.index()] = 0.0;
    }
}

/// Local clustering coefficient of every vertex (triangles over wedges).
pub fn clustering_coefficients(g: &Graph) -> Vec<f64> {
    g.nodes()
        .map(|v| {
            let nb = g.neighbors(v);
            let d = nb.len();
            if d < 2 {
                return 0.0;
            }
            let mut tri = 0usize;
            for (i, &a) in nb.iter().enumerate() {
                for &b in &nb[i + 1..] {
                    if g.has_edge(a, b) {
                        tri += 1;
                    }
                }
            }
            2.0 * tri as f64 / (d * (d - 1)) as f64
        })
        .collect()
}

/// Mean local clustering coefficient.
pub fn mean_clustering(g: &Graph) -> f64 {
    let c = clustering_coefficients(g);
    if c.is_empty() {
        0.0
    } else {
        c.iter().sum::<f64>() / c.len() as f64
    }
}

/// Degree-distribution summary for scale-free characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum, mean and maximum degree.
    pub min: usize,
    /// Mean degree.
    pub mean: f64,
    /// Maximum degree.
    pub max: usize,
    /// Hill estimator of the power-law tail exponent over the top
    /// `tail_count` degrees (α in `P[D > d] ~ d^(-α)`); `None` when the
    /// tail is too short.
    pub tail_exponent: Option<f64>,
    /// Number of samples the Hill estimate used.
    pub tail_count: usize,
}

/// Compute [`DegreeStats`], estimating the tail exponent over the top
/// `tail_fraction` of degrees (e.g. 0.05).
pub fn degree_stats(g: &Graph, tail_fraction: f64) -> DegreeStats {
    let mut degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    if degrees.is_empty() {
        return DegreeStats {
            min: 0,
            mean: 0.0,
            max: 0,
            tail_exponent: None,
            tail_count: 0,
        };
    }
    degrees.sort_unstable();
    let min = degrees[0];
    let max = degrees.last().copied().unwrap_or(min);
    let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    let k = ((degrees.len() as f64 * tail_fraction) as usize).min(degrees.len() - 1);
    let tail_exponent = if k >= 8 {
        // Hill estimator: alpha = k / sum(ln(x_i / x_min_tail)).
        let tail = &degrees[degrees.len() - k..];
        let x_min = tail[0].max(1) as f64;
        let s: f64 = tail.iter().map(|&d| ((d.max(1)) as f64 / x_min).ln()).sum();
        if s > 0.0 {
            Some(k as f64 / s)
        } else {
            None
        }
    } else {
        None
    };
    DegreeStats {
        min,
        mean,
        max,
        tail_exponent,
        tail_count: k,
    }
}

/// Closeness centrality: `(reachable - 1) ² / ((n - 1) · Σ d(v, u))`
/// (Wasserman–Faust normalization, robust to disconnected graphs).
///
/// With `sources = Some(s)` the distance sums are estimated from `s`
/// sampled BFS *targets* — acceptable for ranking, exact when
/// `sources = None`.
pub fn closeness<R: Rng>(g: &Graph, sources: Option<usize>, rng: &mut R) -> Vec<f64> {
    closeness_threaded(g, sources, rng, 1)
}

/// [`closeness`] with the per-target fan-out run on `threads` workers
/// (`0` = all hardware threads) via [`crate::par`]. The per-vertex
/// distance sums are integer-valued, so the chunk-ordered merge is exact
/// and results match the sequential path bit for bit.
pub fn closeness_threaded<R: Rng>(
    g: &Graph,
    sources: Option<usize>,
    rng: &mut R,
    threads: usize,
) -> Vec<f64> {
    let n = g.node_count();
    if n <= 1 {
        return vec![0.0; n];
    }
    // BFS from sampled "targets" accumulates, for every vertex v, the sum
    // of distances target->v — by symmetry that estimates v's distance
    // sum.
    let targets: Vec<NodeId> = match sources {
        None => g.nodes().collect(),
        Some(s) => {
            let mut all: Vec<NodeId> = g.nodes().collect();
            all.shuffle(rng);
            all.truncate(s.max(1).min(n));
            all
        }
    };
    let scale = n as f64 / targets.len() as f64;
    // Pool jobs are 'static: the closure owns one CSR clone.
    let g_owned = g.clone();
    let (dist_sum, reach_cnt) = par::map_reduce(
        &targets,
        par::DEFAULT_CHUNK,
        threads,
        move |chunk| {
            let g = &g_owned;
            let mut dist_sum = vec![0.0f64; n];
            let mut reach_cnt = vec![0u32; n];
            // Each chunk is at most one 64-lane msbfs batch (DEFAULT_CHUNK =
            // LANES); a vertex discovered at `level` by `c` lanes contributes
            // `level` to `c` distance sums at once. The increments are small
            // integers (exact in f64), so grouping lanes cannot change the
            // accumulated bits versus the historical one-BFS-per-target loop.
            with_msbfs(|arena| {
                for batch in chunk.chunks(msbfs::LANES) {
                    arena.run(FullView::new(g), batch, u32::MAX, |wf| {
                        let level = wf.level();
                        if level == 0 {
                            return; // self pairs, excluded
                        }
                        wf.for_each_new(|v, lanes| {
                            let c = lanes.count();
                            dist_sum[v.index()] += f64::from(level * c);
                            reach_cnt[v.index()] += c;
                        });
                    });
                }
            });
            (dist_sum, reach_cnt)
        },
        (vec![0.0f64; n], vec![0u32; n]),
        |(mut ds_acc, mut rc_acc), (ds, rc)| {
            for i in 0..n {
                ds_acc[i] += ds[i];
                rc_acc[i] += rc[i];
            }
            (ds_acc, rc_acc)
        },
    );
    (0..n)
        .map(|v| {
            let sum = dist_sum[v] * scale;
            let reach = (reach_cnt[v] as f64 * scale).min((n - 1) as f64);
            if sum <= 0.0 {
                0.0
            } else {
                (reach * reach) / ((n - 1) as f64 * sum)
            }
        })
        .collect()
}

/// Degree assortativity (Pearson correlation of degrees across edges).
///
/// The Internet is famously *disassortative* (hubs attach to low-degree
/// stubs, r < 0); ER graphs sit near 0. Returns `None` when fewer than
/// two edges or zero variance.
pub fn degree_assortativity(g: &Graph) -> Option<f64> {
    if g.edge_count() < 2 {
        return None;
    }
    // Pearson over the directed edge list (each undirected edge both
    // ways, the standard convention).
    let mut sx = 0.0f64;
    let mut sxx = 0.0f64;
    let mut sxy = 0.0f64;
    let m2 = (2 * g.edge_count()) as f64;
    for (u, v) in g.edges() {
        let (du, dv) = (g.degree(u) as f64, g.degree(v) as f64);
        sx += du + dv;
        sxx += du * du + dv * dv;
        sxy += 2.0 * du * dv;
    }
    let mean = sx / m2;
    let var = sxx / m2 - mean * mean;
    if var <= 1e-15 {
        return None;
    }
    let cov = sxy / m2 - mean * mean;
    Some(cov / var)
}

/// Lower-bound the diameter with double-sweep BFS (exact on trees, very
/// tight on Internet-like graphs). Returns `None` for empty graphs.
pub fn diameter_lower_bound(g: &Graph) -> Option<u32> {
    if g.is_empty() {
        return None;
    }
    with_arena(|arena| {
        // Sweep 1 from vertex 0 (its component).
        arena.run(FullView::new(g), NodeId(0));
        let far = g
            .nodes()
            .filter_map(|v| arena.distance(v).map(|d| (d, v)))
            .max()?
            .1;
        arena.run(FullView::new(g), far);
        g.nodes().filter_map(|v| arena.distance(v)).max()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_graph(n: u32) -> Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn betweenness_path_center() {
        // Path of 5: exact betweenness 0, 3, 4, 3, 0.
        let g = path_graph(5);
        let b = betweenness(&g, None, &mut ChaCha8Rng::seed_from_u64(1));
        let expect = [0.0, 3.0, 4.0, 3.0, 0.0];
        for (i, &e) in expect.iter().enumerate() {
            assert!((b[i] - e).abs() < 1e-9, "vertex {i}: {} vs {e}", b[i]);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn betweenness_star_hub() {
        let g = from_edges(5, (1..5).map(|i| (NodeId(0), NodeId(i))));
        let b = betweenness(&g, None, &mut ChaCha8Rng::seed_from_u64(1));
        // Hub lies on all C(4,2) = 6 pairs.
        assert!((b[0] - 6.0).abs() < 1e-9);
        for leaf in 1..5 {
            assert!(b[leaf].abs() < 1e-9);
        }
    }

    #[test]
    fn betweenness_sampled_close_to_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = crate::barabasi_albert(200, 3, &mut rng);
        let exact = betweenness(&g, None, &mut rng);
        let approx = betweenness(&g, Some(100), &mut rng);
        // Rank agreement on the top vertex.
        let top_exact = exact
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let mut order: Vec<usize> = (0..200).collect();
        order.sort_by(|&a, &b| approx[b].partial_cmp(&approx[a]).unwrap());
        assert!(
            order[..5].contains(&top_exact),
            "sampled betweenness misses the top hub"
        );
    }

    #[test]
    fn clustering_triangle_and_path() {
        let tri = from_edges(
            3,
            [(0, 1), (1, 2), (0, 2)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        assert_eq!(clustering_coefficients(&tri), vec![1.0, 1.0, 1.0]);
        assert!((mean_clustering(&tri) - 1.0).abs() < 1e-12);
        let p = path_graph(3);
        assert_eq!(clustering_coefficients(&p), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn ws_clusters_more_than_er() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let ws = crate::watts_strogatz(300, 3, 0.05, &mut rng);
        let er = crate::erdos_renyi_gnm(300, ws.edge_count(), &mut rng);
        assert!(mean_clustering(&ws) > 3.0 * mean_clustering(&er));
    }

    #[test]
    fn degree_stats_scale_free_tail() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = crate::barabasi_albert(2000, 3, &mut rng);
        let s = degree_stats(&g, 0.05);
        assert_eq!(s.min, 3);
        assert!(s.max > 50);
        let alpha = s.tail_exponent.expect("tail long enough");
        // BA tail exponent (CCDF) is ~2; Hill on finite samples lands
        // loosely around it.
        assert!((1.0..4.0).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn degree_stats_empty_and_tiny() {
        let g = from_edges(0, std::iter::empty());
        let s = degree_stats(&g, 0.1);
        assert_eq!(s.max, 0);
        assert!(s.tail_exponent.is_none());
        let g = path_graph(5);
        assert!(degree_stats(&g, 0.5).tail_exponent.is_none()); // tail < 8
    }

    #[test]
    fn closeness_path_center_and_star() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Path of 5: center is closest to everyone.
        let g = path_graph(5);
        let c = closeness(&g, None, &mut rng);
        assert!(c[2] > c[1] && c[1] > c[0]);
        assert!((c[0] - c[4]).abs() < 1e-12); // symmetry
                                              // Star: hub maximal (closeness 1 under W-F normalization).
        let star = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let cs = closeness(&star, None, &mut rng);
        assert!((cs[0] - 1.0).abs() < 1e-12);
        for leaf in 1..6 {
            assert!(cs[leaf] < cs[0]);
        }
    }

    #[test]
    fn closeness_disconnected_and_trivial() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = from_edges(4, [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        let c = closeness(&g, None, &mut rng);
        // Each pair member reaches 1 of 3 others at distance 1:
        // (1*1)/(3*1) = 1/3.
        for cv in c.iter().take(4) {
            assert!((cv - 1.0 / 3.0).abs() < 1e-12);
        }
        assert_eq!(
            closeness(&from_edges(1, std::iter::empty()), None, &mut rng),
            vec![0.0]
        );
    }

    #[test]
    fn closeness_sampled_ranks_hub_first() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = crate::barabasi_albert(300, 3, &mut rng);
        let exact = closeness(&g, None, &mut rng);
        let approx = closeness(&g, Some(80), &mut rng);
        let top_exact = crate::top_by_score(&exact, 1)[0];
        let top5: Vec<NodeId> = crate::top_by_score(&approx, 5);
        assert!(
            top5.contains(&top_exact),
            "sampled closeness misses the hub"
        );
    }

    #[test]
    fn assortativity_signs() {
        // Star: hubs connect only to leaves -> strongly disassortative.
        let star = from_edges(8, (1..8).map(|i| (NodeId(0), NodeId(i))));
        let r = degree_assortativity(&star).unwrap();
        assert!(r < -0.9, "star assortativity {r}");
        // Regular cycle: zero variance -> None.
        let cyc = from_edges(6, (0..6).map(|i| (NodeId(i), NodeId((i + 1) % 6))));
        assert!(degree_assortativity(&cyc).is_none());
        // Single edge: too few edges.
        let e = from_edges(2, [(NodeId(0), NodeId(1))]);
        assert!(degree_assortativity(&e).is_none());
        // BA graphs trend non-positive.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ba = crate::barabasi_albert(500, 3, &mut rng);
        let r = degree_assortativity(&ba).unwrap();
        assert!(r < 0.1, "BA assortativity {r}");
    }

    #[test]
    fn diameter_path_exact() {
        assert_eq!(diameter_lower_bound(&path_graph(7)), Some(6));
        assert_eq!(
            diameter_lower_bound(&from_edges(0, std::iter::empty())),
            None
        );
        assert_eq!(
            diameter_lower_bound(&from_edges(1, std::iter::empty())),
            Some(0)
        );
    }
}
