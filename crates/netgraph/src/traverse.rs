//! The traversal engine: pooled BFS arenas over [`GraphView`]s.
//!
//! Every traversal in the workspace — plain reachability, B-dominated
//! l-hop evaluation, failure-masked resilience sweeps, valley-free state
//! walks — runs through one kernel: [`TraversalArena`] doing BFS over a
//! [`GraphView`]. Views supply the filtering (see [`crate::view`]); the
//! arena supplies reusable scratch so per-source traversals allocate
//! nothing in steady state.
//!
//! ## Arena reuse contract
//!
//! An arena may be reused across runs, views and graphs of different
//! sizes; every `run_*` method resets it. Results
//! ([`TraversalArena::distance`], [`TraversalArena::parent`],
//! [`TraversalArena::visit_order`]) are valid until the next `run_*`
//! call. Resets are O(1): the visited set is epoch-stamped (one `u32`
//! compare per query) rather than cleared. [`with_arena`] hands out a
//! thread-local pooled arena, so callers in parallel workers get
//! zero-allocation traversals without plumbing scratch through their
//! signatures.
//!
//! Convenience wrappers (allocating, for one-shot use and doctests):
//! [`bfs_distances`], [`bfs_distances_bounded`], [`multi_source_bfs`],
//! [`restricted_bfs_distances`], [`bfs_parents`], [`shortest_path`].

use crate::view::{FullView, GraphView, InducedView};
use crate::{Graph, NodeId, NodeSet};
use std::cell::RefCell;
use std::collections::VecDeque;

/// Reusable BFS scratch: distances, an epoch-stamped visited set, the
/// queue, a parent array and the visit order.
///
/// Repeated traversals (the connectivity evaluator runs thousands) reuse
/// the buffers instead of reallocating per source; see the module docs
/// for the reuse contract.
#[derive(Debug, Clone)]
pub struct TraversalArena {
    dist: Vec<u32>,
    parent: Vec<NodeId>,
    queue: VecDeque<NodeId>,
    order: Vec<NodeId>,
    epoch: u32,
    seen: Vec<u32>,
    track_parents: bool,
}

impl Default for TraversalArena {
    fn default() -> Self {
        TraversalArena::new()
    }
}

impl TraversalArena {
    /// An empty arena; buffers grow to fit the first view traversed.
    pub fn new() -> Self {
        TraversalArena::with_capacity(0)
    }

    /// An arena pre-sized for views with `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        TraversalArena {
            dist: vec![0; n],
            parent: vec![NodeId(0); n],
            queue: VecDeque::new(),
            order: Vec::new(),
            epoch: 0,
            seen: vec![0; n],
            track_parents: false,
        }
    }

    fn begin(&mut self, n: usize, track_parents: bool) {
        let () = crate::counter!("arena.runs");
        if self.seen.len() < n {
            let () = crate::counter!("arena.grow");
            self.dist.resize(n, 0);
            self.parent.resize(n, NodeId(0));
            // New entries carry epoch 0, which never equals the current
            // epoch (it is at least 1 after the bump below).
            self.seen.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: reset the lazily-invalidated `seen` marks.
            let () = crate::counter!("arena.epoch_wrap");
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
        self.order.clear();
        self.track_parents = track_parents;
    }

    #[inline]
    fn mark(&mut self, v: NodeId, d: u32, parent: NodeId) -> bool {
        if self.seen[v.index()] == self.epoch {
            false
        } else {
            self.seen[v.index()] = self.epoch;
            self.dist[v.index()] = d;
            if self.track_parents {
                self.parent[v.index()] = parent;
            }
            self.order.push(v);
            true
        }
    }

    /// Distance of `v` from the last traversal's source(s), if reached.
    ///
    /// Returns `None` for every vertex until the first traversal runs
    /// (epoch 0 is reserved for "never ran").
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        (self.epoch != 0 && self.seen[v.index()] == self.epoch).then(|| self.dist[v.index()])
    }

    /// Predecessor of `v` in the last parent-tracking traversal
    /// ([`TraversalArena::run_parents`] /
    /// [`TraversalArena::run_to_target`]); the source is its own parent.
    /// `None` if `v` was not reached or parents were not tracked.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        (self.track_parents && self.epoch != 0 && self.seen[v.index()] == self.epoch)
            .then(|| self.parent[v.index()])
    }

    /// Vertices of the last traversal in visit (BFS) order, sources
    /// first. Empty until a traversal runs.
    pub fn visit_order(&self) -> &[NodeId] {
        &self.order
    }

    /// BFS over `view` from `src`; afterwards query with
    /// [`TraversalArena::distance`]. Returns the number of reached
    /// vertices (including `src`), or 0 when the view excludes `src`.
    pub fn run<V: GraphView>(&mut self, view: V, src: NodeId) -> usize {
        self.run_bounded(view, src, u32::MAX)
    }

    /// BFS over `view` from `src`, not expanding past `max_depth` hops.
    /// Returns the number of reached vertices (including `src`), or 0
    /// when the view excludes `src`.
    pub fn run_bounded<V: GraphView>(&mut self, view: V, src: NodeId, max_depth: u32) -> usize {
        self.begin(view.node_count(), false);
        if !view.contains_node(src) {
            return 0;
        }
        self.mark(src, 0, src);
        self.queue.push_back(src);
        let mut reached = 1usize;
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du >= max_depth {
                continue;
            }
            view.for_each_neighbor(u, |v| {
                if self.mark(v, du + 1, u) {
                    reached += 1;
                    self.queue.push_back(v);
                }
            });
        }
        reached
    }

    /// Multi-source BFS over `view`; distances are to the nearest source.
    /// Sources the view excludes are skipped. Returns the number of
    /// reached vertices.
    pub fn run_multi<V: GraphView, I: IntoIterator<Item = NodeId>>(
        &mut self,
        view: V,
        sources: I,
    ) -> usize {
        self.begin(view.node_count(), false);
        let mut reached = 0usize;
        for s in sources {
            if view.contains_node(s) && self.mark(s, 0, s) {
                reached += 1;
                self.queue.push_back(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            view.for_each_neighbor(u, |v| {
                if self.mark(v, du + 1, u) {
                    reached += 1;
                    self.queue.push_back(v);
                }
            });
        }
        reached
    }

    /// Full-tree parent-tracking BFS over `view` from `src`; afterwards
    /// query [`TraversalArena::parent`] / [`TraversalArena::path_to`].
    /// Returns the number of reached vertices (0 when the view excludes
    /// `src`).
    pub fn run_parents<V: GraphView>(&mut self, view: V, src: NodeId) -> usize {
        self.begin(view.node_count(), true);
        if !view.contains_node(src) {
            return 0;
        }
        self.mark(src, 0, src);
        self.queue.push_back(src);
        let mut reached = 1usize;
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            view.for_each_neighbor(u, |v| {
                if self.mark(v, du + 1, u) {
                    reached += 1;
                    self.queue.push_back(v);
                }
            });
        }
        reached
    }

    /// Parent-tracking BFS over `view` from `src` that stops as soon as a
    /// vertex satisfying `is_target` is discovered, returning it. The
    /// search stops *at discovery time* (the moment the parent pointer is
    /// set), matching the early-exit point-to-point queries the stitching
    /// layer runs; extract the path with [`TraversalArena::path_to`].
    ///
    /// Returns `None` when no satisfying vertex is reachable (or the view
    /// excludes `src`).
    pub fn run_to_target<V: GraphView, P: Fn(NodeId) -> bool>(
        &mut self,
        view: V,
        src: NodeId,
        is_target: P,
    ) -> Option<NodeId> {
        self.begin(view.node_count(), true);
        if !view.contains_node(src) {
            return None;
        }
        self.mark(src, 0, src);
        if is_target(src) {
            return Some(src);
        }
        self.queue.push_back(src);
        let mut hit: Option<NodeId> = None;
        'bfs: while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            // Internal iteration cannot break out of the closure, so
            // collect the hit and break the outer loop.
            let mut found: Option<NodeId> = None;
            view.for_each_neighbor(u, |v| {
                if found.is_none() && self.mark(v, du + 1, u) {
                    if is_target(v) {
                        found = Some(v);
                    } else {
                        self.queue.push_back(v);
                    }
                }
            });
            if let Some(v) = found {
                hit = Some(v);
                break 'bfs;
            }
        }
        hit
    }

    /// Extract the source → `dst` path from the last parent-tracking
    /// traversal; `None` when `dst` was not reached (or parents were not
    /// tracked).
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        self.parent(dst)?;
        let mut path = vec![dst];
        let mut cur = dst;
        loop {
            let p = self.parent(cur)?;
            if p == cur {
                break; // reached the source (its own parent)
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Histogram of distances from the last run: `hist[d]` = number of
    /// vertices at distance exactly `d` (capped at `max_len` buckets).
    /// O(reached), via the visit order.
    pub fn distance_histogram(&self, max_len: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_len];
        for &v in &self.order {
            let d = self.dist[v.index()] as usize;
            if d < max_len {
                hist[d] += 1;
            }
        }
        hist
    }
}

thread_local! {
    static ARENA_POOL: RefCell<TraversalArena> = RefCell::new(TraversalArena::new());
}

/// Run `f` with this thread's pooled [`TraversalArena`].
///
/// The arena persists for the life of the thread, so repeated calls (and
/// every per-source loop inside `f`) reuse the same buffers — the
/// steady-state zero-allocation path of the engine. Reentrant calls get a
/// fresh temporary arena instead of the pooled one.
pub fn with_arena<R>(f: impl FnOnce(&mut TraversalArena) -> R) -> R {
    ARENA_POOL.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => {
            let () = crate::counter!("arena.pool.acquire");
            f(&mut arena)
        }
        Err(_) => {
            let () = crate::counter!("arena.pool.fresh");
            f(&mut TraversalArena::new())
        }
    })
}

/// Single-source hop distances; `None` for unreachable vertices.
///
/// ```
/// use netgraph::{graph::from_edges, NodeId, bfs_distances};
/// let g = from_edges(4, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let d = bfs_distances(&g, NodeId(0));
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run(FullView::new(g), src);
        g.nodes().map(|v| arena.distance(v)).collect()
    })
}

/// Like [`bfs_distances`] but not expanding past `max_depth` hops.
pub fn bfs_distances_bounded(g: &Graph, src: NodeId, max_depth: u32) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run_bounded(FullView::new(g), src, max_depth);
        g.nodes().map(|v| arena.distance(v)).collect()
    })
}

/// Hop distance to the nearest of `sources`; `None` if unreachable.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run_multi(FullView::new(g), sources.iter().copied());
        g.nodes().map(|v| arena.distance(v)).collect()
    })
}

/// Hop distances from `src` along paths confined to `allowed`.
///
/// This is the building block of the l-hop E2E connectivity evaluation:
/// with `allowed = B ∪ N(B)` every path found is a B-dominated path.
pub fn restricted_bfs_distances(g: &Graph, src: NodeId, allowed: &NodeSet) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run(InducedView::new(g, allowed), src);
        g.nodes().map(|v| arena.distance(v)).collect()
    })
}

/// BFS parent tree from `src`: `parent[v]` is the predecessor of `v` on
/// one shortest path from `src`; `parent[src] = Some(src)`; `None` means
/// unreachable.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    with_arena(|arena| {
        arena.run_parents(FullView::new(g), src);
        g.nodes().map(|v| arena.parent(v)).collect()
    })
}

/// One shortest path from `src` to `dst` (inclusive of both endpoints), or
/// `None` if `dst` is unreachable.
///
/// ```
/// use netgraph::{graph::from_edges, NodeId, shortest_path};
/// let g = from_edges(4, [(0, 1), (1, 2), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
/// assert_eq!(p, [0, 1, 2, 3].map(NodeId).to_vec());
/// ```
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    with_arena(|arena| {
        arena.run_parents(FullView::new(g), src);
        arena.path_to(dst)
    })
}

/// Extract the `src -> dst` path out of a parent tree produced by
/// [`bfs_parents`] (or any compatible tree).
pub fn path_from_parents(
    parent: &[Option<NodeId>],
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    parent[dst.index()]?;
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        // A broken chain means the tree does not actually reach `src`;
        // report "no path" instead of panicking in library code.
        let p = parent[cur.index()]?;
        debug_assert_ne!(p, cur, "non-source vertex is its own parent");
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

impl crate::Validate for TraversalArena {
    /// Re-derive the arena's epoch-stamping invariants:
    ///
    /// 1. the three per-vertex buffers are index-aligned;
    /// 2. a never-run arena (epoch 0) has an empty visit order;
    /// 3. every vertex in the visit order is in range and stamped with
    ///    the current epoch, and *only* those vertices are — the stamp
    ///    count equals the order length (so there are no duplicates and
    ///    no unlisted visited vertices);
    /// 4. distances along the visit order are non-decreasing (BFS order).
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("netgraph::TraversalArena");
        let n = self.seen.len();
        rep.check(
            "arena.buffers-aligned",
            self.dist.len() == n && self.parent.len() == n,
            || {
                format!(
                    "seen {} dist {} parent {}",
                    n,
                    self.dist.len(),
                    self.parent.len()
                )
            },
        );
        rep.check(
            "arena.epoch-zero-fresh",
            self.epoch != 0 || self.order.is_empty(),
            || format!("epoch 0 but visit order has {} entries", self.order.len()),
        );
        let in_range = self.order.iter().all(|v| v.index() < n);
        rep.check("arena.order-in-range", in_range, || {
            format!("a visited vertex id is >= {n}")
        });
        if !in_range || self.dist.len() != n {
            return rep;
        }
        rep.check(
            "arena.order-stamped",
            self.order
                .iter()
                .all(|v| self.seen[v.index()] == self.epoch),
            || "a vertex in the visit order lacks the current epoch stamp".into(),
        );
        if self.epoch != 0 {
            let stamped = self.seen.iter().filter(|&&s| s == self.epoch).count();
            rep.check("arena.stamp-count", stamped == self.order.len(), || {
                format!(
                    "{} vertices stamped, {} in the visit order",
                    stamped,
                    self.order.len()
                )
            });
        }
        let monotone = self
            .order
            .windows(2)
            .all(|w| self.dist[w[0].index()] <= self.dist[w[1].index()]);
        rep.check("arena.order-bfs-monotone", monotone, || {
            "visit order distances decrease somewhere".into()
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;
    use crate::view::DominatedView;

    fn path_graph(n: u32) -> Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, (0..5).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn unreachable_is_none() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        let d = bfs_distances(&g, NodeId(2));
        assert_eq!(d, vec![None, None, Some(0)]);
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = path_graph(10);
        let d = bfs_distances_bounded(&g, NodeId(0), 3);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = path_graph(7);
        let d = multi_source_bfs(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
        assert_eq!(d[0], Some(0));
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = path_graph(3);
        let d = multi_source_bfs(&g, &[]);
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn restricted_bfs_respects_mask() {
        // 0-1-2-3-4 plus shortcut 0-4; mask forbids the shortcut's far end
        // middle: allowed = {0, 1, 2, 3, 4} minus {2}.
        let mut edges: Vec<(NodeId, NodeId)> = (0..4).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        edges.push((NodeId(0), NodeId(4)));
        let g = from_edges(5, edges);
        let mut allowed = NodeSet::full(5);
        allowed.remove(NodeId(2));
        let d = restricted_bfs_distances(&g, NodeId(0), &allowed);
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None); // masked out
        assert_eq!(d[4], Some(1)); // via shortcut
        assert_eq!(d[3], Some(2)); // 0-4-3
    }

    #[test]
    fn restricted_bfs_source_not_allowed() {
        let g = path_graph(3);
        let allowed = NodeSet::new(3);
        let mut arena = TraversalArena::new();
        assert_eq!(arena.run(InducedView::new(&g, &allowed), NodeId(0)), 0);
        assert_eq!(arena.distance(NodeId(0)), None);
    }

    #[test]
    fn parents_and_path_extraction() {
        let g = path_graph(4);
        let p = bfs_parents(&g, NodeId(0));
        assert_eq!(p[0], Some(NodeId(0)));
        assert_eq!(p[3], Some(NodeId(2)));
        let path = path_from_parents(&p, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(
            shortest_path(&g, NodeId(0), NodeId(0)).unwrap(),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = from_edges(4, [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert!(shortest_path(&g, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn fresh_arena_reports_nothing() {
        let g = path_graph(3);
        let arena = TraversalArena::with_capacity(3);
        for v in 0..3 {
            assert_eq!(
                arena.distance(NodeId(v)),
                None,
                "unran arena leaked a distance"
            );
            assert_eq!(arena.parent(NodeId(v)), None);
        }
        assert_eq!(arena.distance_histogram(4), vec![0, 0, 0, 0]);
        assert!(arena.visit_order().is_empty());
        let _ = g;
    }

    #[test]
    fn arena_scratch_reuse_across_sources() {
        let g = path_graph(6);
        let mut arena = TraversalArena::with_capacity(6);
        arena.run(FullView::new(&g), NodeId(0));
        assert_eq!(arena.distance(NodeId(5)), Some(5));
        arena.run(FullView::new(&g), NodeId(5));
        assert_eq!(arena.distance(NodeId(5)), Some(0));
        assert_eq!(arena.distance(NodeId(0)), Some(5));
    }

    #[test]
    fn arena_grows_across_graphs() {
        let small = path_graph(3);
        let big = path_graph(20);
        let mut arena = TraversalArena::new(); // zero capacity
        assert_eq!(arena.run(FullView::new(&small), NodeId(0)), 3);
        assert_eq!(arena.run(FullView::new(&big), NodeId(0)), 20);
        assert_eq!(arena.distance(NodeId(19)), Some(19));
        // Back to the small graph: stale big-graph marks must not leak.
        assert_eq!(arena.run(FullView::new(&small), NodeId(2)), 3);
        assert_eq!(arena.distance(NodeId(2)), Some(0));
    }

    #[test]
    fn distance_histogram_counts() {
        let g = path_graph(5);
        let mut arena = TraversalArena::with_capacity(5);
        arena.run(FullView::new(&g), NodeId(0));
        let h = arena.distance_histogram(6);
        assert_eq!(h, vec![1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn reached_counts() {
        let g = from_edges(5, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        let mut arena = TraversalArena::with_capacity(5);
        assert_eq!(arena.run(FullView::new(&g), NodeId(0)), 3);
        assert_eq!(arena.run_bounded(FullView::new(&g), NodeId(0), 1), 2);
        assert_eq!(
            arena.run_multi(FullView::new(&g), [NodeId(3), NodeId(4)]),
            2
        );
    }

    #[test]
    fn visit_order_is_bfs_order() {
        let g = path_graph(4);
        let mut arena = TraversalArena::new();
        arena.run(FullView::new(&g), NodeId(0));
        assert_eq!(
            arena.visit_order(),
            &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn run_to_target_early_exit_and_path() {
        let g = path_graph(6);
        let mut arena = TraversalArena::new();
        let hit = arena.run_to_target(FullView::new(&g), NodeId(0), |v| v == NodeId(3));
        assert_eq!(hit, Some(NodeId(3)));
        assert_eq!(
            arena.path_to(NodeId(3)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        // Vertices past the target were never discovered.
        assert_eq!(arena.distance(NodeId(5)), None);
        // Source satisfying the predicate short-circuits.
        assert_eq!(
            arena.run_to_target(FullView::new(&g), NodeId(2), |v| v == NodeId(2)),
            Some(NodeId(2))
        );
        assert_eq!(arena.path_to(NodeId(2)).unwrap(), vec![NodeId(2)]);
        // Unreachable target.
        let g2 = from_edges(3, [(NodeId(0), NodeId(1))]);
        assert_eq!(
            arena.run_to_target(FullView::new(&g2), NodeId(0), |v| v == NodeId(2)),
            None
        );
    }

    #[test]
    fn dominated_traversal_via_view() {
        // 0-1-2-3, B = {1}: from 0 reach {0, 1, 2}.
        let g = path_graph(4);
        let brokers = NodeSet::from_iter_with_capacity(4, [NodeId(1)]);
        let mut arena = TraversalArena::new();
        assert_eq!(arena.run(DominatedView::new(&g, &brokers), NodeId(0)), 3);
        assert_eq!(arena.distance(NodeId(3)), None);
    }

    #[test]
    fn pooled_arena_round_trips() {
        let g = path_graph(5);
        let a = with_arena(|arena| arena.run(FullView::new(&g), NodeId(0)));
        let b = with_arena(|arena| arena.run(FullView::new(&g), NodeId(4)));
        assert_eq!(a, 5);
        assert_eq!(b, 5);
        // Reentrant use falls back to a temporary arena, no panic.
        let nested = with_arena(|outer| {
            outer.run(FullView::new(&g), NodeId(0));
            with_arena(|inner| inner.run(FullView::new(&g), NodeId(1)))
        });
        assert_eq!(nested, 5);
    }

    #[test]
    fn arena_audit_accepts_and_detects_corruption() {
        use crate::Validate;
        let g = path_graph(6);
        let mut arena = TraversalArena::new();
        assert!(arena.audit().is_ok(), "fresh arena must pass");
        arena.run(FullView::new(&g), NodeId(0));
        assert!(arena.audit().is_ok(), "{}", arena.audit());

        // Smuggle a vertex into the order without stamping it.
        let mut bad = arena.clone();
        bad.seen[3] = bad.epoch.wrapping_sub(1);
        let rep = bad.audit();
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "arena.order-stamped"
                    || f.invariant == "arena.stamp-count"),
            "{rep}"
        );

        // Break BFS monotonicity by swapping two distances.
        let mut bad = arena.clone();
        bad.dist[0] = 9;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "arena.order-bfs-monotone"));

        // Misalign the buffers.
        let mut bad = arena.clone();
        bad.dist.push(0);
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "arena.buffers-aligned"));
    }
}
