//! Breadth-first traversal in the flavours the paper's evaluation needs.
//!
//! - [`bfs_distances`] — plain single-source hop distances.
//! - [`bfs_distances_bounded`] — stop past a hop budget (used by the
//!   (α, β) estimator).
//! - [`multi_source_bfs`] — distances to the nearest of a set of sources.
//! - [`restricted_bfs_distances`] — BFS that never leaves an induced
//!   subgraph; this realizes the paper's `B_A · A` masked-adjacency
//!   operator (Section 5.2) without materializing matrix powers: a path
//!   confined to `B ∪ N(B)` is exactly a B-dominated path.
//! - [`bfs_parents`] / [`shortest_path`] — parent trees and path
//!   extraction for Algorithm 2's broker stitching.

use crate::{Graph, NodeId, NodeSet};
use std::collections::VecDeque;

/// Reusable BFS scratch space.
///
/// Repeated traversals (the connectivity evaluator runs thousands) reuse
/// the queue and distance buffers instead of reallocating per source.
#[derive(Debug, Clone)]
pub struct Bfs {
    dist: Vec<u32>,
    queue: VecDeque<NodeId>,
    epoch: u32,
    seen: Vec<u32>,
}

impl Bfs {
    /// Scratch space for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        Bfs {
            dist: vec![0; n],
            queue: VecDeque::new(),
            epoch: 0,
            seen: vec![0; n],
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: reset the lazily-invalidated `seen` marks.
            self.seen.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn mark(&mut self, v: NodeId, d: u32) -> bool {
        if self.seen[v.index()] == self.epoch {
            false
        } else {
            self.seen[v.index()] = self.epoch;
            self.dist[v.index()] = d;
            true
        }
    }

    /// Distance of `v` from the last traversal's source(s), if reached.
    ///
    /// Returns `None` for every vertex until the first traversal runs
    /// (epoch 0 is reserved for "never ran").
    #[inline]
    pub fn distance(&self, v: NodeId) -> Option<u32> {
        (self.epoch != 0 && self.seen[v.index()] == self.epoch).then(|| self.dist[v.index()])
    }

    /// Run BFS from `src`; afterwards query with [`Bfs::distance`].
    /// Returns the number of reached vertices (including `src`).
    pub fn run(&mut self, g: &Graph, src: NodeId) -> usize {
        self.run_bounded(g, src, u32::MAX)
    }

    /// BFS from `src`, not expanding past `max_depth` hops.
    /// Returns the number of reached vertices (including `src`).
    pub fn run_bounded(&mut self, g: &Graph, src: NodeId, max_depth: u32) -> usize {
        self.begin();
        self.mark(src, 0);
        self.queue.push_back(src);
        let mut reached = 1usize;
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du >= max_depth {
                continue;
            }
            for &v in g.neighbors(u) {
                if self.mark(v, du + 1) {
                    reached += 1;
                    self.queue.push_back(v);
                }
            }
        }
        reached
    }

    /// BFS from `src` that only visits vertices in `allowed`.
    ///
    /// `src` itself must be in `allowed`; otherwise nothing is reached and
    /// `0` is returned. Returns the number of reached vertices.
    pub fn run_restricted(
        &mut self,
        g: &Graph,
        src: NodeId,
        allowed: &NodeSet,
        max_depth: u32,
    ) -> usize {
        self.begin();
        if !allowed.contains(src) {
            return 0;
        }
        self.mark(src, 0);
        self.queue.push_back(src);
        let mut reached = 1usize;
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            if du >= max_depth {
                continue;
            }
            for &v in g.neighbors(u) {
                if allowed.contains(v) && self.mark(v, du + 1) {
                    reached += 1;
                    self.queue.push_back(v);
                }
            }
        }
        reached
    }

    /// Multi-source BFS; distances are to the nearest source.
    /// Returns the number of reached vertices.
    pub fn run_multi<I: IntoIterator<Item = NodeId>>(&mut self, g: &Graph, sources: I) -> usize {
        self.begin();
        let mut reached = 0usize;
        for s in sources {
            if self.mark(s, 0) {
                reached += 1;
                self.queue.push_back(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u.index()];
            for &v in g.neighbors(u) {
                if self.mark(v, du + 1) {
                    reached += 1;
                    self.queue.push_back(v);
                }
            }
        }
        reached
    }

    /// Histogram of distances from the last run: `hist[d]` = number of
    /// vertices at distance exactly `d` (capped at `max_len` buckets).
    pub fn distance_histogram(&self, max_len: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_len];
        if self.epoch == 0 {
            return hist; // no traversal has run yet
        }
        for v in 0..self.dist.len() {
            if self.seen[v] == self.epoch {
                let d = self.dist[v] as usize;
                if d < max_len {
                    hist[d] += 1;
                }
            }
        }
        hist
    }
}

/// Single-source hop distances; `None` for unreachable vertices.
///
/// ```
/// use netgraph::{graph::from_edges, NodeId, bfs_distances};
/// let g = from_edges(4, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let d = bfs_distances(&g, NodeId(0));
/// assert_eq!(d, vec![Some(0), Some(1), Some(2), None]);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let mut bfs = Bfs::new(g.node_count());
    bfs.run(g, src);
    g.nodes().map(|v| bfs.distance(v)).collect()
}

/// Like [`bfs_distances`] but not expanding past `max_depth` hops.
pub fn bfs_distances_bounded(g: &Graph, src: NodeId, max_depth: u32) -> Vec<Option<u32>> {
    let mut bfs = Bfs::new(g.node_count());
    bfs.run_bounded(g, src, max_depth);
    g.nodes().map(|v| bfs.distance(v)).collect()
}

/// Hop distance to the nearest of `sources`; `None` if unreachable.
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<Option<u32>> {
    let mut bfs = Bfs::new(g.node_count());
    bfs.run_multi(g, sources.iter().copied());
    g.nodes().map(|v| bfs.distance(v)).collect()
}

/// Hop distances from `src` along paths confined to `allowed`.
///
/// This is the building block of the l-hop E2E connectivity evaluation:
/// with `allowed = B ∪ N(B)` every path found is a B-dominated path.
pub fn restricted_bfs_distances(g: &Graph, src: NodeId, allowed: &NodeSet) -> Vec<Option<u32>> {
    let mut bfs = Bfs::new(g.node_count());
    bfs.run_restricted(g, src, allowed, u32::MAX);
    g.nodes().map(|v| bfs.distance(v)).collect()
}

/// BFS parent tree from `src`: `parent[v]` is the predecessor of `v` on
/// one shortest path from `src`; `parent[src] = Some(src)`; `None` means
/// unreachable.
pub fn bfs_parents(g: &Graph, src: NodeId) -> Vec<Option<NodeId>> {
    let n = g.node_count();
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = VecDeque::new();
    parent[src.index()] = Some(src);
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if parent[v.index()].is_none() {
                parent[v.index()] = Some(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// One shortest path from `src` to `dst` (inclusive of both endpoints), or
/// `None` if `dst` is unreachable.
///
/// ```
/// use netgraph::{graph::from_edges, NodeId, shortest_path};
/// let g = from_edges(4, [(0, 1), (1, 2), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let p = shortest_path(&g, NodeId(0), NodeId(3)).unwrap();
/// assert_eq!(p, [0, 1, 2, 3].map(NodeId).to_vec());
/// ```
pub fn shortest_path(g: &Graph, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    let parent = bfs_parents(g, src);
    path_from_parents(&parent, src, dst)
}

/// Extract the `src -> dst` path out of a parent tree produced by
/// [`bfs_parents`] (or any compatible tree).
pub fn path_from_parents(
    parent: &[Option<NodeId>],
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    parent[dst.index()]?;
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        // A broken chain means the tree does not actually reach `src`;
        // report "no path" instead of panicking in library code.
        let p = parent[cur.index()]?;
        debug_assert_ne!(p, cur, "non-source vertex is its own parent");
        path.push(p);
        cur = p;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn path_graph(n: u32) -> Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn distances_on_path() {
        let g = path_graph(5);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, (0..5).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn unreachable_is_none() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        let d = bfs_distances(&g, NodeId(2));
        assert_eq!(d, vec![None, None, Some(0)]);
    }

    #[test]
    fn bounded_bfs_stops() {
        let g = path_graph(10);
        let d = bfs_distances_bounded(&g, NodeId(0), 3);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[4], None);
    }

    #[test]
    fn multi_source_takes_nearest() {
        let g = path_graph(7);
        let d = multi_source_bfs(&g, &[NodeId(0), NodeId(6)]);
        assert_eq!(d[3], Some(3));
        assert_eq!(d[5], Some(1));
        assert_eq!(d[0], Some(0));
    }

    #[test]
    fn multi_source_empty_sources() {
        let g = path_graph(3);
        let d = multi_source_bfs(&g, &[]);
        assert!(d.iter().all(Option::is_none));
    }

    #[test]
    fn restricted_bfs_respects_mask() {
        // 0-1-2-3-4 plus shortcut 0-4; mask forbids the shortcut's far end
        // middle: allowed = {0, 1, 2, 3, 4} minus {2}.
        let mut edges: Vec<(NodeId, NodeId)> = (0..4).map(|i| (NodeId(i), NodeId(i + 1))).collect();
        edges.push((NodeId(0), NodeId(4)));
        let g = from_edges(5, edges);
        let mut allowed = NodeSet::full(5);
        allowed.remove(NodeId(2));
        let d = restricted_bfs_distances(&g, NodeId(0), &allowed);
        assert_eq!(d[1], Some(1));
        assert_eq!(d[2], None); // masked out
        assert_eq!(d[4], Some(1)); // via shortcut
        assert_eq!(d[3], Some(2)); // 0-4-3
    }

    #[test]
    fn restricted_bfs_source_not_allowed() {
        let g = path_graph(3);
        let allowed = NodeSet::new(3);
        let mut bfs = Bfs::new(3);
        assert_eq!(bfs.run_restricted(&g, NodeId(0), &allowed, u32::MAX), 0);
        assert_eq!(bfs.distance(NodeId(0)), None);
    }

    #[test]
    fn parents_and_path_extraction() {
        let g = path_graph(4);
        let p = bfs_parents(&g, NodeId(0));
        assert_eq!(p[0], Some(NodeId(0)));
        assert_eq!(p[3], Some(NodeId(2)));
        let path = path_from_parents(&p, NodeId(0), NodeId(3)).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(
            shortest_path(&g, NodeId(0), NodeId(0)).unwrap(),
            vec![NodeId(0)]
        );
    }

    #[test]
    fn shortest_path_unreachable() {
        let g = from_edges(4, [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert!(shortest_path(&g, NodeId(0), NodeId(3)).is_none());
    }

    #[test]
    fn fresh_bfs_reports_nothing() {
        let g = path_graph(3);
        let bfs = Bfs::new(3);
        for v in 0..3 {
            assert_eq!(bfs.distance(NodeId(v)), None, "unran Bfs leaked a distance");
        }
        assert_eq!(bfs.distance_histogram(4), vec![0, 0, 0, 0]);
        let _ = g;
    }

    #[test]
    fn bfs_scratch_reuse_across_sources() {
        let g = path_graph(6);
        let mut bfs = Bfs::new(6);
        bfs.run(&g, NodeId(0));
        assert_eq!(bfs.distance(NodeId(5)), Some(5));
        bfs.run(&g, NodeId(5));
        assert_eq!(bfs.distance(NodeId(5)), Some(0));
        assert_eq!(bfs.distance(NodeId(0)), Some(5));
    }

    #[test]
    fn distance_histogram_counts() {
        let g = path_graph(5);
        let mut bfs = Bfs::new(5);
        bfs.run(&g, NodeId(0));
        let h = bfs.distance_histogram(6);
        assert_eq!(h, vec![1, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn reached_counts() {
        let g = from_edges(5, [(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        let mut bfs = Bfs::new(5);
        assert_eq!(bfs.run(&g, NodeId(0)), 3);
        assert_eq!(bfs.run_bounded(&g, NodeId(0), 1), 2);
        assert_eq!(bfs.run_multi(&g, [NodeId(3), NodeId(4)]), 2);
    }
}
