//! Connected components and a weighted-union union-find.
//!
//! The MaxSubGraph-Greedy heuristic (Algorithm 3 of the paper) needs to
//! track "size of the maximum connected subgraph of the dominated set" as
//! vertices are added one at a time — incremental connectivity is exactly
//! what [`UnionFind`] provides. The saturated E2E connectivity metric is a
//! straight function of component sizes.

use crate::view::GraphView;
use crate::{Graph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};

/// Union-find (disjoint set union) with path halving and union by size.
///
/// ```
/// use netgraph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_size(0), 2);
/// uf.union(1, 3);
/// assert_eq!(uf.largest_component(), 4);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
    largest: u32,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
            largest: if n == 0 { 0 } else { 1 },
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s component. Path-halving, amortized ~O(α(n)).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merge the components of `a` and `b`; returns `true` if they were
    /// previously separate.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.largest = self.largest.max(self.size[ra]);
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same component.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the component containing `x`.
    pub fn component_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Size of the largest component (1 for a fresh non-empty structure).
    pub fn largest_component(&self) -> usize {
        self.largest as usize
    }
}

/// Result of a full connected-components decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Components {
    /// `label[v]` = component index of vertex `v`, in `0..count`.
    pub label: Vec<u32>,
    /// `sizes[c]` = number of vertices in component `c`; descending order
    /// is *not* guaranteed — use [`Components::giant`] for the largest.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Index and size of the largest component.
    ///
    /// Returns `None` for an empty graph.
    pub fn giant(&self) -> Option<(usize, usize)> {
        self.sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, s)| *s)
            .map(|(i, &s)| (i, s))
    }

    /// Number of ordered pairs `(u, v)`, `u != v`, that lie in the same
    /// component. This is the numerator of the paper's *saturated E2E
    /// connectivity*.
    pub fn connected_ordered_pairs(&self) -> u64 {
        self.sizes
            .iter()
            .map(|&s| (s as u64) * (s as u64 - 1))
            .sum()
    }

    /// Members of component `c`.
    pub fn members(&self, c: usize) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l as usize == c)
            .map(|(v, _)| NodeId::from(v))
            .collect()
    }
}

/// Decompose `g` into connected components (iterative DFS over CSR).
pub fn connected_components(g: &Graph) -> Components {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for s in 0..n {
        if label[s] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[s] = c;
        stack.push(NodeId::from(s));
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = c;
                    stack.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// Connected components of an arbitrary [`GraphView`] via union-find
/// over its surviving adjacency.
///
/// Every vertex in `0..node_count()` gets a label; vertices the view
/// excludes (`contains_node` false) and vertices with no surviving edges
/// end up as singleton components, so they contribute zero connected
/// pairs — which makes this a drop-in replacement for edge-set-specific
/// component passes (the dominated edge set, failure-masked views, and
/// their compositions) when computing saturated connectivity.
pub fn view_components<V: GraphView>(view: &V) -> Components {
    let n = view.node_count();
    let mut uf = UnionFind::new(n);
    for u in 0..n {
        let u_id = NodeId::from(u);
        if !view.contains_node(u_id) {
            continue;
        }
        view.for_each_neighbor(u_id, |v| {
            uf.union(u, v.index());
        });
    }
    let mut label = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    for v in 0..n {
        let r = uf.find(v);
        if label[r] == u32::MAX {
            label[r] = sizes.len() as u32;
            sizes.push(0);
        }
        label[v] = label[r];
        sizes[label[r] as usize] += 1;
    }
    Components { label, sizes }
}

/// Components of the subgraph induced by `allowed` (vertices outside the
/// set are treated as absent). Labels of excluded vertices are `u32::MAX`.
pub fn components_within(g: &Graph, allowed: &NodeSet) -> Components {
    let n = g.node_count();
    let mut label = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();
    for s in allowed.iter() {
        if label[s.index()] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        let mut size = 0usize;
        label[s.index()] = c;
        stack.push(s);
        while let Some(u) = stack.pop() {
            size += 1;
            for &v in g.neighbors(u) {
                if allowed.contains(v) && label[v.index()] == u32::MAX {
                    label[v.index()] = c;
                    stack.push(v);
                }
            }
        }
        sizes.push(size);
    }
    Components { label, sizes }
}

/// The vertex set of the largest connected component of `g`.
///
/// Returns an empty set for an empty graph.
pub fn giant_component(g: &Graph) -> NodeSet {
    let comps = connected_components(g);
    let mut out = NodeSet::new(g.node_count());
    if let Some((giant, _)) = comps.giant() {
        for v in g.nodes() {
            if comps.label[v.index()] as usize == giant {
                out.insert(v);
            }
        }
    }
    out
}

impl crate::Validate for UnionFind {
    /// Re-derive the union-find invariants from the raw arrays:
    ///
    /// 1. `parent` and `size` are index-aligned and every parent id is in
    ///    range;
    /// 2. every parent chain terminates at a root (no cycles);
    /// 3. the cached component count equals the number of roots;
    /// 4. each root's cached size equals the number of elements whose
    ///    chain reaches it, and the sizes sum to `n`;
    /// 5. the cached `largest` equals the true maximum component size.
    fn audit(&self) -> crate::AuditReport {
        let mut rep = crate::AuditReport::new("netgraph::UnionFind");
        let n = self.parent.len();
        rep.check("uf.arrays-aligned", self.size.len() == n, || {
            format!("parent len {n}, size len {}", self.size.len())
        });
        let in_range = self.parent.iter().all(|&p| (p as usize) < n.max(1));
        rep.check("uf.parents-in-range", n == 0 || in_range, || {
            format!("a parent id is >= {n}")
        });
        if n == 0 || !in_range || self.size.len() != n {
            return rep; // chasing chains below would be unsound
        }
        // Resolve every element's root without path compression; a chain
        // longer than n elements means a cycle.
        let mut root_of = vec![u32::MAX; n];
        let mut cyclic = false;
        for (i, slot) in root_of.iter_mut().enumerate() {
            let mut x = i;
            let mut steps = 0usize;
            while self.parent[x] as usize != x {
                x = self.parent[x] as usize;
                steps += 1;
                if steps > n {
                    cyclic = true;
                    break;
                }
            }
            *slot = x as u32;
        }
        rep.check("uf.acyclic", !cyclic, || {
            "a parent chain does not terminate".into()
        });
        if cyclic {
            return rep;
        }
        let mut derived_size = vec![0u32; n];
        for &r in &root_of {
            derived_size[r as usize] += 1;
        }
        let roots: Vec<usize> = (0..n).filter(|&i| self.parent[i] as usize == i).collect();
        rep.check("uf.component-count", self.components == roots.len(), || {
            format!(
                "cached {} components, found {} roots",
                self.components,
                roots.len()
            )
        });
        let sizes_ok = roots.iter().all(|&r| self.size[r] == derived_size[r]);
        rep.check("uf.root-sizes", sizes_ok, || {
            roots
                .iter()
                .find(|&&r| self.size[r] != derived_size[r])
                .map(|&r| {
                    format!(
                        "root {r}: cached size {}, derived {}",
                        self.size[r], derived_size[r]
                    )
                })
                .unwrap_or_default()
        });
        let true_largest = roots.iter().map(|&r| derived_size[r]).max().unwrap_or(0);
        rep.check("uf.largest", self.largest == true_largest, || {
            format!("cached largest {}, derived {true_largest}", self.largest)
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_size(2), 3);
        assert_eq!(uf.largest_component(), 3);
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn union_find_empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.largest_component(), 0);
        assert_eq!(uf.component_count(), 0);
    }

    #[test]
    fn components_two_islands() {
        let g = from_edges(
            6,
            [(0, 1), (1, 2), (3, 4)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let c = connected_components(&g);
        assert_eq!(c.count(), 3); // {0,1,2}, {3,4}, {5}
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(c.giant().unwrap().1, 3);
        // ordered pairs: 3*2 + 2*1 + 0 = 8
        assert_eq!(c.connected_ordered_pairs(), 8);
        assert_eq!(c.label[0], c.label[2]);
        assert_ne!(c.label[0], c.label[3]);
    }

    #[test]
    fn components_empty_graph() {
        let g = from_edges(0, std::iter::empty());
        let c = connected_components(&g);
        assert_eq!(c.count(), 0);
        assert!(c.giant().is_none());
        assert_eq!(c.connected_ordered_pairs(), 0);
    }

    #[test]
    fn giant_component_extraction() {
        let g = from_edges(
            6,
            [(0, 1), (1, 2), (3, 4)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let giant = giant_component(&g);
        assert_eq!(giant.to_vec(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn components_within_mask() {
        // Path 0-1-2-3-4; removing 2 splits it.
        let g = from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))));
        let mut allowed = NodeSet::full(5);
        allowed.remove(NodeId(2));
        let c = components_within(&g, &allowed);
        assert_eq!(c.count(), 2);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2]);
        assert_eq!(c.label[2], u32::MAX);
        assert_eq!(c.connected_ordered_pairs(), 4);
    }

    #[test]
    fn members_listing() {
        let g = from_edges(4, [(0, 1)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let c = connected_components(&g);
        let comp_of_0 = c.label[0] as usize;
        assert_eq!(c.members(comp_of_0), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn union_find_audit_accepts_and_detects_corruption() {
        use crate::Validate;
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        assert!(uf.audit().is_ok(), "{}", uf.audit());
        assert!(UnionFind::new(0).audit().is_ok());

        // Corrupt the cached component count.
        let mut bad = uf.clone();
        bad.components += 1;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "uf.component-count"));

        // Corrupt a root's cached size.
        let mut bad = uf.clone();
        let root = bad.find(0);
        bad.size[root] += 1;
        let rep = bad.audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "uf.root-sizes" || f.invariant == "uf.largest"));

        // Introduce a parent cycle between two roots' children.
        let mut bad = uf.clone();
        let (a, b) = (bad.find(0), bad.find(4));
        bad.parent[a] = b as u32;
        bad.parent[b] = a as u32;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "uf.acyclic"));
    }
}
