//! Error type shared by the graph substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by fallible graph operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id referenced a vertex outside the graph.
    NodeOutOfRange {
        /// The offending index.
        index: usize,
        /// The graph's vertex count.
        node_count: usize,
    },
    /// Parameters of a generator or algorithm were inconsistent.
    InvalidParameter(String),
    /// The operation requires a connected graph but got a disconnected one.
    Disconnected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { index, node_count } => {
                write!(
                    f,
                    "node index {index} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange {
            index: 9,
            node_count: 5,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("5"));
        assert!(GraphError::Disconnected.to_string().contains("connected"));
        assert!(GraphError::InvalidParameter("k too big".into())
            .to_string()
            .contains("k too big"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
