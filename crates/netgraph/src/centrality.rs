//! Degree, PageRank and k-core centralities.
//!
//! The paper's Degree-Based (DB) and PageRank-Based (PRB) baseline broker
//! selections rank vertices by these scores (Section 5.1), Fig. 3 studies
//! the correlation between PageRank and marginal connectivity gain, and
//! Fig. 4's "network core vs edge" reading of broker placement is captured
//! here by the k-core decomposition (coreness).

use crate::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// Degrees of all vertices, as a vector indexed by node id.
pub fn degree_sequence(g: &Graph) -> Vec<usize> {
    g.nodes().map(|v| g.degree(v)).collect()
}

/// Configuration for [`pagerank`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageRankConfig {
    /// Damping factor, conventionally 0.85.
    pub damping: f64,
    /// Stop when the L1 change between iterations drops below this.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        PageRankConfig {
            damping: 0.85,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Power-iteration PageRank on the undirected graph (each undirected edge
/// acts as two directed edges). Dangling (isolated) vertices redistribute
/// their mass uniformly. Scores sum to 1.
///
/// The paper (Section 6.1) notes that on an undirected graph the PageRank
/// distribution is statistically close to the degree distribution — a fact
/// the unit tests check on a star graph.
///
/// ```
/// use netgraph::{graph::from_edges, NodeId, pagerank, PageRankConfig};
/// let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let pr = pagerank(&g, PageRankConfig::default());
/// assert!(pr[1] > pr[0]); // middle vertex dominates
/// assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn pagerank(g: &Graph, cfg: PageRankConfig) -> Vec<f64> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    assert!(
        (0.0..1.0).contains(&cfg.damping),
        "damping must be in [0, 1), got {}",
        cfg.damping
    );
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..cfg.max_iterations {
        let mut dangling_mass = 0.0;
        next.iter_mut().for_each(|x| *x = 0.0);
        for (v, &rv) in rank.iter().enumerate() {
            let deg = g.degree(NodeId::from(v));
            if deg == 0 {
                dangling_mass += rv;
            } else {
                let share = rv / deg as f64;
                for &u in g.neighbors(NodeId::from(v)) {
                    next[u.index()] += share;
                }
            }
        }
        let base = (1.0 - cfg.damping) * uniform + cfg.damping * dangling_mass * uniform;
        let mut delta = 0.0;
        for (r, nx) in rank.iter_mut().zip(&next) {
            let new = base + cfg.damping * nx;
            delta += (new - *r).abs();
            *r = new;
        }
        if delta < cfg.tolerance {
            break;
        }
    }
    rank
}

/// k-core decomposition: `coreness(g)[v]` is the largest `k` such that `v`
/// belongs to a subgraph in which every vertex has degree ≥ `k`.
///
/// Linear-time bucket algorithm (Batagelj–Zaveršnik). High-coreness
/// vertices form the "network core" of Fig. 4; stubs have coreness 1.
pub fn coreness(g: &Graph) -> Vec<u32> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut deg: Vec<u32> = (0..n).map(|v| g.degree(NodeId::from(v)) as u32).collect();
    let max_deg = deg.iter().max().copied().unwrap_or(0) as usize;

    // Bucket sort vertices by degree.
    let mut bin = vec![0u32; max_deg + 2];
    for &d in &deg {
        bin[d as usize + 1] += 1;
    }
    for i in 1..bin.len() {
        bin[i] += bin[i - 1];
    }
    let mut pos = vec![0u32; n]; // position of vertex in `vert`
    let mut vert = vec![0u32; n]; // vertices sorted by degree
    {
        let mut cursor = bin.clone();
        for v in 0..n {
            let d = deg[v] as usize;
            pos[v] = cursor[d];
            vert[cursor[d] as usize] = v as u32;
            cursor[d] += 1;
        }
    }

    let mut core = deg.clone();
    for i in 0..n {
        let v = vert[i] as usize;
        core[v] = deg[v];
        for &u in g.neighbors(NodeId::from(v)) {
            let u = u.index();
            if deg[u] > deg[v] {
                // Move u one bucket down: swap it with the first vertex of
                // its current bucket, then decrement its degree.
                let du = deg[u] as usize;
                let pu = pos[u] as usize;
                let pw = bin[du] as usize; // first position of bucket du
                let w = vert[pw] as usize;
                if u != w {
                    vert.swap(pu, pw);
                    pos[u] = pw as u32;
                    pos[w] = pu as u32;
                }
                bin[du] += 1;
                deg[u] -= 1;
            }
        }
    }
    core
}

/// Vertices sorted by a score, descending, ties broken by ascending id.
///
/// Used by the DB/PRB baselines: `top_by_score(&scores, k)` are the `k`
/// highest-scoring vertices.
pub fn top_by_score<T: PartialOrd + Copy>(scores: &[T], k: usize) -> Vec<NodeId> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // Incomparable scores (NaN) sort as equal, falling back to the id
    // tiebreak, so the ordering stays total and the sort cannot panic.
    order.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.into_iter().take(k).map(NodeId::from).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::from_edges;

    fn star(n: u32) -> Graph {
        from_edges(n as usize, (1..n).map(|i| (NodeId(0), NodeId(i))))
    }

    #[test]
    fn pagerank_star_center_dominates() {
        let g = star(11);
        let pr = pagerank(&g, PageRankConfig::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for leaf in 1..11 {
            assert!(pr[0] > pr[leaf]);
        }
        // All leaves symmetric.
        for leaf in 2..11 {
            assert!((pr[1] - pr[leaf]).abs() < 1e-12);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pagerank_empty_and_isolated() {
        let g = from_edges(0, std::iter::empty());
        assert!(pagerank(&g, PageRankConfig::default()).is_empty());

        let g = from_edges(3, std::iter::empty());
        let pr = pagerank(&g, PageRankConfig::default());
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for v in 0..3 {
            assert!((pr[v] - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_correlates_with_degree_undirected() {
        // Barbell-ish: hub 0 with 5 leaves, hub 6 with 2 leaves, bridge.
        let mut edges: Vec<(NodeId, NodeId)> = (1..6).map(|i| (NodeId(0), NodeId(i))).collect();
        edges.push((NodeId(0), NodeId(6)));
        edges.push((NodeId(6), NodeId(7)));
        edges.push((NodeId(6), NodeId(8)));
        let g = from_edges(9, edges);
        let pr = pagerank(&g, PageRankConfig::default());
        assert!(pr[0] > pr[6]);
        assert!(pr[6] > pr[7]);
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn pagerank_rejects_bad_damping() {
        let g = star(3);
        pagerank(
            &g,
            PageRankConfig {
                damping: 1.5,
                ..Default::default()
            },
        );
    }

    #[test]
    fn coreness_clique_plus_tail() {
        // K4 on {0,1,2,3} with a tail 3-4-5.
        let mut edges = vec![];
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((NodeId(i), NodeId(j)));
            }
        }
        edges.push((NodeId(3), NodeId(4)));
        edges.push((NodeId(4), NodeId(5)));
        let g = from_edges(6, edges);
        let core = coreness(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn coreness_cycle_is_two() {
        let g = from_edges(5, (0..5).map(|i| (NodeId(i), NodeId((i + 1) % 5))));
        assert!(coreness(&g).iter().all(|&c| c == 2));
    }

    #[test]
    fn coreness_empty_and_isolated() {
        assert!(coreness(&from_edges(0, std::iter::empty())).is_empty());
        assert_eq!(coreness(&from_edges(2, std::iter::empty())), vec![0, 0]);
    }

    #[test]
    fn top_by_score_orders_and_breaks_ties() {
        let scores = [0.5, 0.9, 0.9, 0.1];
        let top = top_by_score(&scores, 3);
        assert_eq!(top, vec![NodeId(1), NodeId(2), NodeId(0)]);
        assert_eq!(top_by_score(&scores, 0), Vec::<NodeId>::new());
        assert_eq!(top_by_score(&scores, 10).len(), 4);
    }

    #[test]
    fn degree_sequence_matches() {
        let g = star(4);
        assert_eq!(degree_sequence(&g), vec![3, 1, 1, 1]);
    }
}
