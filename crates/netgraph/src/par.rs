//! Deterministic parallel executor for embarrassingly parallel sweeps.
//!
//! Every hot path in the evaluation — exact l-hop curves, Brandes
//! betweenness, resilience failure sweeps — is a map over independent
//! items (BFS sources, failure steps) whose results are merged. This
//! module runs such maps over `std::thread::scope` with three guarantees:
//!
//! 1. **Determinism independent of thread count.** Items are grouped into
//!    *fixed-size* chunks (the chunk size does not depend on `threads`)
//!    and chunk results are merged in chunk-index order. Identical
//!    chunking + identical merge order means bit-identical output for any
//!    `threads`, including 1 — floating-point reductions associate the
//!    same way no matter how many workers ran.
//! 2. **Panic propagation.** A panicking worker does not poison-and-hang
//!    the merge: the payload is resumed on the calling thread via
//!    [`std::panic::resume_unwind`].
//! 3. **`threads = 0` means auto.** Resolved to
//!    [`std::thread::available_parallelism`], not a sequential fallback.
//!
//! Work is distributed by an atomic chunk counter, so a slow chunk does
//! not stall the other workers (no static striping); the index-ordered
//! merge restores determinism afterwards.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default chunk size for source-level fan-out. Small enough to load
/// balance thousands of BFS sources, large enough to amortize the
/// per-chunk scratch of heavier kernels (Brandes).
pub const DEFAULT_CHUNK: usize = 64;

/// Adaptive chunk size for *chunk-invariant* maps:
/// `max(DEFAULT_CHUNK, items / (threads * 4))`.
///
/// Larger inputs get proportionally larger chunks (fewer counter
/// round-trips, less merge bookkeeping) while still leaving ~4 chunks
/// per worker for load balancing. The chosen size is recorded in the
/// `par.chunk_size` histogram.
///
/// **Determinism caveat:** the result depends on `threads`, so this is
/// only safe for [`map`]-style calls whose output is independent of the
/// chunk boundaries (per-item results, flattened in order). Chunk-
/// *sensitive* consumers — [`map_chunks`] / [`map_reduce`] float merges,
/// msbfs lane-batched reducers — must keep a fixed chunk size or their
/// output would vary with the thread count.
pub fn adaptive_chunk(items: usize, threads: usize) -> usize {
    let workers = resolve_threads(threads).max(1);
    let chunk = DEFAULT_CHUNK.max(items / (workers * 4));
    let () = crate::histogram!("par.chunk_size", chunk as u64);
    chunk
}

/// [`map`] with [`adaptive_chunk`] sizing. Per-item results are returned
/// in input order, so the output is bit-identical for every `threads`
/// value even though the chunk size adapts to it.
///
/// # Panics
///
/// Re-raises worker panics.
pub fn map_auto<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map(items, adaptive_chunk(items.len(), threads), threads, f)
}

/// Resolve a user-facing thread count: `0` means "use all hardware
/// threads" ([`std::thread::available_parallelism`]), anything else is
/// taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Map fixed-size chunks of `items` through `f` in parallel, returning
/// the per-chunk results in chunk-index order.
///
/// The chunking (and therefore the result) is identical for every value
/// of `threads`; see the module docs for the determinism contract. A
/// panic in any worker is re-raised on the calling thread.
///
/// # Panics
///
/// Panics if `chunk_size == 0`, and re-raises worker panics.
pub fn map_chunks<T, R, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let chunks: Vec<&[T]> = items.chunks(chunk_size).collect();
    let workers = resolve_threads(threads).min(chunks.len()).max(1);
    let () = crate::counter!("par.jobs");
    let () = crate::counter!("par.chunks", chunks.len() as u64);
    if workers <= 1 {
        let () = crate::histogram!("par.chunks_per_worker", chunks.len() as u64);
        return chunks.into_iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        // One fetch per *chunk*, so the stronger ordering
                        // costs nothing measurable; SeqCst keeps the
                        // executor inside the workspace-wide "Relaxed only
                        // in obs.rs" rule (R11).
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        let Some(chunk) = chunks.get(i) else { break };
                        local.push((i, f(chunk)));
                    }
                    // One sample per worker: the spread of this histogram
                    // is the executor's steal imbalance.
                    let () = crate::histogram!("par.chunks_per_worker", local.len() as u64);
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(local) => local,
                // Re-raise the worker's panic on the calling thread with
                // its original payload.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let n_chunks = chunks.len();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "chunk {i} computed twice");
        slots[i] = Some(r);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), n_chunks, "a chunk result went missing");
    out
}

/// Map chunks through `f` in parallel, then fold the per-chunk results
/// into `init` **in chunk-index order** with `merge`.
///
/// This is the blessed way to reduce floating-point partials from a
/// parallel sweep: because the fold order is the chunk order (never the
/// completion order), the reduction associates identically for every
/// `threads` value and the result is bit-stable. The determinism lint
/// (R10) rejects ad-hoc `+=` merges of parallel float results outside
/// this module precisely so that all such merges funnel through here.
///
/// # Panics
///
/// Panics if `chunk_size == 0`, and re-raises worker panics.
pub fn map_reduce<T, R, A, F, M>(
    items: &[T],
    chunk_size: usize,
    threads: usize,
    f: F,
    init: A,
    merge: M,
) -> A
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
    M: FnMut(A, R) -> A,
{
    map_chunks(items, chunk_size, threads, f)
        .into_iter()
        .fold(init, merge)
}

/// Sum a float slice with a sequential left fold — a fixed association
/// order regardless of how the slice was produced. Pairs with
/// [`map_reduce`] as the other R10-blessed reduction primitive: use it
/// wherever a mean/total of per-item parallel results is taken.
pub fn sum_f64(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0f64, |acc, &x| acc + x)
}

/// Map each item of `items` through `f` in parallel, returning per-item
/// results in input order. Built on [`map_chunks`], so the same
/// determinism contract applies.
///
/// # Panics
///
/// Re-raises worker panics.
pub fn map<T, R, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_chunks(items, chunk_size, threads, |chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_zero_is_hardware_threads() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn adaptive_chunk_floors_at_default_and_scales() {
        // Small inputs keep the fixed floor.
        assert_eq!(adaptive_chunk(100, 4), DEFAULT_CHUNK);
        assert_eq!(adaptive_chunk(0, 1), DEFAULT_CHUNK);
        // Large inputs: items / (threads * 4).
        assert_eq!(adaptive_chunk(8000, 4), 8000 / 16);
        assert_eq!(adaptive_chunk(10_000, 2), 10_000 / 8);
        // threads = 0 resolves to hardware parallelism, still >= floor.
        assert!(adaptive_chunk(1_000_000, 0) >= DEFAULT_CHUNK);
    }

    #[test]
    fn map_auto_is_thread_count_invariant() {
        // The adaptive chunk size differs per thread count, but map()
        // output is chunk-invariant, so results stay bit-identical.
        let items: Vec<f64> = (0..9000).map(|i| 1.0 / (i as f64 + 0.7)).collect();
        let base: Vec<u64> = map_auto(&items, 1, |&x| (x * 3.0).to_bits());
        for threads in [0, 2, 4, 7] {
            let got: Vec<u64> = map_auto(&items, threads, |&x| (x * 3.0).to_bits());
            assert_eq!(got, base, "threads = {threads}");
        }
        assert_eq!(base.len(), items.len());
    }

    #[test]
    fn map_preserves_order_for_all_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 4, 7] {
            let got = map(&items, 17, threads, |&x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_results_arrive_in_chunk_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let sums = map_chunks(&items, 9, threads, |c| c.iter().sum::<usize>());
            assert_eq!(sums.len(), 100usize.div_ceil(9));
            assert_eq!(sums[0], (0..9).sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        }
    }

    #[test]
    fn float_merge_is_bit_identical_across_thread_counts() {
        // Sums that are sensitive to association order: identical
        // chunking + ordered merge must make them bit-identical.
        let items: Vec<f64> = (0..5000).map(|i| 1.0 / (i as f64 + 0.1)).collect();
        let reduce = |threads: usize| -> f64 {
            map_chunks(&items, DEFAULT_CHUNK, threads, |c| c.iter().sum::<f64>())
                .into_iter()
                .sum()
        };
        let base = reduce(1);
        for threads in [2, 4, 7] {
            assert_eq!(base.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn map_reduce_matches_sequential_fold() {
        let items: Vec<f64> = (0..3000).map(|i| 1.0 / (i as f64 + 0.3)).collect();
        let expect = map_chunks(&items, DEFAULT_CHUNK, 1, sum_f64)
            .into_iter()
            .fold(0.0f64, |a, x| a + x);
        for threads in [1, 2, 4, 7] {
            let got = map_reduce(&items, DEFAULT_CHUNK, threads, sum_f64, 0.0f64, |a, x| {
                a + x
            });
            assert_eq!(got.to_bits(), expect.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_vector_accumulator() {
        // Vector-valued accumulators (the betweenness merge shape).
        let items: Vec<usize> = (0..200).collect();
        let hist = map_reduce(
            &items,
            16,
            4,
            |chunk| {
                let mut h = [0usize; 4];
                for &i in chunk {
                    h[i % 4] += 1;
                }
                h
            },
            [0usize; 4],
            |mut acc, h| {
                for (a, b) in acc.iter_mut().zip(h) {
                    *a += b;
                }
                acc
            },
        );
        assert_eq!(hist, [50, 50, 50, 50]);
    }

    #[test]
    fn sum_f64_is_left_fold() {
        let xs = [1e16, 1.0, -1e16, 1.0];
        // Left association: ((1e16 + 1) - 1e16) + 1 == 1.0 exactly.
        assert_eq!(sum_f64(&xs).to_bits(), 1.0f64.to_bits());
        assert_eq!(sum_f64(&[]), 0.0);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        assert!(map(&items, 8, 4, |&x| x).is_empty());
        assert!(map_chunks(&items, 8, 4, |c| c.len()).is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            map(&items, 4, 4, |&x| {
                assert!(x != 33, "boom on {x}");
                x
            })
        });
        assert!(result.is_err(), "panic swallowed by the executor");
    }
}
