//! Deterministic parallel executor for embarrassingly parallel sweeps.
//!
//! Every hot path in the evaluation — exact l-hop curves, Brandes
//! betweenness, resilience failure sweeps — is a map over independent
//! items (BFS sources, failure steps) whose results are merged. This
//! module runs such maps over a **lazily initialized persistent worker
//! pool** with three guarantees:
//!
//! 1. **Determinism independent of thread count.** Items are grouped into
//!    *fixed-size* chunks (the chunk size does not depend on `threads`)
//!    and chunk results are merged in chunk-index order. Identical
//!    chunking + identical merge order means bit-identical output for any
//!    `threads`, including 1 — floating-point reductions associate the
//!    same way no matter how many workers ran.
//! 2. **Panic propagation.** A panicking worker does not poison-and-hang
//!    the merge: the payload is caught on the worker, shipped back over
//!    the completion channel, and resumed on the calling thread via
//!    [`std::panic::resume_unwind`]. The pool thread itself survives.
//! 3. **`threads = 0` means auto.** Resolved to
//!    [`std::thread::available_parallelism`], not a sequential fallback.
//!
//! # Pool lifecycle
//!
//! The pool is a process-global, grow-on-demand set of detached worker
//! threads, each owning an [`mpsc`] job queue. The first map that wants
//! `k` helpers spawns them (`par.pool.spawn`); every later map re-uses
//! them (`par.pool_reuse`), so repeated `map_auto`/`map_chunks`/
//! `map_reduce` calls stop paying thread start-up. Because the threads
//! persist, their `thread_local!` scratch — the [`crate::traverse`]
//! arena pool and the [`crate::msbfs`] lane pool — stays warm across
//! jobs: arenas are pinned per worker and re-used instead of re-allocated
//! on every call, which is where most of the old spawn-per-call model's
//! overhead went.
//!
//! Work is distributed by an atomic chunk counter, so a slow chunk does
//! not stall the other workers (no static striping); the index-ordered
//! merge restores determinism afterwards. The *calling* thread is always
//! a full participant in the claim loop — a map never waits on pool
//! scheduling to make progress, which is also the liveness argument:
//! helper jobs always terminate (the counter exhausts) and the caller
//! can finish every chunk alone if the pool is busy.
//!
//! Jobs shipped to the pool must be `'static`: the executor clones the
//! item slice (and the closure captures whatever owned state it needs),
//! trading one shallow copy per call for the removal of per-call thread
//! spawns. Maps issued *from inside* a pool worker run inline on that
//! worker — nested fan-out would otherwise queue helper jobs behind the
//! very job that is waiting for them.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Default chunk size for source-level fan-out. Small enough to load
/// balance thousands of BFS sources, large enough to amortize the
/// per-chunk scratch of heavier kernels (Brandes). Equals
/// [`crate::msbfs::LANES`] so a chunk of BFS sources is exactly one
/// msbfs lane batch.
pub const DEFAULT_CHUNK: usize = 64;

/// A unit of pool work: run a claim loop, ship the result back.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Process-global pool: one job queue per persistent worker, grown on
/// demand and never torn down (workers are detached and park in `recv`).
static POOL: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

thread_local! {
    /// True on pool worker threads. Maps issued from a worker run inline:
    /// dispatching helpers from inside a job could queue them behind the
    /// job itself and deadlock the completion channel.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Spawn one detached pool worker and hand back its job queue.
fn spawn_worker(index: usize) -> Sender<Job> {
    let (tx, rx) = mpsc::channel::<Job>();
    let spawned = std::thread::Builder::new()
        .name(format!("netgraph-par-{index}"))
        .spawn(move || {
            IN_POOL.with(|flag| flag.set(true));
            while let Ok(job) = rx.recv() {
                // Jobs wrap user code in catch_unwind already; this outer
                // layer keeps a stray panic from killing the worker and
                // stranding jobs queued behind it.
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
        });
    match spawned {
        Ok(_handle) => tx, // detached: the worker parks in recv() for the process lifetime
        Err(e) => panic!("failed to spawn pool worker {index}: {e}"),
    }
}

/// Send one job to each of the first `jobs.len()` pool workers, growing
/// the pool if the request is wider than it has ever been.
fn dispatch(jobs: Vec<Job>) {
    let pool = POOL.get_or_init(|| Mutex::new(Vec::new()));
    let mut senders = pool.lock().unwrap_or_else(PoisonError::into_inner);
    for (slot, job) in jobs.into_iter().enumerate() {
        if slot >= senders.len() {
            senders.push(spawn_worker(slot));
            let () = crate::counter!("par.pool.spawn");
        } else {
            let () = crate::counter!("par.pool_reuse");
        }
        if let Err(returned) = senders[slot].send(job) {
            // Unreachable under the worker-loop catch_unwind, but keeps
            // the pool self-healing instead of deadlocking if a worker
            // ever vanishes: respawn and requeue on the fresh channel.
            senders[slot] = spawn_worker(slot);
            let _ = senders[slot].send(returned.0);
        }
    }
}

/// State shared by every participant of one `map_chunks` call.
struct Shared<T, F> {
    items: Vec<T>,
    f: F,
    next: AtomicUsize,
    chunk_size: usize,
    n_chunks: usize,
    /// Even share of chunks per participant; claims beyond it count as
    /// steals (`par.steal`) — the executor's load-imbalance signal.
    fair_share: usize,
}

impl<T, F> Shared<T, F> {
    /// Claim chunks off the shared counter until it exhausts. Runs
    /// unmodified on the caller and (under `catch_unwind`) on helpers.
    fn claim_loop<R>(&self) -> Vec<(usize, R)>
    where
        F: Fn(&[T]) -> R,
    {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            // One fetch per *chunk*, so the stronger ordering costs
            // nothing measurable; SeqCst keeps the executor inside the
            // workspace-wide "Relaxed only in obs.rs" rule (R11).
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.n_chunks {
                break;
            }
            let lo = i * self.chunk_size;
            let hi = (lo + self.chunk_size).min(self.items.len());
            local.push((i, (self.f)(&self.items[lo..hi])));
        }
        // One sample per participant: the spread of this histogram is
        // the executor's steal imbalance, and claims beyond the even
        // share are surfaced as `par.steal`.
        let steals = local.len().saturating_sub(self.fair_share) as u64;
        debug_assert!(steals as usize <= self.n_chunks, "claimed more than exist");
        let () = crate::histogram!("par.chunks_per_worker", local.len() as u64);
        let () = crate::counter!("par.steal", steals);
        local
    }
}

/// Adaptive chunk size for *chunk-invariant* maps:
/// `max(1, ceil(items / (threads * 4)))`.
///
/// Larger inputs get proportionally larger chunks (fewer counter
/// round-trips, less merge bookkeeping) while still leaving ~4 chunks
/// per worker for load balancing; small inputs get chunk 1 so even a
/// dozen heavy items (chaos epochs, evolution steps) fan out instead of
/// collapsing into one chunk. The chosen size is recorded in the
/// `par.chunk_size` histogram.
///
/// **Determinism caveat:** the result depends on `threads`, so this is
/// only safe for [`map_auto`]-style calls whose output is independent of
/// the chunk boundaries (per-item results, flattened in order; or exact
/// integer merges). Chunk-*sensitive* consumers — [`map_chunks`] /
/// [`map_reduce`] float merges — must keep a fixed chunk size or their
/// output would vary with the thread count.
pub fn adaptive_chunk(items: usize, threads: usize) -> usize {
    let workers = resolve_threads(threads).max(1);
    let chunk = items.div_ceil(workers * 4).max(1);
    let () = crate::histogram!("par.chunk_size", chunk as u64);
    chunk
}

/// Map each item of `items` through `f` in parallel with
/// [`adaptive_chunk`] sizing, returning per-item results in input order.
/// The output is bit-identical for every `threads` value even though the
/// chunk size adapts to it.
///
/// # Panics
///
/// Re-raises worker panics.
pub fn map_auto<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    let chunk = adaptive_chunk(items.len(), threads);
    map_chunks(items, chunk, threads, move |chunk: &[T]| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Resolve a user-facing thread count: `0` means "use all hardware
/// threads" ([`std::thread::available_parallelism`]), anything else is
/// taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Map fixed-size chunks of `items` through `f` in parallel on the
/// persistent pool, returning the per-chunk results in chunk-index order.
///
/// The chunking (and therefore the result) is identical for every value
/// of `threads`; see the module docs for the determinism contract. A
/// panic in any worker is re-raised on the calling thread.
///
/// The executor owns its inputs: `items` is cloned once per call and the
/// closure must be `'static` (capture owned state — for a [`crate::Graph`]
/// that is one CSR clone per call, amortized across every chunk).
///
/// # Panics
///
/// Panics if `chunk_size == 0`, and re-raises worker panics.
pub fn map_chunks<T, R, F>(items: &[T], chunk_size: usize, threads: usize, f: F) -> Vec<R>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&[T]) -> R + Send + Sync + 'static,
{
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = items.len().div_ceil(chunk_size);
    let nested = IN_POOL.with(Cell::get);
    let participants = if nested {
        1
    } else {
        resolve_threads(threads).min(n_chunks).max(1)
    };
    let () = crate::counter!("par.jobs");
    let () = crate::counter!("par.chunks", n_chunks as u64);
    if participants <= 1 {
        let () = crate::histogram!("par.chunks_per_worker", n_chunks as u64);
        return items.chunks(chunk_size).map(f).collect();
    }

    let helpers = participants - 1;
    let shared = Arc::new(Shared {
        items: items.to_vec(),
        f,
        next: AtomicUsize::new(0),
        chunk_size,
        n_chunks,
        fair_share: n_chunks.div_ceil(participants),
    });
    let (tx, rx) = mpsc::channel();
    let jobs: Vec<Job> = (0..helpers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let tx = tx.clone();
            Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| shared.claim_loop()));
                // A dropped receiver (caller already unwinding) is fine.
                let _ = tx.send(result);
            }) as Job
        })
        .collect();
    drop(tx);
    dispatch(jobs);

    // The caller is a full participant: it claims chunks alongside the
    // pool, so progress never depends on pool scheduling.
    let mut pairs = shared.claim_loop();
    let mut panic_payload = None;
    for _ in 0..helpers {
        match rx.recv() {
            Ok(Ok(local)) => pairs.extend(local),
            // Hold the payload until every helper reported, so no job
            // still borrows the shared state when we unwind.
            Ok(Err(payload)) => panic_payload = Some(payload),
            Err(_) => panic!("pool worker lost before completing its job"),
        }
    }
    if let Some(payload) = panic_payload {
        resume_unwind(payload);
    }

    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
    for (i, r) in pairs {
        debug_assert!(slots[i].is_none(), "chunk {i} computed twice");
        slots[i] = Some(r);
    }
    let out: Vec<R> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), n_chunks, "a chunk result went missing");
    out
}

/// Map chunks through `f` in parallel, then fold the per-chunk results
/// into `init` **in chunk-index order** with `merge`.
///
/// This is the blessed way to reduce floating-point partials from a
/// parallel sweep: because the fold order is the chunk order (never the
/// completion order), the reduction associates identically for every
/// `threads` value and the result is bit-stable. The determinism lint
/// (R10) rejects ad-hoc `+=` merges of parallel float results outside
/// this module precisely so that all such merges funnel through here.
///
/// # Panics
///
/// Panics if `chunk_size == 0`, and re-raises worker panics.
pub fn map_reduce<T, R, A, F, M>(
    items: &[T],
    chunk_size: usize,
    threads: usize,
    f: F,
    init: A,
    merge: M,
) -> A
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&[T]) -> R + Send + Sync + 'static,
    M: FnMut(A, R) -> A,
{
    map_chunks(items, chunk_size, threads, f)
        .into_iter()
        .fold(init, merge)
}

/// Sum a float slice with a sequential left fold — a fixed association
/// order regardless of how the slice was produced. Pairs with
/// [`map_reduce`] as the other R10-blessed reduction primitive: use it
/// wherever a mean/total of per-item parallel results is taken.
pub fn sum_f64(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0f64, |acc, &x| acc + x)
}

/// Execute dependency *layers* (antichains of a DAG) in order on the
/// persistent pool.
///
/// Within a layer every item maps through `f` concurrently (a
/// [`map_auto`] fan-out); between layers there is a full barrier — layer
/// `i + 1` does not start until every item of layer `i` has merged, so a
/// step only ever runs after everything it depends on. Results come back
/// one `Vec` per layer, in item order, which makes the whole trace
/// bit-identical for every `threads` value: this is the scheduling
/// contract the reconfiguration planner's deterministic parallel
/// execution rides on.
///
/// # Panics
///
/// Re-raises worker panics (the barrier still completes the panicking
/// layer's merge first).
pub fn run_layers<T, R, F>(layers: &[Vec<T>], threads: usize, f: F) -> Vec<Vec<R>>
where
    T: Clone + Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(&T) -> R + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let () = crate::counter!("par.layer_runs");
    let () = crate::counter!("par.layers", layers.len() as u64);
    layers
        .iter()
        .map(|layer| {
            let f = Arc::clone(&f);
            map_auto(layer, threads, move |t| f(t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_size() -> usize {
        POOL.get().map_or(0, |m| {
            m.lock().unwrap_or_else(PoisonError::into_inner).len()
        })
    }

    #[test]
    fn resolve_zero_is_hardware_threads() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn adaptive_chunk_scales_with_input_and_floors_at_one() {
        // Small inputs get chunk 1 so a handful of heavy items still
        // fans out (chaos epochs, evolution steps).
        assert_eq!(adaptive_chunk(0, 1), 1);
        assert_eq!(adaptive_chunk(12, 4), 1);
        // Large inputs: ceil(items / (threads * 4)).
        assert_eq!(adaptive_chunk(8000, 4), 8000 / 16);
        assert_eq!(adaptive_chunk(10_000, 2), 10_000 / 8);
        assert_eq!(adaptive_chunk(100, 4), 100usize.div_ceil(16));
        // threads = 0 resolves to hardware parallelism, still >= 1.
        assert!(adaptive_chunk(1_000_000, 0) >= 1);
    }

    #[test]
    fn map_auto_is_thread_count_invariant() {
        // The adaptive chunk size differs per thread count, but per-item
        // output flattened in order is chunk-invariant, so results stay
        // bit-identical.
        let items: Vec<f64> = (0..9000).map(|i| 1.0 / (i as f64 + 0.7)).collect();
        let base: Vec<u64> = map_auto(&items, 1, |&x| (x * 3.0).to_bits());
        for threads in [0, 2, 4, 7] {
            let got: Vec<u64> = map_auto(&items, threads, |&x| (x * 3.0).to_bits());
            assert_eq!(got, base, "threads = {threads}");
        }
        assert_eq!(base.len(), items.len());
    }

    #[test]
    fn map_auto_preserves_order_for_all_thread_counts() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0, 1, 2, 4, 7] {
            let got = map_auto(&items, threads, |&x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_results_arrive_in_chunk_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let sums = map_chunks(&items, 9, threads, |c| c.iter().sum::<usize>());
            assert_eq!(sums.len(), 100usize.div_ceil(9));
            assert_eq!(sums[0], (0..9).sum::<usize>());
            assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
        }
    }

    #[test]
    fn float_merge_is_bit_identical_across_thread_counts() {
        // Sums that are sensitive to association order: identical
        // chunking + ordered merge must make them bit-identical.
        let items: Vec<f64> = (0..5000).map(|i| 1.0 / (i as f64 + 0.1)).collect();
        let reduce = |threads: usize| -> f64 {
            map_chunks(&items, DEFAULT_CHUNK, threads, |c| c.iter().sum::<f64>())
                .into_iter()
                .sum()
        };
        let base = reduce(1);
        for threads in [2, 4, 7] {
            assert_eq!(base.to_bits(), reduce(threads).to_bits());
        }
    }

    #[test]
    fn map_reduce_matches_sequential_fold() {
        let items: Vec<f64> = (0..3000).map(|i| 1.0 / (i as f64 + 0.3)).collect();
        let expect = map_chunks(&items, DEFAULT_CHUNK, 1, sum_f64)
            .into_iter()
            .fold(0.0f64, |a, x| a + x);
        for threads in [1, 2, 4, 7] {
            let got = map_reduce(&items, DEFAULT_CHUNK, threads, sum_f64, 0.0f64, |a, x| {
                a + x
            });
            assert_eq!(got.to_bits(), expect.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn map_reduce_vector_accumulator() {
        // Vector-valued accumulators (the betweenness merge shape).
        let items: Vec<usize> = (0..200).collect();
        let hist = map_reduce(
            &items,
            16,
            4,
            |chunk| {
                let mut h = [0usize; 4];
                for &i in chunk {
                    h[i % 4] += 1;
                }
                h
            },
            [0usize; 4],
            |mut acc, h| {
                for (a, b) in acc.iter_mut().zip(h) {
                    *a += b;
                }
                acc
            },
        );
        assert_eq!(hist, [50, 50, 50, 50]);
    }

    #[test]
    fn sum_f64_is_left_fold() {
        let xs = [1e16, 1.0, -1e16, 1.0];
        // Left association: ((1e16 + 1) - 1e16) + 1 == 1.0 exactly.
        assert_eq!(sum_f64(&xs).to_bits(), 1.0f64.to_bits());
        assert_eq!(sum_f64(&[]), 0.0);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u32> = Vec::new();
        assert!(map_auto(&items, 4, |&x| x).is_empty());
        assert!(map_chunks(&items, 8, 4, |c| c.len()).is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            map_auto(&items, 4, |&x| {
                assert!(x != 33, "boom on {x}");
                x
            })
        });
        assert!(result.is_err(), "panic swallowed by the executor");
    }

    #[test]
    fn pool_survives_worker_panic() {
        // A panicking job must not kill its pool worker: later maps on
        // the same pool still complete and stay correct.
        let items: Vec<u32> = (0..64).collect();
        for _ in 0..3 {
            let result = std::panic::catch_unwind(|| {
                map_chunks(&items, 4, 4, |c| {
                    assert!(c[0] != 32, "boom");
                    c.len()
                })
            });
            assert!(result.is_err());
            let ok = map_chunks(&items, 4, 4, |c| c.iter().sum::<u32>());
            assert_eq!(ok.iter().sum::<u32>(), (0..64).sum::<u32>());
        }
    }

    #[test]
    fn pool_persists_and_grows_monotonically() {
        let items: Vec<u32> = (0..256).collect();
        let _ = map_chunks(&items, 16, 3, |c| c.len());
        let after_first = pool_size();
        // Other tests share the global pool, so only monotone claims are
        // race-free: the first 3-thread map leaves >= 2 workers parked,
        // and repeat calls never shrink or rebuild the pool.
        assert!(after_first >= 2, "pool has {after_first} workers");
        let _ = map_chunks(&items, 16, 3, |c| c.len());
        let _ = map_chunks(&items, 16, 2, |c| c.len());
        assert!(pool_size() >= after_first);
    }

    #[test]
    fn run_layers_trace_is_thread_count_invariant() {
        // Antichain scheduling: per-layer, per-item results must be
        // bit-identical for every thread count, including the float
        // results that would expose merge-order drift.
        let layers: Vec<Vec<u64>> = vec![
            (0..100).collect(),
            (100..103).collect(),
            Vec::new(),
            (103..250).collect(),
        ];
        let base = run_layers(&layers, 1, |&x| (1.0 / (x as f64 + 0.3)).to_bits());
        assert_eq!(base.len(), layers.len());
        assert!(base[2].is_empty());
        for threads in [2, 4, 7] {
            let got = run_layers(&layers, threads, |&x| (1.0 / (x as f64 + 0.3)).to_bits());
            assert_eq!(got, base, "threads = {threads}");
        }
    }

    #[test]
    fn run_layers_barriers_between_layers() {
        // Every step of layer i must complete before any step of layer
        // i + 1 starts: stamp each step with a global SeqCst counter and
        // check the stamp ranges of consecutive layers never overlap.
        let layers: Vec<Vec<usize>> = vec![(0..40).collect(), (0..40).collect(), (0..7).collect()];
        let clock = Arc::new(AtomicUsize::new(0));
        let stamps = {
            let clock = Arc::clone(&clock);
            run_layers(&layers, 4, move |_| clock.fetch_add(1, Ordering::SeqCst))
        };
        let mut prev_max = None;
        for (li, layer) in stamps.iter().enumerate() {
            let lo = layer.iter().min().copied();
            if let (Some(prev), Some(lo)) = (prev_max, lo) {
                assert!(
                    lo > prev,
                    "layer {li} started before layer {} ended",
                    li - 1
                );
            }
            prev_max = layer.iter().max().copied().or(prev_max);
        }
        assert_eq!(clock.load(Ordering::SeqCst), 40 + 40 + 7);
    }

    #[test]
    fn run_layers_empty_and_panic() {
        let none: Vec<Vec<u32>> = Vec::new();
        assert!(run_layers(&none, 4, |&x: &u32| x).is_empty());
        let layers: Vec<Vec<u32>> = vec![(0..8).collect(), (8..64).collect()];
        let result = std::panic::catch_unwind(|| {
            run_layers(&layers, 4, |&x| {
                assert!(x != 33, "boom on {x}");
                x
            })
        });
        assert!(result.is_err(), "layer panic swallowed by the executor");
    }

    #[test]
    fn nested_maps_run_inline_without_deadlock() {
        // A map inside a map must not dispatch helpers (they would queue
        // behind the outer job on the same worker). The inline fallback
        // keeps results identical.
        let outer: Vec<u32> = (0..8).collect();
        let got = map_chunks(&outer, 1, 4, |c| {
            let inner: Vec<u32> = (0..100).collect();
            let sums = map_chunks(&inner, 10, 4, |ic| ic.iter().sum::<u32>());
            c[0] as usize + sums.len()
        });
        let expect: Vec<usize> = (0..8).map(|i| i + 10).collect();
        assert_eq!(got, expect);
    }
}
