//! Property-based tests of the graph substrate's core invariants.

use netgraph::{
    bfs_distances, connected_components, coreness, dijkstra, graph::from_edges, Graph,
    GraphBuilder, NodeId, NodeSet,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

fn build(n: u32, edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

proptest! {
    /// Handshake lemma: degree sum equals twice the edge count.
    #[test]
    fn handshake(edges in arb_edges(30, 120)) {
        let g = build(30, &edges);
        let degree_sum: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    /// Adjacency symmetry: u in N(v) iff v in N(u), and has_edge agrees.
    #[test]
    fn symmetry(edges in arb_edges(25, 100)) {
        let g = build(25, &edges);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                prop_assert!(g.neighbors(v).contains(&u));
                prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
                prop_assert_ne!(u, v, "self-loop survived the builder");
            }
        }
    }

    /// Neighbor lists are strictly sorted (sorted + deduplicated).
    #[test]
    fn neighbors_sorted_unique(edges in arb_edges(25, 150)) {
        let g = build(25, &edges);
        for v in g.nodes() {
            let nb = g.neighbors(v);
            for w in nb.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(u) - d(v)| <= 1 for every edge when both are reached.
    #[test]
    fn bfs_edge_lipschitz(edges in arb_edges(25, 100), src in 0u32..25) {
        let g = build(25, &edges);
        let d = bfs_distances(&g, NodeId(src));
        for (u, v) in g.edges() {
            if let (Some(du), Some(dv)) = (d[u.index()], d[v.index()]) {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u}, {v}): {du} vs {dv}");
            } else {
                // One endpoint reached implies the other is too.
                prop_assert!(d[u.index()].is_none() && d[v.index()].is_none());
            }
        }
    }

    /// Components partition the vertex set, and sizes sum to n.
    #[test]
    fn components_partition(edges in arb_edges(30, 90)) {
        let g = build(30, &edges);
        let c = connected_components(&g);
        prop_assert_eq!(c.sizes.iter().sum::<usize>(), 30);
        for (u, v) in g.edges() {
            prop_assert_eq!(c.label[u.index()], c.label[v.index()]);
        }
    }

    /// Coreness is sandwiched by degree and is edge-monotone at the top:
    /// core(v) <= deg(v), and the max coreness never exceeds max degree.
    #[test]
    fn coreness_bounds(edges in arb_edges(25, 120)) {
        let g = build(25, &edges);
        let core = coreness(&g);
        for v in g.nodes() {
            prop_assert!(core[v.index()] as usize <= g.degree(v));
        }
    }

    /// Unit-weight Dijkstra equals BFS everywhere.
    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dijkstra_matches_bfs(edges in arb_edges(20, 70), src in 0u32..20) {
        let g = build(20, &edges);
        let sp = dijkstra(&g, NodeId(src), &netgraph::dijkstra::UnitWeights);
        let bfs = bfs_distances(&g, NodeId(src));
        for v in 0..20usize {
            match bfs[v] {
                Some(d) => prop_assert_eq!(sp.dist[v] as u32, d),
                None => prop_assert!(sp.dist[v].is_infinite()),
            }
        }
    }

    /// NodeSet algebra agrees with a model HashSet.
    #[test]
    fn nodeset_matches_model(a in proptest::collection::hash_set(0u32..80, 0..40),
                             b in proptest::collection::hash_set(0u32..80, 0..40)) {
        let mut sa = NodeSet::new(80);
        for &x in &a { sa.insert(NodeId(x)); }
        let mut sb = NodeSet::new(80);
        for &x in &b { sb.insert(NodeId(x)); }

        prop_assert_eq!(sa.len(), a.len());
        prop_assert_eq!(sa.union_len(&sb), a.union(&b).count());
        prop_assert_eq!(sa.count_new(&sb), b.difference(&a).count());

        let mut u = sa.clone();
        u.union_with(&sb);
        prop_assert_eq!(u.len(), a.union(&b).count());
        let mut i = sa.clone();
        i.intersect_with(&sb);
        prop_assert_eq!(i.len(), a.intersection(&b).count());
        let mut d = sa.clone();
        d.difference_with(&sb);
        prop_assert_eq!(d.len(), a.difference(&b).count());

        // Iteration ascending and consistent with membership.
        let listed: Vec<u32> = sa.iter().map(|v| v.0).collect();
        let mut sorted: Vec<u32> = a.iter().copied().collect();
        sorted.sort_unstable();
        prop_assert_eq!(listed, sorted);
    }

    /// Induced subgraph preserves exactly the edges inside the kept set.
    #[test]
    fn induced_subgraph_edge_faithful(edges in arb_edges(20, 60),
                                      keep in proptest::collection::hash_set(0u32..20, 1..15)) {
        let g = build(20, &edges);
        let mut mask = NodeSet::new(20);
        for &v in &keep { mask.insert(NodeId(v)); }
        let (sub, map) = g.induced_subgraph(&mask);
        prop_assert_eq!(sub.node_count(), keep.len());
        // Every subgraph edge maps to an original edge within `keep`.
        let mut count = 0usize;
        for (u, v) in sub.edges() {
            prop_assert!(g.has_edge(map[u.index()], map[v.index()]));
            count += 1;
        }
        // And every original inside-edge survives.
        let inside = g.edges().filter(|&(u, v)| mask.contains(u) && mask.contains(v)).count();
        prop_assert_eq!(count, inside);
    }
}

#[test]
fn generators_connected_reasonably() {
    // BA is connected by construction; ER at this density nearly so.
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let ba = netgraph::barabasi_albert(300, 2, &mut rng);
    assert_eq!(connected_components(&ba).count(), 1);
    let g = from_edges(4, [(0, 1), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))));
    assert_eq!(connected_components(&g).count(), 2);
}
