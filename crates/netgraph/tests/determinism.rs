//! Determinism gate for the parallel executor: every threaded metric
//! must be bit-identical across worker counts (including the sequential
//! delegate), because results files are diffed by CI and by readers.
//!
//! The guarantee comes from fixed-size chunking plus chunk-ordered
//! merges in [`netgraph::par`]; these tests pin it end to end.

use netgraph::{betweenness_threaded, closeness_threaded, metrics};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const THREADS: [usize; 4] = [1, 2, 4, 7];

fn graph() -> netgraph::Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(2014);
    netgraph::barabasi_albert(600, 3, &mut rng)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn betweenness_bit_identical_across_thread_counts() {
    let g = graph();
    let want = bits(&metrics::betweenness(
        &g,
        Some(64),
        &mut ChaCha8Rng::seed_from_u64(7),
    ));
    for t in THREADS {
        let got = bits(&betweenness_threaded(
            &g,
            Some(64),
            &mut ChaCha8Rng::seed_from_u64(7),
            t,
        ));
        assert_eq!(got, want, "betweenness diverged at threads={t}");
    }
}

#[test]
fn betweenness_exact_mode_also_identical() {
    let g = graph();
    let want = bits(&betweenness_threaded(
        &g,
        None,
        &mut ChaCha8Rng::seed_from_u64(7),
        1,
    ));
    for t in [2, 7] {
        let got = bits(&betweenness_threaded(
            &g,
            None,
            &mut ChaCha8Rng::seed_from_u64(7),
            t,
        ));
        assert_eq!(got, want, "exact betweenness diverged at threads={t}");
    }
}

#[test]
fn closeness_bit_identical_across_thread_counts() {
    let g = graph();
    let want = bits(&metrics::closeness(
        &g,
        Some(80),
        &mut ChaCha8Rng::seed_from_u64(11),
    ));
    for t in THREADS {
        let got = bits(&closeness_threaded(
            &g,
            Some(80),
            &mut ChaCha8Rng::seed_from_u64(11),
            t,
        ));
        assert_eq!(got, want, "closeness diverged at threads={t}");
    }
}

#[test]
fn auto_thread_count_matches_too() {
    // threads = 0 resolves to the machine's parallelism — whatever that
    // is, the answer must not move.
    let g = graph();
    let a = bits(&betweenness_threaded(
        &g,
        Some(32),
        &mut ChaCha8Rng::seed_from_u64(3),
        0,
    ));
    let b = bits(&betweenness_threaded(
        &g,
        Some(32),
        &mut ChaCha8Rng::seed_from_u64(3),
        3,
    ));
    assert_eq!(a, b);
}
