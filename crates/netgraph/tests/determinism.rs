//! Determinism gate for the parallel executor: every threaded metric
//! must be bit-identical across worker counts (including the sequential
//! delegate), because results files are diffed by CI and by readers.
//!
//! The guarantee comes from fixed-size chunking plus chunk-ordered
//! merges in [`netgraph::par`]; these tests pin it end to end.

use netgraph::{betweenness_threaded, closeness_threaded, metrics};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const THREADS: [usize; 4] = [1, 2, 4, 7];

fn graph() -> netgraph::Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(2014);
    netgraph::barabasi_albert(600, 3, &mut rng)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn betweenness_bit_identical_across_thread_counts() {
    let g = graph();
    let want = bits(&metrics::betweenness(
        &g,
        Some(64),
        &mut ChaCha8Rng::seed_from_u64(7),
    ));
    for t in THREADS {
        let got = bits(&betweenness_threaded(
            &g,
            Some(64),
            &mut ChaCha8Rng::seed_from_u64(7),
            t,
        ));
        assert_eq!(got, want, "betweenness diverged at threads={t}");
    }
}

#[test]
fn betweenness_exact_mode_also_identical() {
    let g = graph();
    let want = bits(&betweenness_threaded(
        &g,
        None,
        &mut ChaCha8Rng::seed_from_u64(7),
        1,
    ));
    for t in [2, 7] {
        let got = bits(&betweenness_threaded(
            &g,
            None,
            &mut ChaCha8Rng::seed_from_u64(7),
            t,
        ));
        assert_eq!(got, want, "exact betweenness diverged at threads={t}");
    }
}

#[test]
fn closeness_bit_identical_across_thread_counts() {
    let g = graph();
    let want = bits(&metrics::closeness(
        &g,
        Some(80),
        &mut ChaCha8Rng::seed_from_u64(11),
    ));
    for t in THREADS {
        let got = bits(&closeness_threaded(
            &g,
            Some(80),
            &mut ChaCha8Rng::seed_from_u64(11),
            t,
        ));
        assert_eq!(got, want, "closeness diverged at threads={t}");
    }
}

#[test]
fn closeness_exact_msbfs_bit_identical() {
    // Exact closeness is the msbfs-backed fan-out: every 64-source lane
    // batch runs inside a `par` chunk, so this pins the kernel's
    // batch-and-merge path (not just the sampled subset) across worker
    // counts, including auto.
    let g = graph();
    let want = bits(&closeness_threaded(
        &g,
        None,
        &mut ChaCha8Rng::seed_from_u64(13),
        1,
    ));
    for t in [2, 4, 7, 0] {
        let got = bits(&closeness_threaded(
            &g,
            None,
            &mut ChaCha8Rng::seed_from_u64(13),
            t,
        ));
        assert_eq!(got, want, "exact msbfs closeness diverged at threads={t}");
    }
}

#[test]
fn msbfs_batch_fanout_bit_identical() {
    // Drive the kernel directly through the deterministic executor the
    // way the library consumers do — one 64-source batch per chunk —
    // and require the merged per-level pair counts to be bit-identical
    // at every thread count.
    use netgraph::{msbfs, par, with_msbfs, FullView};

    let g = graph();
    let sources: Vec<netgraph::NodeId> = g.nodes().collect();
    let run = |threads: usize| -> Vec<u64> {
        let per_chunk = par::map_chunks(&sources, msbfs::LANES, threads, |batch| {
            let mut levels = Vec::new();
            with_msbfs(|arena| {
                arena.run(FullView::new(&g), batch, u32::MAX, |wf| {
                    let l = wf.level() as usize;
                    if levels.len() <= l {
                        levels.resize(l + 1, 0u64);
                    }
                    levels[l] += wf.new_pairs();
                });
            });
            levels
        });
        let mut merged = Vec::new();
        for levels in per_chunk {
            if merged.len() < levels.len() {
                merged.resize(levels.len(), 0u64);
            }
            for (slot, v) in merged.iter_mut().zip(levels) {
                *slot += v;
            }
        }
        merged
    };
    let want = run(1);
    assert!(want.iter().sum::<u64>() > 0, "traversal reached something");
    for t in THREADS {
        assert_eq!(run(t), want, "msbfs fan-out diverged at threads={t}");
    }
}

#[test]
fn auto_thread_count_matches_too() {
    // threads = 0 resolves to the machine's parallelism — whatever that
    // is, the answer must not move.
    let g = graph();
    let a = bits(&betweenness_threaded(
        &g,
        Some(32),
        &mut ChaCha8Rng::seed_from_u64(3),
        0,
    ));
    let b = bits(&betweenness_threaded(
        &g,
        Some(32),
        &mut ChaCha8Rng::seed_from_u64(3),
        3,
    ));
    assert_eq!(a, b);
}
