//! Determinism gate for the parallel executor: every threaded metric
//! must be bit-identical across worker counts (including the sequential
//! delegate), because results files are diffed by CI and by readers.
//!
//! The guarantee comes from fixed-size chunking plus chunk-ordered
//! merges in [`netgraph::par`]; these tests pin it end to end.

use netgraph::{betweenness_threaded, closeness_threaded, metrics};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const THREADS: [usize; 4] = [1, 2, 4, 7];

fn graph() -> netgraph::Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(2014);
    netgraph::barabasi_albert(600, 3, &mut rng)
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn betweenness_bit_identical_across_thread_counts() {
    let g = graph();
    let want = bits(&metrics::betweenness(
        &g,
        Some(64),
        &mut ChaCha8Rng::seed_from_u64(7),
    ));
    for t in THREADS {
        let got = bits(&betweenness_threaded(
            &g,
            Some(64),
            &mut ChaCha8Rng::seed_from_u64(7),
            t,
        ));
        assert_eq!(got, want, "betweenness diverged at threads={t}");
    }
}

#[test]
fn betweenness_exact_mode_also_identical() {
    let g = graph();
    let want = bits(&betweenness_threaded(
        &g,
        None,
        &mut ChaCha8Rng::seed_from_u64(7),
        1,
    ));
    for t in [2, 7] {
        let got = bits(&betweenness_threaded(
            &g,
            None,
            &mut ChaCha8Rng::seed_from_u64(7),
            t,
        ));
        assert_eq!(got, want, "exact betweenness diverged at threads={t}");
    }
}

#[test]
fn closeness_bit_identical_across_thread_counts() {
    let g = graph();
    let want = bits(&metrics::closeness(
        &g,
        Some(80),
        &mut ChaCha8Rng::seed_from_u64(11),
    ));
    for t in THREADS {
        let got = bits(&closeness_threaded(
            &g,
            Some(80),
            &mut ChaCha8Rng::seed_from_u64(11),
            t,
        ));
        assert_eq!(got, want, "closeness diverged at threads={t}");
    }
}

#[test]
fn closeness_exact_msbfs_bit_identical() {
    // Exact closeness is the msbfs-backed fan-out: every 64-source lane
    // batch runs inside a `par` chunk, so this pins the kernel's
    // batch-and-merge path (not just the sampled subset) across worker
    // counts, including auto.
    let g = graph();
    let want = bits(&closeness_threaded(
        &g,
        None,
        &mut ChaCha8Rng::seed_from_u64(13),
        1,
    ));
    for t in [2, 4, 7, 0] {
        let got = bits(&closeness_threaded(
            &g,
            None,
            &mut ChaCha8Rng::seed_from_u64(13),
            t,
        ));
        assert_eq!(got, want, "exact msbfs closeness diverged at threads={t}");
    }
}

/// All-sources msbfs fan-out through the pool executor — one 64-source
/// lane batch per chunk — returning merged per-level pair counts.
/// Integer-valued, so any divergence (scheduling or layout) is exact.
fn msbfs_level_pairs(g: &netgraph::Graph, threads: usize) -> Vec<u64> {
    use netgraph::{msbfs, par, with_msbfs, FullView};

    let sources: Vec<netgraph::NodeId> = g.nodes().collect();
    // Pool jobs are 'static: the closure owns its CSR clone.
    let g_owned = g.clone();
    let per_chunk = par::map_chunks(&sources, msbfs::LANES, threads, move |batch| {
        let mut levels = Vec::new();
        with_msbfs(|arena| {
            arena.run(FullView::new(&g_owned), batch, u32::MAX, |wf| {
                let l = wf.level() as usize;
                if levels.len() <= l {
                    levels.resize(l + 1, 0u64);
                }
                levels[l] += wf.new_pairs();
            });
        });
        levels
    });
    let mut merged = Vec::new();
    for levels in per_chunk {
        if merged.len() < levels.len() {
            merged.resize(levels.len(), 0u64);
        }
        for (slot, v) in merged.iter_mut().zip(levels) {
            *slot += v;
        }
    }
    merged
}

#[test]
fn msbfs_batch_fanout_bit_identical() {
    // Drive the kernel directly through the deterministic executor the
    // way the library consumers do and require the merged per-level pair
    // counts to be bit-identical at every thread count.
    let g = graph();
    let want = msbfs_level_pairs(&g, 1);
    assert!(want.iter().sum::<u64>() > 0, "traversal reached something");
    for t in THREADS {
        assert_eq!(
            msbfs_level_pairs(&g, t),
            want,
            "msbfs fan-out diverged at threads={t}"
        );
    }
}

#[test]
fn msbfs_permuted_layout_bit_identical() {
    // The cache-aware degree-descending relabeling changes memory layout
    // only: per-level reachable-pair counts are relabeling-invariant, so
    // the permuted CSR must reproduce the original curve bit-for-bit at
    // every thread count. The permutation also has to pass its own audit.
    use netgraph::Validate;

    let g = graph();
    let perm = g.permute_by_degree();
    let cert = perm.audit();
    assert!(cert.is_ok(), "permutation certificate failed: {cert:?}");

    let want = msbfs_level_pairs(&g, 1);
    for t in THREADS {
        assert_eq!(
            msbfs_level_pairs(perm.graph(), t),
            want,
            "permuted-CSR msbfs diverged at threads={t}"
        );
    }
}

#[test]
fn auto_thread_count_matches_too() {
    // threads = 0 resolves to the machine's parallelism — whatever that
    // is, the answer must not move.
    let g = graph();
    let a = bits(&betweenness_threaded(
        &g,
        Some(32),
        &mut ChaCha8Rng::seed_from_u64(3),
        0,
    ));
    let b = bits(&betweenness_threaded(
        &g,
        Some(32),
        &mut ChaCha8Rng::seed_from_u64(3),
        3,
    ));
    assert_eq!(a, b);
}
