//! Property tests of the 64-lane msbfs kernel: every lane of a batched
//! run must match the per-source engine BFS on the same [`GraphView`],
//! for all four view types, in both expansion directions, at any depth
//! bound. The per-source engine is itself pinned to a naive reference in
//! `engine_props.rs`, so agreement here transitively pins msbfs to the
//! documented view semantics.

use netgraph::{
    msbfs_distances, undirected_key, with_arena, with_msbfs, DominatedView, FullView, Graph,
    GraphBuilder, GraphView, InducedView, MaskedView, MsBfsArena, NodeId, NodeSet,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

fn build(n: u32, edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

fn node_set(n: usize, ids: &HashSet<u32>) -> NodeSet {
    NodeSet::from_iter_with_capacity(n, ids.iter().map(|&i| NodeId(i)))
}

/// Engine distances via a pooled per-source arena, as a comparable
/// vector — the baseline every msbfs lane must reproduce.
fn engine_bfs<V: GraphView>(view: &V, src: NodeId, max_depth: u32) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run_bounded(view, src, max_depth);
        (0..view.node_count())
            .map(|v| arena.distance(NodeId(v as u32)))
            .collect()
    })
}

/// Batched distances with a forced expansion direction, mirroring
/// [`msbfs_distances`] (which always runs `Direction::Auto`).
fn msbfs_forced<V: GraphView>(
    view: &V,
    sources: &[NodeId],
    max_depth: u32,
    direction: netgraph::msbfs::Direction,
) -> Vec<Vec<Option<u32>>> {
    let n = view.node_count();
    let mut dist = vec![vec![None; n]; sources.len()];
    let mut arena = MsBfsArena::new();
    arena.run_with(view, sources, max_depth, direction, |wf| {
        let level = wf.level();
        wf.for_each_new(|v, lanes| {
            lanes.for_each_lane(|lane| dist[lane][v.index()] = Some(level));
        });
    });
    dist
}

fn sources_of(ids: &HashSet<u32>) -> Vec<NodeId> {
    let mut srcs: Vec<NodeId> = ids.iter().map(|&s| NodeId(s)).collect();
    srcs.sort_unstable();
    srcs
}

proptest! {
    /// FullView: each lane of an auto-direction batch equals its
    /// per-source engine run at every depth bound.
    #[test]
    fn full_view_lanes_match_engine(edges in arb_edges(24, 90),
                                    sources in proptest::collection::hash_set(0u32..24, 1..16),
                                    depth in 0u32..6) {
        let g = build(24, &edges);
        let srcs = sources_of(&sources);
        let view = FullView::new(&g);
        let mut dist = vec![vec![None; g.node_count()]; srcs.len()];
        with_msbfs(|arena| {
            arena.run(view, &srcs, depth, |wf| {
                let level = wf.level();
                wf.for_each_new(|v, lanes| {
                    lanes.for_each_lane(|lane| dist[lane][v.index()] = Some(level));
                });
            });
        });
        for (lane, &s) in srcs.iter().enumerate() {
            prop_assert_eq!(&dist[lane], &engine_bfs(&view, s, depth));
        }
    }

    /// DominatedView (the paper's E_B subgraph): batched lanes equal
    /// per-source runs, including sources outside any broker path.
    #[test]
    fn dominated_view_lanes_match_engine(edges in arb_edges(24, 90),
                                         sources in proptest::collection::hash_set(0u32..24, 1..16),
                                         brokers in proptest::collection::hash_set(0u32..24, 0..12)) {
        let g = build(24, &edges);
        let b = node_set(24, &brokers);
        let srcs = sources_of(&sources);
        let view = DominatedView::new(&g, &b);
        let dist = msbfs_distances(view, &srcs);
        for (lane, &s) in srcs.iter().enumerate() {
            prop_assert_eq!(&dist[lane], &engine_bfs(&view, s, u32::MAX));
        }
    }

    /// InducedView: disallowed sources seed nothing (all-`None` lanes),
    /// exactly like the per-source engine.
    #[test]
    fn induced_view_lanes_match_engine(edges in arb_edges(24, 90),
                                       sources in proptest::collection::hash_set(0u32..24, 1..16),
                                       allowed in proptest::collection::hash_set(0u32..24, 0..20)) {
        let g = build(24, &edges);
        let a = node_set(24, &allowed);
        let srcs = sources_of(&sources);
        let view = InducedView::new(&g, &a);
        let dist = msbfs_distances(view, &srcs);
        for (lane, &s) in srcs.iter().enumerate() {
            prop_assert_eq!(&dist[lane], &engine_bfs(&view, s, u32::MAX));
        }
    }

    /// MaskedView over DominatedView (the failover composition): batched
    /// lanes equal per-source runs with node and edge failures applied.
    #[test]
    fn masked_view_lanes_match_engine(edges in arb_edges(20, 70),
                                      sources in proptest::collection::hash_set(0u32..20, 1..16),
                                      brokers in proptest::collection::hash_set(0u32..20, 0..14),
                                      dead in proptest::collection::hash_set(0u32..20, 0..6),
                                      cut in proptest::collection::vec((0u32..20, 0u32..20), 0..10)) {
        let g = build(20, &edges);
        let b = node_set(20, &brokers);
        let failed_nodes = node_set(20, &dead);
        let failed_edges: BTreeSet<(u32, u32)> = cut
            .iter()
            .map(|&(x, y)| undirected_key(NodeId(x), NodeId(y)))
            .collect();
        let view = MaskedView::new(
            DominatedView::new(&g, &b),
            Some(&failed_nodes),
            Some(&failed_edges),
        );
        let srcs = sources_of(&sources);
        let dist = msbfs_distances(view, &srcs);
        for (lane, &s) in srcs.iter().enumerate() {
            prop_assert_eq!(&dist[lane], &engine_bfs(&view, s, u32::MAX));
        }
    }

    /// Forced top-down push and bottom-up pull produce the same
    /// distances as Auto — direction is a speed choice, never a result
    /// choice (the determinism argument in DESIGN.md).
    #[test]
    fn push_pull_and_auto_agree(edges in arb_edges(24, 90),
                                sources in proptest::collection::hash_set(0u32..24, 1..16),
                                brokers in proptest::collection::hash_set(0u32..24, 0..12),
                                depth in 0u32..6) {
        use netgraph::msbfs::Direction;
        let g = build(24, &edges);
        let b = node_set(24, &brokers);
        let srcs = sources_of(&sources);
        let view = DominatedView::new(&g, &b);
        let push = msbfs_forced(&view, &srcs, depth, Direction::Push);
        let pull = msbfs_forced(&view, &srcs, depth, Direction::Pull);
        let auto = msbfs_forced(&view, &srcs, depth, Direction::Auto);
        prop_assert_eq!(&push, &pull);
        prop_assert_eq!(&push, &auto);
    }

    /// Batch boundaries are invisible: splitting the same sources across
    /// two batches gives the same lanes as one batch. (The consumers
    /// rely on this when chunking source lists by [`netgraph::msbfs::LANES`].)
    #[test]
    fn batch_split_is_invisible(edges in arb_edges(24, 90),
                                sources in proptest::collection::hash_set(0u32..24, 2..16),
                                split in 1usize..15) {
        let g = build(24, &edges);
        let srcs = sources_of(&sources);
        let split = split.min(srcs.len() - 1);
        let view = FullView::new(&g);
        let whole = msbfs_distances(view, &srcs);
        let mut parts = msbfs_distances(view, &srcs[..split]);
        parts.extend(msbfs_distances(view, &srcs[split..]));
        prop_assert_eq!(whole, parts);
    }
}
