//! Property tests of the fault-injection layer: at every epoch of a
//! random [`FaultSchedule`] over a random graph, traversal through a
//! [`FaultView`] must equal a naive BFS on an *explicitly rebuilt*
//! surviving subgraph — a `Graph` constructed from scratch out of the
//! edges the schedule left alive. The rebuild shares no masking code
//! with the view, so an error in the incremental state bookkeeping
//! (apply/recover, group expansion, epoch ordering) cannot cancel out.
//!
//! The serialization properties at the bottom pin the other half of the
//! contract: a schedule survives a JSON round trip *semantically* — the
//! reloaded schedule replays to bit-identical per-epoch states, and
//! random access (`state_at`) agrees with incremental `replay`.

use netgraph::msbfs::Direction;
use netgraph::{
    undirected_key, with_arena, with_msbfs, FaultGroup, FaultSchedule, FaultState, FaultView,
    FullView, Graph, GraphBuilder, GraphView, NodeId,
};
use proptest::prelude::*;
use std::collections::VecDeque;

const N: u32 = 16;

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

/// Element events as `(epoch, fail-or-recover, vertex)`; the middle
/// coordinate is a coin (`0` = recover, otherwise fail) because the
/// offline proptest stand-in has no boolean strategy.
fn arb_node_events(n: u32, max_epoch: u32) -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0..max_epoch, 0..2u32, 0..n), 0..8)
}

fn arb_edge_events(n: u32, max_epoch: u32) -> impl Strategy<Value = Vec<(u32, u32, u32, u32)>> {
    proptest::collection::vec((0..max_epoch, 0..2u32, 0..n, 0..n), 0..8)
}

fn arb_group_events(max_epoch: u32) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..max_epoch, 0..2u32), 0..4)
}

/// Assemble a schedule from raw event material. Builder calls interleave
/// in this fixed order, so the within-epoch application order is a
/// deterministic function of the inputs.
fn build_schedule(
    n: u32,
    node_events: &[(u32, u32, u32)],
    edge_events: &[(u32, u32, u32, u32)],
    broker_events: &[(u32, u32, u32)],
    group_nodes: &[u32],
    group_edges: &[(u32, u32)],
    group_events: &[(u32, u32)],
) -> FaultSchedule {
    let mut s = FaultSchedule::new(n as usize);
    let gi = s.add_group(FaultGroup::new(
        "prop-group",
        group_nodes.iter().map(|&v| NodeId(v)).collect(),
        group_edges.iter().map(|&(u, v)| (NodeId(u), NodeId(v))),
    ));
    for &(e, fail, v) in node_events {
        if fail != 0 {
            s.fail_node(e, NodeId(v));
        } else {
            s.recover_node(e, NodeId(v));
        }
    }
    for &(e, fail, u, v) in edge_events {
        if fail != 0 {
            s.fail_edge(e, NodeId(u), NodeId(v));
        } else {
            s.recover_edge(e, NodeId(u), NodeId(v));
        }
    }
    for &(e, fail, v) in broker_events {
        if fail != 0 {
            s.fail_broker(e, NodeId(v));
        } else {
            s.recover_broker(e, NodeId(v));
        }
    }
    for &(e, fail) in group_events {
        if fail != 0 {
            s.fail_group(e, gi);
        } else {
            s.recover_group(e, gi);
        }
    }
    s
}

fn build(n: u32, edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

/// The surviving subgraph, rebuilt from scratch: same vertex set, only
/// the edges whose endpoints are up and whose key is uncut.
fn rebuild_survivors(g: &Graph, state: &FaultState) -> Graph {
    let mut b = GraphBuilder::new(g.node_count());
    for u in g.nodes() {
        if state.failed_nodes().contains(u) {
            continue;
        }
        for &v in g.neighbors(u) {
            if u <= v
                && !state.failed_nodes().contains(v)
                && !state.failed_edges().contains(&undirected_key(u, v))
            {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Hand-rolled queue BFS on the rebuilt subgraph — no engine code.
fn reference_bfs(g: &Graph, src: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    dist[src.index()] = Some(0u32);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].unwrap();
        for &v in g.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Reference distances through the fault mask: all-`None` for a downed
/// source (the view refuses to seed it), otherwise BFS on the rebuilt
/// survivor graph, where downed vertices are isolated and stay `None`.
fn reference_masked(g: &Graph, state: &FaultState, src: NodeId) -> Vec<Option<u32>> {
    if state.failed_nodes().contains(src) {
        return vec![None; g.node_count()];
    }
    reference_bfs(&rebuild_survivors(g, state), src)
}

fn engine_distances<V: GraphView>(view: &V, src: NodeId) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run(view, src);
        (0..view.node_count())
            .map(|v| arena.distance(NodeId(v as u32)))
            .collect()
    })
}

/// Per-lane msbfs distances with a forced expansion direction.
fn msbfs_with<V: GraphView>(view: &V, sources: &[NodeId], dir: Direction) -> Vec<Vec<Option<u32>>> {
    let n = view.node_count();
    let mut dist = vec![vec![None; n]; sources.len()];
    with_msbfs(|arena| {
        arena.run_with(view, sources, u32::MAX, dir, |wf| {
            let level = wf.level();
            wf.for_each_new(|v, lanes| {
                lanes.for_each_lane(|lane| {
                    dist[lane][v.index()] = Some(level);
                });
            });
        });
    });
    dist
}

proptest! {
    /// Engine BFS through a FaultView equals naive BFS on the rebuilt
    /// surviving subgraph, at every epoch of the schedule.
    #[test]
    fn fault_view_matches_rebuilt_subgraph(
        edges in arb_edges(N, 60),
        node_events in arb_node_events(N, 6),
        edge_events in arb_edge_events(N, 6),
        group_nodes in proptest::collection::vec(0..N, 0..4),
        group_edges in proptest::collection::vec((0..N, 0..N), 0..4),
        group_events in arb_group_events(6),
        src in 0..N,
    ) {
        let g = build(N, &edges);
        let schedule = build_schedule(
            N, &node_events, &edge_events, &[], &group_nodes, &group_edges, &group_events,
        );
        for epoch in 0..schedule.horizon() {
            let state = schedule.state_at(epoch);
            let view = FaultView::new(FullView::new(&g), &state);
            prop_assert_eq!(
                engine_distances(&view, NodeId(src)),
                reference_masked(&g, &state, NodeId(src)),
                "epoch {}", epoch
            );
        }
    }

    /// The 64-lane msbfs kernel agrees with the rebuilt subgraph in all
    /// three expansion directions. FaultView masks whole vertices and
    /// undirected edges, so symmetry is preserved and pull stays valid.
    #[test]
    fn msbfs_matches_rebuilt_subgraph_in_all_directions(
        edges in arb_edges(N, 60),
        node_events in arb_node_events(N, 5),
        edge_events in arb_edge_events(N, 5),
        group_nodes in proptest::collection::vec(0..N, 0..4),
        group_edges in proptest::collection::vec((0..N, 0..N), 0..4),
        group_events in arb_group_events(5),
        sources in proptest::collection::hash_set(0..N, 1..5),
    ) {
        let g = build(N, &edges);
        let schedule = build_schedule(
            N, &node_events, &edge_events, &[], &group_nodes, &group_edges, &group_events,
        );
        let srcs: Vec<NodeId> = sources.iter().map(|&s| NodeId(s)).collect();
        for epoch in 0..schedule.horizon() {
            let state = schedule.state_at(epoch);
            let view = FaultView::new(FullView::new(&g), &state);
            prop_assert!(view.is_symmetric());
            let want: Vec<Vec<Option<u32>>> = srcs
                .iter()
                .map(|&s| reference_masked(&g, &state, s))
                .collect();
            for dir in [Direction::Push, Direction::Pull, Direction::Auto] {
                prop_assert_eq!(
                    &msbfs_with(&view, &srcs, dir),
                    &want,
                    "epoch {} direction {:?}", epoch, dir
                );
            }
        }
    }

    /// JSON round trip preserves the schedule exactly: equal value,
    /// bit-identical replay states, and `state_at` random access agrees
    /// with the incremental replay on both copies. Broker events ride
    /// along here — they never mask the graph, but they must survive
    /// serialization like everything else.
    #[test]
    fn serialized_schedule_replays_identically(
        node_events in arb_node_events(N, 6),
        edge_events in arb_edge_events(N, 6),
        broker_events in arb_node_events(N, 6),
        group_nodes in proptest::collection::vec(0..N, 0..4),
        group_edges in proptest::collection::vec((0..N, 0..N), 0..4),
        group_events in arb_group_events(6),
    ) {
        let schedule = build_schedule(
            N, &node_events, &edge_events, &broker_events,
            &group_nodes, &group_edges, &group_events,
        );
        let json = serde_json::to_string(&schedule).unwrap();
        let reloaded: FaultSchedule = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(&reloaded, &schedule);

        let collect = |s: &FaultSchedule| {
            let mut states = Vec::new();
            s.replay(|st| states.push(st.clone()));
            states
        };
        let original = collect(&schedule);
        let replayed = collect(&reloaded);
        prop_assert_eq!(&original, &replayed);
        prop_assert_eq!(original.len() as u32, schedule.horizon());
        for (epoch, st) in original.iter().enumerate() {
            prop_assert_eq!(&schedule.state_at(epoch as u32), st);
        }
    }
}
