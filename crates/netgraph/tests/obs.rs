//! Correctness suite for `netgraph::obs`: bucket math, counter wrap
//! semantics, snapshot determinism under the parallel executor, and the
//! macro unit-expansion contract.
//!
//! The whole suite runs in BOTH feature states. With `obs` off the
//! registry is empty and `enabled()` is `false`; the tests then verify
//! exactly that (macros still compile, snapshots stay empty) instead of
//! skipping. Registry-touching tests serialize through [`REG_LOCK`]
//! because metrics are process-global and `cargo test` runs tests
//! concurrently within this binary.

use netgraph::graph::from_edges;
use netgraph::obs;
use netgraph::{msbfs, par, FullView, NodeId};
use std::sync::Mutex;

/// Serializes tests that reset / read the global metrics registry.
static REG_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    REG_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[test]
fn bucket_boundaries_are_log2() {
    // Bucket 0 is the exact-zero bucket; bucket i >= 1 spans
    // [2^(i-1), 2^i - 1].
    assert_eq!(obs::bucket_index(0), 0);
    assert_eq!(obs::bucket_index(1), 1);
    assert_eq!(obs::bucket_index(2), 2);
    assert_eq!(obs::bucket_index(3), 2);
    assert_eq!(obs::bucket_index(4), 3);
    assert_eq!(obs::bucket_index(7), 3);
    assert_eq!(obs::bucket_index(8), 4);
    assert_eq!(obs::bucket_index(u64::MAX), 64);
    for i in 0..obs::HISTOGRAM_BUCKETS {
        let low = obs::bucket_low(i);
        assert_eq!(obs::bucket_index(low), i, "lower bound of bucket {i}");
        if i >= 1 {
            // The value just below the bound belongs to the previous bucket.
            assert_eq!(obs::bucket_index(low - 1), i - 1, "below bucket {i}");
        }
    }
}

#[test]
fn macros_expand_to_unit_in_both_feature_states() {
    // The off-build macros expand to `()`; the on-build counter! and
    // histogram! evaluate to `()` too. This must compile either way.
    let () = netgraph::counter!("obs_test.unit");
    let () = netgraph::counter!("obs_test.unit", 3);
    let () = netgraph::histogram!("obs_test.unit_hist", 5);
    // span! yields a guard in obs builds and `()` otherwise; both bind.
    let _guard = netgraph::span!("obs_test.unit_span");
}

#[test]
fn counter_wraps_on_overflow() {
    let _g = lock();
    obs::reset();
    let () = netgraph::counter!("obs_test.overflow", u64::MAX);
    let () = netgraph::counter!("obs_test.overflow", 2);
    let snap = obs::snapshot();
    if obs::enabled() {
        // fetch_add wraps: MAX + 2 == 1.
        assert_eq!(snap.counter("obs_test.overflow"), Some(1));
    } else {
        assert_eq!(snap.counter("obs_test.overflow"), None);
        assert!(snap.counters.is_empty() && snap.histograms.is_empty());
    }
}

#[test]
fn histogram_records_land_in_documented_buckets() {
    let _g = lock();
    obs::reset();
    for v in [0u64, 1, 1, 3, 8, 1023] {
        let () = netgraph::histogram!("obs_test.hist", v);
        let _ = v; // the off-build macro does not evaluate its argument
    }
    let snap = obs::snapshot();
    if !obs::enabled() {
        assert!(snap.histogram("obs_test.hist").is_none());
        return;
    }
    let h = snap
        .histogram("obs_test.hist")
        .expect("histogram registered");
    assert_eq!(h.count, 6);
    assert_eq!(h.sum, 1036, "sum of 0 + 1 + 1 + 3 + 8 + 1023");
    let bucket = |low: u64| {
        h.buckets
            .iter()
            .find(|b| b.low == low)
            .map_or(0, |b| b.count)
    };
    assert_eq!(bucket(0), 1, "the zero sample");
    assert_eq!(bucket(1), 2, "the two 1s");
    assert_eq!(bucket(2), 1, "3 lands in [2, 3]");
    assert_eq!(bucket(8), 1, "8 lands in [8, 15]");
    assert_eq!(bucket(512), 1, "1023 lands in [512, 1023]");
    // Only non-empty buckets are reported, ascending by lower bound.
    assert_eq!(h.buckets.len(), 5);
    assert!(h.buckets.windows(2).all(|w| w[0].low < w[1].low));
    assert!((h.mean() - 1036.0 / 6.0).abs() < 1e-9);
}

/// The same msbfs + par workload at every thread count must produce the
/// same thread-count-invariant counters: the executor's chunking is
/// fixed, so work-shaped metrics may not depend on worker count.
#[test]
fn snapshot_counters_are_thread_count_invariant() {
    let _g = lock();
    // A ring plus chords: large enough for several BFS levels.
    let n = 256;
    let g = from_edges(
        n,
        (0..n as u32).flat_map(|i| {
            [
                (NodeId(i), NodeId((i + 1) % n as u32)),
                (NodeId(i), NodeId((i + 7) % n as u32)),
            ]
        }),
    );
    let sources: Vec<NodeId> = g.nodes().collect();

    let run = |threads: usize| {
        obs::reset();
        // Pool jobs are 'static: the closure owns its CSR clone.
        let g_owned = g.clone();
        let totals = par::map_chunks(&sources, msbfs::LANES, threads, move |batch| {
            msbfs::with_msbfs(|arena| arena.run(FullView::new(&g_owned), batch, u32::MAX, |_| {}))
        });
        let total: u64 = totals.iter().sum();
        assert_eq!(total, (n * n) as u64, "every lane reaches every vertex");
        let snap = obs::snapshot();
        [
            "msbfs.runs",
            "msbfs.levels",
            "msbfs.push_expansions",
            "msbfs.pull_expansions",
            "par.jobs",
            "par.chunks",
        ]
        .map(|name| snap.counter(name))
    };

    let base = run(1);
    if !obs::enabled() {
        assert_eq!(base, [None; 6]);
        return;
    }
    assert_eq!(base[0], Some((n / msbfs::LANES) as u64), "msbfs.runs");
    assert_eq!(base[5], Some((n / msbfs::LANES) as u64), "par.chunks");
    assert!(base[1].unwrap_or(0) > 0, "levels counted");
    for threads in [2usize, 4, 7] {
        assert_eq!(run(threads), base, "threads = {threads}");
    }
}

#[test]
fn snapshot_json_is_deterministic_and_wellformed() {
    let _g = lock();
    obs::reset();
    let () = netgraph::counter!("obs_test.json_b", 2);
    let () = netgraph::counter!("obs_test.json_a", 1);
    let () = netgraph::histogram!("obs_test.json_h", 9);
    let a = obs::snapshot();
    let b = obs::snapshot();
    assert_eq!(a, b, "back-to-back snapshots of quiescent state agree");
    assert_eq!(a.to_json(), b.to_json());
    if obs::enabled() {
        // Merged-by-name output is name-sorted regardless of record order.
        let names: Vec<&str> = a
            .counters
            .iter()
            .map(|c| c.name.as_str())
            .filter(|n| n.starts_with("obs_test.json"))
            .collect();
        assert_eq!(names, ["obs_test.json_a", "obs_test.json_b"]);
        assert!(a.to_json().contains("\"obs_enabled\": true"));
    } else {
        assert!(a.to_json().contains("\"obs_enabled\": false"));
    }
    // The emitted JSON must parse with the workspace JSON reader.
    let parsed: serde_json::Value =
        serde_json::from_str(&a.to_json()).expect("snapshot JSON parses");
    assert!(parsed["counters"].as_object().is_some() || a.counters.is_empty());
}

#[test]
fn reset_zeroes_but_keeps_registration() {
    let _g = lock();
    obs::reset();
    let () = netgraph::counter!("obs_test.reset_me", 41);
    obs::reset();
    let snap = obs::snapshot();
    if obs::enabled() {
        // Still listed (the name survives), but back to zero.
        assert_eq!(snap.counter("obs_test.reset_me"), Some(0));
    } else {
        assert_eq!(snap.counter("obs_test.reset_me"), None);
    }
}
