//! Property tests of the cache-aware CSR permutation
//! ([`Graph::permute_by_degree`]): the degree-descending relabeling must
//! be a bijection whose round-trip maps ids faithfully through all four
//! [`GraphView`]s — the neighborhood any view exposes at an original id
//! equals, under the mapping, the neighborhood the corresponding view
//! over the permuted graph exposes at the permuted id.

use netgraph::{
    undirected_key, DominatedView, FullView, Graph, GraphBuilder, GraphView, InducedView,
    MaskedView, NodeId, NodeSet, Permuted,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet};

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

fn build(n: u32, edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

fn node_set(n: usize, ids: &HashSet<u32>) -> NodeSet {
    NodeSet::from_iter_with_capacity(n, ids.iter().map(|&i| NodeId(i)))
}

fn neighbors_of<V: GraphView>(view: &V, v: NodeId) -> BTreeSet<u32> {
    let mut out = BTreeSet::new();
    view.for_each_neighbor(v, |w| {
        out.insert(w.0);
    });
    out
}

/// Every original id must see the same membership and (mapped back) the
/// same neighborhood through `perm_view` as through `orig`.
fn assert_view_round_trip<VO: GraphView, VP: GraphView>(
    orig: &VO,
    perm_view: &VP,
    p: &Permuted,
    label: &str,
) {
    for raw in 0..orig.node_count() as u32 {
        let v = NodeId(raw);
        let new = p.to_new(v);
        assert_eq!(p.to_old(new), v, "{label}: id round trip broke at {v}");
        assert_eq!(
            orig.contains_node(v),
            perm_view.contains_node(new),
            "{label}: membership diverged at {v}"
        );
        let want = neighbors_of(orig, v);
        let got: BTreeSet<u32> = neighbors_of(perm_view, new)
            .into_iter()
            .map(|w| p.to_old(NodeId(w)).0)
            .collect();
        assert_eq!(want, got, "{label}: neighborhood diverged at {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permutation_round_trips_ids_on_all_four_views(
        edges in arb_edges(48, 160),
        brokers in proptest::collection::hash_set(0u32..48, 1..20),
        allowed in proptest::collection::hash_set(0u32..48, 1..30),
        failed in proptest::collection::hash_set(0u32..48, 0..10),
    ) {
        let g = build(48, &edges);
        let p = g.permute_by_degree();
        let n = g.node_count();

        // The mappings are mutually inverse bijections and the permuted
        // graph is the same graph up to relabeling.
        for v in g.nodes() {
            prop_assert_eq!(p.to_old(p.to_new(v)), v);
            prop_assert_eq!(g.degree(v), p.graph().degree(p.to_new(v)));
        }
        prop_assert_eq!(p.graph().node_count(), n);
        prop_assert_eq!(p.graph().edge_count(), g.edge_count());

        let brokers_o = node_set(n, &brokers);
        let allowed_o = node_set(n, &allowed);
        let failed_o = node_set(n, &failed);
        let brokers_p = p.map_set(&brokers_o);
        let allowed_p = p.map_set(&allowed_o);
        let failed_p = p.map_set(&failed_o);
        let failed_edges_o: BTreeSet<(u32, u32)> = g
            .edges()
            .take(5)
            .map(|(u, v)| undirected_key(u, v))
            .collect();
        let failed_edges_p: BTreeSet<(u32, u32)> = g
            .edges()
            .take(5)
            .map(|(u, v)| undirected_key(p.to_new(u), p.to_new(v)))
            .collect();

        assert_view_round_trip(&FullView::new(&g), &FullView::new(p.graph()), &p, "full");
        assert_view_round_trip(
            &DominatedView::new(&g, &brokers_o),
            &DominatedView::new(p.graph(), &brokers_p),
            &p,
            "dominated",
        );
        assert_view_round_trip(
            &InducedView::new(&g, &allowed_o),
            &InducedView::new(p.graph(), &allowed_p),
            &p,
            "induced",
        );
        assert_view_round_trip(
            &MaskedView::new(FullView::new(&g), Some(&failed_o), Some(&failed_edges_o)),
            &MaskedView::new(FullView::new(p.graph()), Some(&failed_p), Some(&failed_edges_p)),
            &p,
            "masked",
        );
    }

    #[test]
    fn unpermute_round_trips_per_node_vectors(edges in arb_edges(32, 80)) {
        let g = build(32, &edges);
        let p = g.permute_by_degree();
        let per_old: Vec<u32> = (0..g.node_count() as u32).collect();
        let per_new: Vec<u32> = (0..g.node_count())
            .map(|new| per_old[p.to_old(NodeId(new as u32)).index()])
            .collect();
        prop_assert_eq!(p.unpermute(&per_new), per_old);
    }
}
