//! Property tests of the traversal engine: every [`GraphView`] BFS must
//! match a naive reference implementation built straight from the view's
//! documented edge/vertex predicate, on random graphs and random masks.
//!
//! The reference deliberately shares no code with the engine (hand-rolled
//! queue, `HashMap` distances) so a bug in the arena bookkeeping — epoch
//! reuse, parent tracking, depth bounds — cannot cancel out.

use netgraph::{
    undirected_key, with_arena, DominatedView, FullView, Graph, GraphBuilder, GraphView,
    InducedView, MaskedView, NodeId, NodeSet, TraversalArena,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashSet, VecDeque};

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n, 0..n), 0..max_edges)
}

fn build(n: u32, edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        b.add_edge(NodeId(u), NodeId(v));
    }
    b.build()
}

fn node_set(n: usize, ids: &HashSet<u32>) -> NodeSet {
    NodeSet::from_iter_with_capacity(n, ids.iter().map(|&i| NodeId(i)))
}

/// Naive bounded BFS over `(node_ok, edge_ok)` predicates: the semantics
/// each view documents, implemented without the engine.
fn reference_bfs(
    g: &Graph,
    src: NodeId,
    max_depth: u32,
    node_ok: impl Fn(NodeId) -> bool,
    edge_ok: impl Fn(NodeId, NodeId) -> bool,
) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.node_count()];
    if !node_ok(src) {
        return dist;
    }
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].unwrap();
        if du >= max_depth {
            continue;
        }
        for &v in g.neighbors(u) {
            if dist[v.index()].is_none() && node_ok(v) && edge_ok(u, v) {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Engine distances via a pooled arena, as a comparable vector.
fn engine_bfs<V: GraphView>(view: &V, src: NodeId, max_depth: u32) -> Vec<Option<u32>> {
    with_arena(|arena| {
        arena.run_bounded(view, src, max_depth);
        (0..view.node_count())
            .map(|v| arena.distance(NodeId(v as u32)))
            .collect()
    })
}

proptest! {
    /// FullView BFS equals the unfiltered reference at every depth bound.
    #[test]
    fn full_view_matches_reference(edges in arb_edges(24, 90), src in 0u32..24,
                                   depth in 0u32..6) {
        let g = build(24, &edges);
        let eng = engine_bfs(&FullView::new(&g), NodeId(src), depth);
        let refd = reference_bfs(&g, NodeId(src), depth, |_| true, |_, _| true);
        prop_assert_eq!(eng, refd);
    }

    /// DominatedView BFS equals the reference with the paper's edge
    /// predicate `u ∈ B ∨ v ∈ B`.
    #[test]
    fn dominated_view_matches_reference(edges in arb_edges(24, 90), src in 0u32..24,
                                        brokers in proptest::collection::hash_set(0u32..24, 0..12)) {
        let g = build(24, &edges);
        let b = node_set(24, &brokers);
        let eng = engine_bfs(&DominatedView::new(&g, &b), NodeId(src), u32::MAX);
        let refd = reference_bfs(&g, NodeId(src), u32::MAX,
            |_| true,
            |u, v| b.contains(u) || b.contains(v));
        prop_assert_eq!(eng, refd);
    }

    /// InducedView BFS equals the reference restricted to allowed
    /// vertices (disallowed sources reach nothing).
    #[test]
    fn induced_view_matches_reference(edges in arb_edges(24, 90), src in 0u32..24,
                                      allowed in proptest::collection::hash_set(0u32..24, 0..20)) {
        let g = build(24, &edges);
        let a = node_set(24, &allowed);
        let eng = engine_bfs(&InducedView::new(&g, &a), NodeId(src), u32::MAX);
        let refd = reference_bfs(&g, NodeId(src), u32::MAX,
            |v| a.contains(v),
            |u, v| a.contains(u) && a.contains(v));
        prop_assert_eq!(eng, refd);
    }

    /// MaskedView over DominatedView (the failover-planning composition)
    /// equals the reference with both masks applied on top of E_B.
    #[test]
    fn masked_view_matches_reference(edges in arb_edges(20, 70), src in 0u32..20,
                                     brokers in proptest::collection::hash_set(0u32..20, 0..14),
                                     dead in proptest::collection::hash_set(0u32..20, 0..6),
                                     cut in proptest::collection::vec((0u32..20, 0u32..20), 0..10)) {
        let g = build(20, &edges);
        let b = node_set(20, &brokers);
        let failed_nodes = node_set(20, &dead);
        let failed_edges: BTreeSet<(u32, u32)> = cut
            .iter()
            .map(|&(x, y)| undirected_key(NodeId(x), NodeId(y)))
            .collect();
        let view = MaskedView::new(
            DominatedView::new(&g, &b),
            Some(&failed_nodes),
            Some(&failed_edges),
        );
        let eng = engine_bfs(&view, NodeId(src), u32::MAX);
        let refd = reference_bfs(&g, NodeId(src), u32::MAX,
            |v| !failed_nodes.contains(v),
            |u, v| (b.contains(u) || b.contains(v))
                && !failed_edges.contains(&undirected_key(u, v)));
        prop_assert_eq!(eng, refd);
    }

    /// Multi-source BFS equals the minimum over per-source runs.
    #[test]
    fn multi_source_is_pointwise_min(edges in arb_edges(20, 70),
                                     sources in proptest::collection::hash_set(0u32..20, 1..6)) {
        let g = build(20, &edges);
        let srcs: Vec<NodeId> = sources.iter().map(|&s| NodeId(s)).collect();
        let mut arena = TraversalArena::new();
        arena.run_multi(FullView::new(&g), srcs.iter().copied());
        for v in g.nodes() {
            let best = srcs
                .iter()
                .filter_map(|&s| reference_bfs(&g, s, u32::MAX, |_| true, |_, _| true)[v.index()])
                .min();
            prop_assert_eq!(arena.distance(v), best);
        }
    }

    /// `run_to_target` finds a target at the true shortest target
    /// distance, and `path_to` returns a genuine shortest path in the
    /// view: correct endpoints, every hop a surviving edge, length equal
    /// to the BFS distance.
    #[test]
    fn target_search_and_path(edges in arb_edges(20, 70), src in 0u32..20, dst in 0u32..20,
                              brokers in proptest::collection::hash_set(0u32..20, 0..14)) {
        let g = build(20, &edges);
        let b = node_set(20, &brokers);
        let view = DominatedView::new(&g, &b);
        let refd = reference_bfs(&g, NodeId(src), u32::MAX,
            |_| true,
            |u, v| b.contains(u) || b.contains(v));

        let mut arena = TraversalArena::new();
        let hit = arena.run_to_target(view, NodeId(src), |v| v == NodeId(dst));
        match refd[dst as usize] {
            None => prop_assert_eq!(hit, None),
            Some(d) => {
                prop_assert_eq!(hit, Some(NodeId(dst)));
                let path = arena.path_to(NodeId(dst)).expect("path to reached target");
                prop_assert_eq!(path.first().copied(), Some(NodeId(src)));
                prop_assert_eq!(path.last().copied(), Some(NodeId(dst)));
                prop_assert_eq!(path.len() as u32, d + 1);
                for w in path.windows(2) {
                    prop_assert!(g.has_edge(w[0], w[1]));
                    prop_assert!(b.contains(w[0]) || b.contains(w[1]));
                }
            }
        }
    }

    /// Arena reuse is invisible: running on graph A, then B, then A again
    /// gives the same answers as a fresh arena on A.
    #[test]
    fn arena_reuse_is_stateless(edges_a in arb_edges(18, 60), edges_b in arb_edges(25, 80),
                                src in 0u32..18) {
        let ga = build(18, &edges_a);
        let gb = build(25, &edges_b);
        let mut fresh = TraversalArena::new();
        fresh.run(FullView::new(&ga), NodeId(src));
        let want: Vec<Option<u32>> = ga.nodes().map(|v| fresh.distance(v)).collect();

        let mut reused = TraversalArena::new();
        reused.run(FullView::new(&ga), NodeId(src));
        reused.run(FullView::new(&gb), NodeId(0));
        reused.run(FullView::new(&ga), NodeId(src));
        let got: Vec<Option<u32>> = ga.nodes().map(|v| reused.distance(v)).collect();
        prop_assert_eq!(got, want);
    }
}
