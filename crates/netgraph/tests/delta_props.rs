//! Property tests of the epochal delta layer: folding a random delta
//! sequence through [`Graph::apply_delta`] must equal a naive reference
//! model that tracks the surviving edge set in a `BTreeSet` — the
//! reference shares no code with the CSR rebuild, so a bookkeeping error
//! in the diff application (tombstone filtering, cut-vs-add precedence,
//! id stability) cannot cancel out. The [`DeltaView`] overlay is pinned
//! against the rebuilt graph at every prefix: identical adjacency,
//! identical BFS distances through the shared traversal arena.

use netgraph::{
    bfs_distances, undirected_key, with_arena, DeltaView, Graph, GraphBuilder, GraphDelta,
    GraphView, NodeId, Validate,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: u32 = 12;

/// Raw material for one epoch's delta: fresh-node count plus edge/node
/// edits as unreduced integers (taken modulo the running vertex count at
/// build time, so every epoch's ops are in range by construction).
type RawDelta = (u32, Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<u32>);

fn arb_edges(max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..N, 0..N), 0..max_edges)
}

fn arb_deltas() -> impl Strategy<Value = Vec<RawDelta>> {
    proptest::collection::vec(
        (
            0..3u32,
            proptest::collection::vec((0..1000u32, 0..1000u32), 0..6),
            proptest::collection::vec((0..1000u32, 0..1000u32), 0..4),
            proptest::collection::vec(0..1000u32, 0..3),
        ),
        0..6,
    )
}

fn base_graph(edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(N as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

/// Reduce one epoch's raw material into an in-range [`GraphDelta`].
fn lower(raw: &RawDelta, base_nodes: usize) -> GraphDelta {
    let (new_nodes, adds, rems, dead) = raw;
    let mut d = GraphDelta::new(base_nodes);
    for _ in 0..*new_nodes {
        d.add_node();
    }
    let n = d.node_count_after() as u32;
    for &(u, v) in adds {
        d.add_edge(NodeId(u % n), NodeId(v % n));
    }
    for &(u, v) in rems {
        d.remove_edge(NodeId(u % n), NodeId(v % n));
    }
    for &v in dead {
        d.remove_node(NodeId(v % n));
    }
    d
}

/// The reference model: vertex count + surviving normalized edge keys.
struct RefModel {
    n: usize,
    edges: BTreeSet<(u32, u32)>,
}

impl RefModel {
    fn of(g: &Graph) -> Self {
        RefModel {
            n: g.node_count(),
            edges: g.edges().map(|(u, v)| undirected_key(u, v)).collect(),
        }
    }

    /// Fixed application order (the documented delta contract): grow,
    /// add edges, cut edges, tombstone vertices.
    fn apply(&mut self, d: &GraphDelta) {
        self.n = d.node_count_after();
        self.edges.extend(d.added_edges().iter().copied());
        for k in d.removed_edges() {
            self.edges.remove(k);
        }
        let dead: BTreeSet<u32> = d.removed_nodes().iter().map(|v| v.0).collect();
        self.edges
            .retain(|&(a, b)| !dead.contains(&a) && !dead.contains(&b));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Folding deltas through the CSR rebuild equals the BTreeSet model
    /// at every prefix, and the overlay view shows the same adjacency.
    #[test]
    fn apply_delta_matches_reference_at_every_prefix(
        edges in arb_edges(20),
        raws in arb_deltas(),
    ) {
        let mut g = base_graph(&edges);
        let mut model = RefModel::of(&g);
        for raw in &raws {
            let d = lower(raw, g.node_count());
            prop_assert!(d.audit().is_ok());
            let next = g.apply_delta(&d);
            model.apply(&d);

            prop_assert_eq!(next.node_count(), model.n);
            let got: BTreeSet<(u32, u32)> =
                next.edges().map(|(u, v)| undirected_key(u, v)).collect();
            prop_assert_eq!(&got, &model.edges);

            // Tombstones keep their id but lose their adjacency.
            for &v in d.removed_nodes() {
                prop_assert_eq!(next.degree(v), 0);
            }

            // The overlay view agrees with the rebuilt graph, vertex by
            // vertex and distance by distance.
            let view = DeltaView::new(&g, &d);
            prop_assert_eq!(view.node_count(), next.node_count());
            for v in next.nodes() {
                let mut nbs: Vec<NodeId> = Vec::new();
                view.for_each_neighbor(v, |u| nbs.push(u));
                nbs.sort_unstable();
                prop_assert_eq!(nbs.as_slice(), next.neighbors(v));
            }
            let src = NodeId(0);
            let via_view = with_arena(|a| {
                a.run(&view, src);
                (0..view.node_count())
                    .map(|v| a.distance(NodeId::from(v)))
                    .collect::<Vec<_>>()
            });
            // A tombstoned source is *excluded* by the view (contains_node
            // false, traversal yields nothing) but survives as an isolated
            // vertex in the rebuilt graph (distance 0 to itself).
            let expect = if d.removed_nodes().contains(&src) {
                vec![None; next.node_count()]
            } else {
                bfs_distances(&next, src)
            };
            prop_assert_eq!(via_view, expect);

            g = next;
        }
    }

    /// A delta sequence survives JSON bit-identically: serialize, parse,
    /// reserialize — both the values and the byte strings must match.
    #[test]
    fn delta_stream_json_round_trips_bit_identically(
        edges in arb_edges(16),
        raws in arb_deltas(),
    ) {
        let mut g = base_graph(&edges);
        let mut deltas: Vec<GraphDelta> = Vec::new();
        for raw in &raws {
            let d = lower(raw, g.node_count());
            g = g.apply_delta(&d);
            deltas.push(d);
        }
        let json = serde_json::to_string(&deltas).expect("serialize");
        let back: Vec<GraphDelta> = serde_json::from_str(&json).expect("parse");
        prop_assert_eq!(&back, &deltas);
        let again = serde_json::to_string(&back).expect("reserialize");
        prop_assert_eq!(again, json);
    }
}
