//! Differential property tests of the incremental maintenance engine:
//! for *every prefix* of an arbitrary delta sequence, the maintained
//! broker set is compared against a full greedy recompute on the same
//! prefix graph. Both regimes are pinned on every sequence:
//!
//! - `rebuild_fraction = 0` forces the exact path each epoch — the
//!   maintained selection must equal [`brokerset::greedy_mcb`]'s output
//!   *in order*, not just as a set;
//! - `rebuild_fraction > 1` forbids rebuilds — the patched set must stay
//!   within a pinned relative coverage gap of the recompute, and its
//!   [`brokerset::MaintenanceCertificate`] (with that gap bound) must
//!   audit clean, so the certificate machinery is exercised on every
//!   prefix too.
//!
//! A third test drives the engine with *realistic* churn — delta streams
//! from [`topology::evolve`] — and pins that those streams survive JSON
//! bit-identically alongside the differential check.

use brokerset::{greedy_mcb, BrokerMaintainer, MaintainConfig};
use netgraph::{Graph, GraphBuilder, GraphDelta, NodeId, Validate};
use proptest::prelude::*;
use std::collections::BTreeSet;
use topology::{evolve, GrowthConfig, InternetConfig, Scale};

const N: u32 = 24;
const K: usize = 4;

/// Pinned relative coverage-gap bound for the never-rebuild regime
/// under *adversarial* deltas (dense waves of deaths and cuts on
/// 24-vertex graphs, where the exact greedy repositions every broker
/// and the absolute coverage denominators are tiny). The lazy patch
/// path is heuristic between rebuilds; the bound is asserted (not just
/// recorded) on every prefix.
const ADVERSARIAL_GAP_BOUND: f64 = 0.5;

/// Pinned gap bound under *realistic* churn ([`topology::evolve`]
/// streams, where each epoch touches a small fraction of the graph).
const GAP_BOUND: f64 = 0.25;

type RawDelta = (u32, Vec<(u32, u32)>, Vec<(u32, u32)>, Vec<u32>);

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..N, 0..N), 0..40)
}

fn arb_deltas() -> impl Strategy<Value = Vec<RawDelta>> {
    proptest::collection::vec(
        (
            0..3u32,
            proptest::collection::vec((0..1000u32, 0..1000u32), 0..8),
            proptest::collection::vec((0..1000u32, 0..1000u32), 0..5),
            proptest::collection::vec(0..1000u32, 0..3),
        ),
        1..6,
    )
}

fn base_graph(edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(N as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

fn lower(raw: &RawDelta, base_nodes: usize) -> GraphDelta {
    let (new_nodes, adds, rems, dead) = raw;
    let mut d = GraphDelta::new(base_nodes);
    for _ in 0..*new_nodes {
        d.add_node();
    }
    let n = d.node_count_after() as u32;
    for &(u, v) in adds {
        d.add_edge(NodeId(u % n), NodeId(v % n));
    }
    for &(u, v) in rems {
        d.remove_edge(NodeId(u % n), NodeId(v % n));
    }
    for &v in dead {
        d.remove_node(NodeId(v % n));
    }
    d
}

fn coverage_of(g: &Graph, brokers: &[NodeId]) -> usize {
    let mut covered: BTreeSet<NodeId> = BTreeSet::new();
    for &b in brokers {
        covered.insert(b);
        covered.extend(g.neighbors(b).iter().copied());
    }
    covered.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `rebuild_fraction = 0`: every epoch takes the exact path, so the
    /// maintained selection must equal the from-scratch greedy *order*
    /// at every prefix.
    #[test]
    fn always_rebuild_equals_full_recompute(
        edges in arb_edges(),
        raws in arb_deltas(),
    ) {
        let mut g = base_graph(&edges);
        let mut m = BrokerMaintainer::new(
            &g,
            K,
            MaintainConfig { rebuild_fraction: 0.0 },
        );
        let initial = greedy_mcb(&g, K);
        prop_assert_eq!(m.brokers(), initial.order());
        for raw in &raws {
            let d = lower(raw, g.node_count());
            let next = g.apply_delta(&d);
            let r = m.apply(&g, &next, &d).clone();
            prop_assert!(r.recomputed);
            let full = greedy_mcb(&next, K);
            prop_assert_eq!(m.brokers(), full.order());
            prop_assert_eq!(m.coverage(), coverage_of(&next, full.order()));
            prop_assert!(m.certify(&next).with_gap_bound(0.0).audit().is_ok());
            g = next;
        }
    }

    /// `rebuild_fraction = 1.1`: rebuilds are forbidden, so every epoch
    /// takes the lazy patch path; the coverage gap vs the exact greedy
    /// must stay within the pinned bound at every prefix, and the
    /// gap-bounded certificate must audit clean.
    #[test]
    fn never_rebuild_stays_within_gap_bound(
        edges in arb_edges(),
        raws in arb_deltas(),
    ) {
        let mut g = base_graph(&edges);
        let mut m = BrokerMaintainer::new(
            &g,
            K,
            MaintainConfig { rebuild_fraction: 1.1 },
        );
        for raw in &raws {
            let d = lower(raw, g.node_count());
            let next = g.apply_delta(&d);
            let r = m.apply(&g, &next, &d).clone();
            prop_assert!(!r.recomputed);
            prop_assert!(m.brokers().len() <= K);

            let full = greedy_mcb(&next, K);
            let full_cov = coverage_of(&next, full.order());
            let inc_cov = m.coverage();
            prop_assert_eq!(inc_cov, coverage_of(&next, m.brokers()));
            let gap = if full_cov == 0 {
                0.0
            } else {
                (full_cov as f64 - inc_cov as f64) / full_cov as f64
            };
            prop_assert!(
                gap <= ADVERSARIAL_GAP_BOUND,
                "epoch {}: incremental coverage {} vs full {} (gap {:.4})",
                r.epoch, inc_cov, full_cov, gap
            );
            prop_assert!(m.certify(&next).with_gap_bound(ADVERSARIAL_GAP_BOUND).audit().is_ok());
            g = next;
        }
        // The ledger saw one report per epoch, in epoch order.
        prop_assert_eq!(m.ledger().reports().len(), raws.len());
    }
}

/// Realistic churn: evolve a Tiny synthetic Internet for 12 epochs, run
/// the maintainer with the default rebuild threshold (whichever path
/// each epoch picks, its invariant is asserted), and pin that the
/// generating stream round-trips through JSON bit-identically.
#[test]
fn evolve_stream_differential_and_bit_identical_json() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(11);
    let cfg = GrowthConfig::calibrated(12, net.graph().node_count());
    let stream = evolve(&net, &cfg, 77);
    assert!(stream.audit().is_ok());

    // JSON bit-identity of the full stream.
    let json = serde_json::to_string(&stream).expect("serialize");
    let back: topology::DeltaStream = serde_json::from_str(&json).expect("parse");
    let again = serde_json::to_string(&back).expect("reserialize");
    assert_eq!(json, again);

    let k = 24;
    let mut g = net.graph().clone();
    let mut m = BrokerMaintainer::new(&g, k, MaintainConfig::default());
    assert_eq!(m.brokers(), greedy_mcb(&g, k).order());
    let mut patched_epochs = 0usize;
    for d in stream.lower() {
        let next = g.apply_delta(&d);
        let r = m.apply(&g, &next, &d).clone();
        let full = greedy_mcb(&next, k);
        if r.recomputed {
            assert_eq!(m.brokers(), full.order(), "epoch {}", r.epoch);
        } else {
            patched_epochs += 1;
            let full_cov = coverage_of(&next, full.order());
            let gap = (full_cov as f64 - m.coverage() as f64) / full_cov as f64;
            assert!(
                gap <= GAP_BOUND,
                "epoch {}: gap {gap:.4} above bound",
                r.epoch
            );
        }
        assert!(m.certify(&next).with_gap_bound(GAP_BOUND).audit().is_ok());
        g = next;
    }
    // Realistic growth deltas are small relative to the graph: the lazy
    // path must actually be exercised, or this test proves nothing.
    assert!(patched_epochs >= 10, "only {patched_epochs} patched epochs");
    assert_eq!(m.epoch() as usize, stream.deltas().len());
}
