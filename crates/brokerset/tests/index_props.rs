//! Differential property tests of the hop-bounded reachability index:
//! [`ReachIndex::query`] must equal an independent queue-BFS oracle
//! (and the shipping msbfs oracle [`brokerset::exact_query`]) on random
//! graphs, random rosters, random fault states, and after incremental
//! invalidation — [`ReachIndex::apply_state`] across a random epoch
//! sequence and [`ReachIndex::apply_delta`] across random topology
//! deltas must answer exactly like an index rebuilt from scratch.
//!
//! The reference oracle below shares no code with the index: it builds
//! an explicit masked adjacency list and runs a `VecDeque` BFS, so a
//! bookkeeping error in the shard layout, the 64-lane msbfs kernel, or
//! the dirty-ball invalidation test cannot cancel out.

use brokerset::{exact_query, ReachIndex, StitchAnswer};
use netgraph::{
    undirected_key, FaultSchedule, FaultState, Graph, GraphBuilder, GraphDelta, NodeId, NodeSet,
    Validate,
};
use proptest::prelude::*;
use std::collections::{BTreeSet, VecDeque};

const N: u32 = 14;
const MAX_L: usize = 4;

// -----------------------------------------------------------------
// Strategies
// -----------------------------------------------------------------

fn arb_edges(max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..N, 0..N), 0..max_edges)
}

fn arb_brokers() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(0..N, 1..5)
}

/// One epoch's raw fault events: broker defections, node failures,
/// edge cuts (values reduced modulo the ranges at build time).
type RawEpoch = (Vec<u32>, Vec<u32>, Vec<(u32, u32)>);

fn arb_epochs() -> impl Strategy<Value = Vec<RawEpoch>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0..N, 0..3),
            proptest::collection::vec(0..N, 0..3),
            proptest::collection::vec((0..N, 0..N), 0..3),
        ),
        1..4,
    )
}

fn base_graph(edges: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(N as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

fn broker_set(ids: &[u32], n: usize) -> NodeSet {
    NodeSet::from_iter_with_capacity(n, ids.iter().map(|&b| NodeId(b % n as u32)))
}

/// A cumulative schedule: epoch `e`'s events stay in force from `e` on
/// (recoveries are exercised by the serve bench and unit tests; here the
/// differential target is arbitrary *states*, which accumulation plus
/// random case sampling covers, including the all-clear epoch 0).
fn schedule_of(epochs: &[RawEpoch], n: usize) -> FaultSchedule {
    let mut sched = FaultSchedule::new(n);
    for (i, (defects, downs, cuts)) in epochs.iter().enumerate() {
        let e = i as u32 + 1;
        for &b in defects {
            sched.fail_broker(e, NodeId(b));
        }
        for &v in downs {
            sched.fail_node(e, NodeId(v));
        }
        for &(u, v) in cuts {
            if u != v {
                sched.fail_edge(e, NodeId(u), NodeId(v));
            }
        }
    }
    sched.set_horizon(epochs.len() as u32);
    sched
}

// -----------------------------------------------------------------
// The independent oracle
// -----------------------------------------------------------------

/// Explicit adjacency of the dominated subgraph under a fault state:
/// an edge survives iff neither endpoint is failed, it is not cut, and
/// at least one endpoint is a live broker.
fn masked_adjacency(g: &Graph, alive: &BTreeSet<u32>, state: &FaultState) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); g.node_count()];
    for (u, v) in g.edges() {
        if state.failed_nodes().contains(u) || state.failed_nodes().contains(v) {
            continue;
        }
        if state.failed_edges().contains(&undirected_key(u, v)) {
            continue;
        }
        if !alive.contains(&u.0) && !alive.contains(&v.0) {
            continue;
        }
        adj[u.index()].push(v.index());
        adj[v.index()].push(u.index());
    }
    adj
}

fn ref_bfs(adj: &[Vec<usize>], src: usize) -> Vec<Option<u32>> {
    let mut dist = vec![None; adj.len()];
    dist[src] = Some(0);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertices have distances");
        for &v in &adj[u] {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The full reference answer: plain BFS from both endpoints over the
/// explicit masked adjacency, minimized over live brokers ascending
/// (ties already resolved by iteration order: first strictly-smaller
/// total wins, equal totals keep the smaller broker id).
fn ref_query(
    g: &Graph,
    brokers: &NodeSet,
    state: &FaultState,
    s: u32,
    t: u32,
    l: usize,
) -> Option<StitchAnswer> {
    let n = g.node_count();
    if s as usize >= n || t as usize >= n {
        return None;
    }
    if state.failed_nodes().contains(NodeId(s)) || state.failed_nodes().contains(NodeId(t)) {
        return None;
    }
    if s == t {
        return Some(StitchAnswer {
            broker: NodeId(s),
            hops_s: 0,
            hops_t: 0,
        });
    }
    let alive: BTreeSet<u32> = brokers
        .iter()
        .filter(|&b| !state.failed_brokers().contains(b) && !state.failed_nodes().contains(b))
        .map(|b| b.0)
        .collect();
    let adj = masked_adjacency(g, &alive, state);
    let ds = ref_bfs(&adj, s as usize);
    let dt = ref_bfs(&adj, t as usize);
    let mut best: Option<StitchAnswer> = None;
    for &b in &alive {
        let (Some(hs), Some(ht)) = (ds[b as usize], dt[b as usize]) else {
            continue;
        };
        let total = hs + ht;
        if total as usize <= l && best.as_ref().is_none_or(|a| total < a.hops()) {
            best = Some(StitchAnswer {
                broker: NodeId(b),
                hops_s: hs,
                hops_t: ht,
            });
        }
    }
    best
}

/// Every (s, t) pair including out-of-range ids, at two hop bounds.
fn query_grid() -> impl Iterator<Item = (u32, u32, usize)> {
    (0..N + 2).flat_map(|s| (0..N + 2).flat_map(move |t| [1, MAX_L].map(|l| (s, t, l))))
}

fn assert_index_matches_oracles(
    idx: &ReachIndex,
    g: &Graph,
    brokers: &NodeSet,
    state: &FaultState,
) {
    for (s, t, l) in query_grid() {
        let got = idx.query(NodeId(s), NodeId(t), l);
        let want = ref_query(g, brokers, state, s, t, l);
        assert_eq!(
            got,
            want,
            "index diverged from BFS oracle at ({s}, {t}, {l}), epoch {}",
            state.epoch()
        );
        let msbfs = exact_query(g, brokers, state, NodeId(s), NodeId(t), l);
        assert_eq!(
            want, msbfs,
            "msbfs oracle diverged from BFS oracle at ({s}, {t}, {l})"
        );
    }
}

// -----------------------------------------------------------------
// Properties
// -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A freshly built index answers exactly like both oracles on the
    /// clear state and under every epoch of a random fault schedule
    /// (built fresh per epoch — the invalidation path has its own test).
    #[test]
    fn fresh_index_matches_oracle_under_faults(
        edges in arb_edges(26),
        roster in arb_brokers(),
        epochs in arb_epochs(),
    ) {
        let g = base_graph(&edges);
        let brokers = broker_set(&roster, g.node_count());
        let sched = schedule_of(&epochs, g.node_count());
        for epoch in 0..=sched.horizon() {
            let state = sched.state_at(epoch);
            let idx = ReachIndex::build_under(&g, &brokers, MAX_L, &state, 2);
            prop_assert!(idx.audit().is_ok(), "index audit failed: {:?}", idx.audit());
            assert_index_matches_oracles(&idx, &g, &brokers, &state);
        }
    }

    /// Epoch flips through `apply_state` answer exactly like a full
    /// rebuild at every step of the schedule — the dirty-ball shard
    /// triage must be invisible in query results.
    #[test]
    fn apply_state_matches_full_rebuild(
        edges in arb_edges(26),
        roster in arb_brokers(),
        epochs in arb_epochs(),
    ) {
        let g = base_graph(&edges);
        let brokers = broker_set(&roster, g.node_count());
        let sched = schedule_of(&epochs, g.node_count());
        let mut idx = ReachIndex::build(&g, &brokers, MAX_L, 1);
        // Forward through every epoch, then back to clear: recovery
        // (rebuilding previously blanked shards) is covered too.
        let mut states: Vec<FaultState> =
            (1..=sched.horizon()).map(|e| sched.state_at(e)).collect();
        states.push(FaultState::all_clear(g.node_count()));
        for state in &states {
            let report = idx.apply_state(&g, state, 2);
            prop_assert!(idx.audit().is_ok());
            prop_assert!(report.rebuilt + report.kept + report.deactivated <= roster.len());
            assert_index_matches_oracles(&idx, &g, &brokers, state);
        }
    }

    /// Topology deltas absorbed through `apply_delta` answer exactly
    /// like an index rebuilt from scratch on the new graph, for every
    /// query over the grown vertex set.
    #[test]
    fn apply_delta_matches_full_rebuild(
        edges in arb_edges(24),
        roster in arb_brokers(),
        births in 0..3u32,
        adds in proptest::collection::vec((0..1000u32, 0..1000u32), 0..5),
        cuts in proptest::collection::vec((0..1000u32, 0..1000u32), 0..4),
        dead in proptest::collection::vec(0..1000u32, 0..2),
    ) {
        let g = base_graph(&edges);
        let n0 = g.node_count();
        let brokers = broker_set(&roster, n0);
        let mut idx = ReachIndex::build(&g, &brokers, MAX_L, 2);

        let mut d = GraphDelta::new(n0);
        for _ in 0..births {
            d.add_node();
        }
        let n1 = d.node_count_after() as u32;
        for &(u, v) in &adds {
            if u % n1 != v % n1 {
                d.add_edge(NodeId(u % n1), NodeId(v % n1));
            }
        }
        for &(u, v) in &cuts {
            if u % n1 != v % n1 {
                d.remove_edge(NodeId(u % n1), NodeId(v % n1));
            }
        }
        for &v in &dead {
            d.remove_node(NodeId(v % n1));
        }
        prop_assert!(d.audit().is_ok());

        let new_g = g.apply_delta(&d);
        idx.apply_delta(&new_g, &d, 2);
        prop_assert!(idx.audit().is_ok());

        let grown = NodeSet::from_iter_with_capacity(new_g.node_count(), brokers.iter());
        let fresh = ReachIndex::build(&new_g, &grown, MAX_L, 1);
        let clear = FaultState::all_clear(new_g.node_count());
        for s in 0..n1 + 2 {
            for t in 0..n1 + 2 {
                for l in [1usize, MAX_L] {
                    let got = idx.query(NodeId(s), NodeId(t), l);
                    prop_assert_eq!(
                        got,
                        fresh.query(NodeId(s), NodeId(t), l),
                        "delta-maintained index diverged from rebuild at ({}, {}, {})", s, t, l
                    );
                    prop_assert_eq!(
                        got,
                        ref_query(&new_g, &grown, &clear, s, t, l),
                        "delta-maintained index diverged from oracle at ({}, {}, {})", s, t, l
                    );
                }
            }
        }
    }

    /// The BRI1 codec never panics and never silently accepts damage:
    /// any truncation or byte flip of a valid blob must decode to an
    /// error (the FNV trailer is checked before anything else).
    #[test]
    fn codec_rejects_damage_without_panicking(
        edges in arb_edges(20),
        roster in arb_brokers(),
        cut_at in 0usize..4096,
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let g = base_graph(&edges);
        let brokers = broker_set(&roster, g.node_count());
        let idx = ReachIndex::build(&g, &brokers, MAX_L, 1);
        let bytes = idx.to_bytes();
        prop_assert_eq!(&ReachIndex::from_bytes(&bytes).expect("clean decode"), &idx);

        let truncated = &bytes[..cut_at % bytes.len()];
        prop_assert!(ReachIndex::from_bytes(truncated).is_err());

        let mut flipped = bytes.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        prop_assert!(
            ReachIndex::from_bytes(&flipped).is_err(),
            "a flipped bit at byte {} went undetected", at
        );
    }
}
