//! Determinism gate for the broker-set evaluators: parallel entry points
//! must be bit-identical to their sequential counterparts at every
//! thread count, so results files never depend on the machine they were
//! produced on.

use brokerset::{
    chaos_trace, chaos_trace_threaded, failure_trace, failure_trace_threaded, lhop_curve,
    lhop_curve_parallel, max_subgraph_greedy, FailureOrder, ReachIndex, SourceMode,
};
use netgraph::{FaultGroup, FaultSchedule, NodeId};
use topology::{InternetConfig, Scale};

const THREADS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn lhop_curve_exact_bit_identical() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let seq = lhop_curve(g, sel.brokers(), 6, SourceMode::Exact);
    for t in THREADS {
        let par = lhop_curve_parallel(g, sel.brokers(), 6, SourceMode::Exact, t);
        assert_eq!(seq, par, "exact l-hop curve diverged at threads={t}");
    }
}

#[test]
fn lhop_curve_sampled_bit_identical() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let mode = SourceMode::Sampled {
        count: 300,
        seed: 9,
    };
    let seq = lhop_curve(g, sel.brokers(), 6, mode);
    assert!(seq.std_error.is_some_and(|se| se > 0.0));
    for t in THREADS {
        let par = lhop_curve_parallel(g, sel.brokers(), 6, mode, t);
        // PartialEq on the curve covers fractions AND the Option<f64>
        // standard error bit for bit.
        assert_eq!(seq, par, "sampled l-hop curve diverged at threads={t}");
    }
}

#[test]
fn lhop_curve_permuted_layout_bit_identical() {
    // The cache-aware CSR relabeling must be invisible in results: with
    // brokers mapped into the new id space, the exact l-hop curve over
    // the permuted graph is built from the same relabeling-invariant
    // pair counts, so every fraction must match the unpermuted
    // sequential baseline bit for bit at every thread count.
    use netgraph::Validate;

    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let seq = lhop_curve(g, sel.brokers(), 6, SourceMode::Exact);

    let perm = g.permute_by_degree();
    let cert = perm.audit();
    assert!(cert.is_ok(), "permutation certificate failed: {cert:?}");
    let brokers_p = perm.map_set(sel.brokers());
    for t in THREADS {
        let par = lhop_curve_parallel(perm.graph(), &brokers_p, 6, SourceMode::Exact, t);
        assert_eq!(
            seq, par,
            "permuted-layout l-hop curve diverged at threads={t}"
        );
    }
}

#[test]
fn failure_trace_bit_identical() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    for order in [
        FailureOrder::TargetedBySelectionRank,
        FailureOrder::Random { seed: 5 },
    ] {
        let seq = failure_trace(g, &sel, order, 8);
        for t in THREADS {
            let par = failure_trace_threaded(g, &sel, order, 8, t);
            assert_eq!(
                seq.removed_fraction, par.removed_fraction,
                "failure fractions diverged at threads={t}"
            );
            assert_eq!(
                seq.connectivity, par.connectivity,
                "failure connectivity diverged at threads={t}"
            );
        }
    }
}

/// An ext_chaos-style timeline at test size: broker defections, a
/// correlated node+edge group outage, edge cuts, then staged recovery.
fn chaos_schedule(sel_order: &[NodeId], n: usize) -> FaultSchedule {
    let mut s = FaultSchedule::new(n);
    for (i, &b) in sel_order.iter().take(6).enumerate() {
        s.fail_broker(i as u32 / 2 + 1, b);
    }
    let outsider = NodeId((n as u32) - 1);
    let gi = s.add_group(FaultGroup::new(
        "blast-zone",
        vec![outsider],
        [(outsider, NodeId(0)), (NodeId(1), NodeId(2))],
    ));
    s.fail_group(3, gi);
    s.fail_edge(4, NodeId(0), NodeId(3));
    s.recover_group(5, gi);
    for &b in sel_order.iter().take(6) {
        s.recover_broker(6, b);
    }
    s.set_horizon(8);
    s
}

#[test]
fn chaos_trace_bit_identical_across_threads() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let schedule = chaos_schedule(sel.order(), g.node_count());
    let seq = chaos_trace(g, &sel, &schedule, Some(6), SourceMode::Exact);
    assert_eq!(seq.steps.len(), 8);
    for t in THREADS {
        let par = chaos_trace_threaded(g, &sel, &schedule, Some(6), SourceMode::Exact, t);
        // ChaosTrace PartialEq covers every epoch's saturated fraction,
        // lhop fraction and degradation record bit for bit.
        assert_eq!(seq, par, "chaos trace diverged at threads={t}");
    }
}

#[test]
fn chaos_trace_survives_schedule_save_load() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let schedule = chaos_schedule(sel.order(), g.node_count());
    let json = serde_json::to_string(&schedule).expect("schedule serializes");
    let reloaded: FaultSchedule = serde_json::from_str(&json).expect("schedule deserializes");
    assert_eq!(reloaded, schedule);
    let before = chaos_trace_threaded(g, &sel, &schedule, Some(6), SourceMode::Exact, 4);
    let after = chaos_trace_threaded(g, &sel, &reloaded, Some(6), SourceMode::Exact, 4);
    assert_eq!(before, after, "reloaded schedule replays differently");
}

#[test]
fn reach_index_build_bit_identical_across_threads_and_layouts() {
    // The reachability index fans whole 64-broker shard batches out on
    // the worker pool; its serialized bytes are the strongest equality
    // currency (they cover every distance label, the roster, and the
    // persisted fault sets), so pin them across thread counts AND
    // across the degree-permuted CSR layout written back through the
    // permutation.
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let base = ReachIndex::build(g, sel.brokers(), 6, 1);
    let base_bytes = base.to_bytes();
    for t in THREADS {
        let idx = ReachIndex::build(g, sel.brokers(), 6, t);
        assert_eq!(
            idx.to_bytes(),
            base_bytes,
            "index bytes diverged at threads={t}"
        );
    }
    let perm = g.permute_by_degree();
    for t in THREADS {
        let idx = ReachIndex::build_permuted(&perm, sel.brokers(), 6, t);
        assert_eq!(
            idx.to_bytes(),
            base_bytes,
            "permuted-layout index bytes diverged at threads={t}"
        );
    }
}

#[test]
fn reach_index_serialization_round_trips_byte_identically() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 40);
    let idx = ReachIndex::build(g, sel.brokers(), 6, 4);
    let bytes = idx.to_bytes();
    let back = ReachIndex::from_bytes(&bytes).expect("index decodes");
    assert_eq!(back, idx, "decoded index differs structurally");
    assert_eq!(back.to_bytes(), bytes, "re-encoding is not byte-identical");
    // And the reloaded index answers identically, hits and misses both.
    let n = g.node_count() as u32;
    for (s, t) in [(0, n - 1), (3, 500 % n), (7, 7), (n - 1, 1), (11, 999 % n)] {
        for l in [1usize, 3, 6] {
            assert_eq!(
                idx.query(NodeId(s), NodeId(t), l),
                back.query(NodeId(s), NodeId(t), l),
                "reloaded index answers ({s}, {t}, {l}) differently"
            );
        }
    }
    // The file round trip is the same bytes.
    let dir = std::env::temp_dir().join(format!("brokerset-idx-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("tiny.bri");
    idx.save(&path).expect("index saves");
    let loaded = ReachIndex::load(&path).expect("index loads");
    assert_eq!(loaded.to_bytes(), bytes);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reach_index_invalidation_bit_identical_across_threads() {
    // Replaying the same fault schedule through apply_state must leave
    // byte-identical indexes at every thread count — the shard triage
    // and the rebuild fan-out are both deterministic.
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let schedule = chaos_schedule(sel.order(), g.node_count());
    let replay = |threads: usize| {
        let mut idx = ReachIndex::build(g, sel.brokers(), 6, threads);
        for epoch in 1..=schedule.horizon() {
            idx.apply_state(g, &schedule.state_at(epoch), threads);
        }
        idx.to_bytes()
    };
    let base = replay(1);
    for t in THREADS[1..].iter().copied() {
        assert_eq!(
            replay(t),
            base,
            "invalidation replay diverged at threads={t}"
        );
    }
}

#[test]
fn reconfig_plan_bit_identical_across_threads() {
    // The planner's antichain execution fans out on the worker pool;
    // its construction checksum (steps + dependency rows + layers) and
    // its execution trace checksum must not depend on the thread count.
    use routing::ReconfigPlan;

    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let cur = max_subgraph_greedy(g, 50);
    let tgt = max_subgraph_greedy(g, 62);
    let n = g.node_count() as u32;
    let pairs: Vec<(NodeId, NodeId)> = (0..24u32)
        .map(|i| (NodeId(i * 37 % n), NodeId((i * 91 + 13) % n)))
        .filter(|(u, v)| u != v)
        .collect();
    let plan = ReconfigPlan::build(g, cur.brokers(), tgt.brokers(), &pairs).expect("plan");
    let rebuilt = ReconfigPlan::build(g, cur.brokers(), tgt.brokers(), &pairs).expect("plan");
    assert_eq!(
        plan.construction_checksum(),
        rebuilt.construction_checksum(),
        "plan construction is not deterministic"
    );
    let base = plan.execute(g, 1);
    assert!(base.cut_audit.is_ok(), "cuts: {}", base.cut_audit);
    for t in THREADS[1..].iter().copied() {
        let trace = plan.execute(g, t);
        assert_eq!(
            trace.checksum, base.checksum,
            "plan execution trace diverged at threads={t}"
        );
        assert_eq!(
            trace.layers, base.layers,
            "step records diverged at threads={t}"
        );
    }
}

#[test]
fn reconfig_plan_layout_invariant_across_permuted_csr() {
    // The degree-ordered CSR relabeling must be invisible in planning
    // outcomes: with both configurations and the session endpoints
    // mapped into the new id space, the broker flips (mapped back) are
    // the same set, the plan still certifies, and execution stays
    // thread-count invariant on the permuted layout.
    use netgraph::Validate;
    use routing::{ReconfigPlan, Step};
    use std::collections::BTreeSet;

    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let cur = max_subgraph_greedy(g, 50);
    let tgt = max_subgraph_greedy(g, 62);
    let n = g.node_count() as u32;
    let pairs: Vec<(NodeId, NodeId)> = (0..24u32)
        .map(|i| (NodeId(i * 37 % n), NodeId((i * 91 + 13) % n)))
        .filter(|(u, v)| u != v)
        .collect();
    let base = ReconfigPlan::build(g, cur.brokers(), tgt.brokers(), &pairs).expect("plan");

    let perm = g.permute_by_degree();
    let cert = perm.audit();
    assert!(cert.is_ok(), "permutation certificate failed: {cert:?}");
    let cur_p = perm.map_set(cur.brokers());
    let tgt_p = perm.map_set(tgt.brokers());
    let pairs_p: Vec<(NodeId, NodeId)> = pairs
        .iter()
        .map(|&(u, v)| (perm.to_new(u), perm.to_new(v)))
        .collect();
    let plan_p = ReconfigPlan::build(perm.graph(), &cur_p, &tgt_p, &pairs_p).expect("plan");

    // Broker flips mapped back through the permutation are the same
    // sets (the config diff is a set difference, label-invariant).
    let flips = |p: &ReconfigPlan, back: bool| -> (BTreeSet<u32>, BTreeSet<u32>) {
        let m = |b: NodeId| if back { perm.to_old(b).0 } else { b.0 };
        let mut acts = BTreeSet::new();
        let mut deacts = BTreeSet::new();
        for s in p.steps() {
            match *s {
                Step::ActivateBroker(b) => {
                    acts.insert(m(b));
                }
                Step::DeactivateBroker(b) => {
                    deacts.insert(m(b));
                }
                Step::MigrateSession { .. } => {}
            }
        }
        (acts, deacts)
    };
    assert_eq!(
        flips(&base, false),
        flips(&plan_p, true),
        "broker flips diverged under the permuted layout"
    );

    let rep = plan_p.certificate(perm.graph()).audit();
    assert!(rep.is_ok(), "permuted-layout certificate failed: {rep}");
    let first = plan_p.execute(perm.graph(), 1);
    assert!(first.cut_audit.is_ok(), "cuts: {}", first.cut_audit);
    for t in THREADS[1..].iter().copied() {
        let trace = plan_p.execute(perm.graph(), t);
        assert_eq!(
            trace.checksum, first.checksum,
            "permuted-layout execution diverged at threads={t}"
        );
    }
}

#[test]
fn auto_threads_matches_explicit() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 40);
    let mode = SourceMode::Sampled {
        count: 150,
        seed: 3,
    };
    let auto = lhop_curve_parallel(g, sel.brokers(), 5, mode, 0);
    let one = lhop_curve_parallel(g, sel.brokers(), 5, mode, 1);
    assert_eq!(auto, one);
}
