//! Determinism gate for the broker-set evaluators: parallel entry points
//! must be bit-identical to their sequential counterparts at every
//! thread count, so results files never depend on the machine they were
//! produced on.

use brokerset::{
    failure_trace, failure_trace_threaded, lhop_curve, lhop_curve_parallel, max_subgraph_greedy,
    FailureOrder, SourceMode,
};
use topology::{InternetConfig, Scale};

const THREADS: [usize; 4] = [1, 2, 4, 7];

#[test]
fn lhop_curve_exact_bit_identical() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let seq = lhop_curve(g, sel.brokers(), 6, SourceMode::Exact);
    for t in THREADS {
        let par = lhop_curve_parallel(g, sel.brokers(), 6, SourceMode::Exact, t);
        assert_eq!(seq, par, "exact l-hop curve diverged at threads={t}");
    }
}

#[test]
fn lhop_curve_sampled_bit_identical() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    let mode = SourceMode::Sampled {
        count: 300,
        seed: 9,
    };
    let seq = lhop_curve(g, sel.brokers(), 6, mode);
    assert!(seq.std_error.is_some_and(|se| se > 0.0));
    for t in THREADS {
        let par = lhop_curve_parallel(g, sel.brokers(), 6, mode, t);
        // PartialEq on the curve covers fractions AND the Option<f64>
        // standard error bit for bit.
        assert_eq!(seq, par, "sampled l-hop curve diverged at threads={t}");
    }
}

#[test]
fn failure_trace_bit_identical() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 60);
    for order in [
        FailureOrder::TargetedBySelectionRank,
        FailureOrder::Random { seed: 5 },
    ] {
        let seq = failure_trace(g, &sel, order, 8);
        for t in THREADS {
            let par = failure_trace_threaded(g, &sel, order, 8, t);
            assert_eq!(
                seq.removed_fraction, par.removed_fraction,
                "failure fractions diverged at threads={t}"
            );
            assert_eq!(
                seq.connectivity, par.connectivity,
                "failure connectivity diverged at threads={t}"
            );
        }
    }
}

#[test]
fn auto_threads_matches_explicit() {
    let net = InternetConfig::scaled(Scale::Tiny).generate(42);
    let g = net.graph();
    let sel = max_subgraph_greedy(g, 40);
    let mode = SourceMode::Sampled {
        count: 150,
        seed: 3,
    };
    let auto = lhop_curve_parallel(g, sel.brokers(), 5, mode, 0);
    let one = lhop_curve_parallel(g, sel.brokers(), 5, mode, 1);
    assert_eq!(auto, one);
}
