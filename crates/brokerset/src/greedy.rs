//! Algorithm 1: the greedy (1 − 1/e)-approximation for MCB.
//!
//! Two implementations are provided:
//!
//! - [`greedy_mcb`] — *lazy* greedy. Submodularity makes cached marginal
//!   gains upper bounds, so a stale max-heap entry whose re-evaluated
//!   gain still tops the heap is provably the argmax. On the Internet
//!   topology almost every iteration re-evaluates only a handful of
//!   candidates, giving effectively `O(k(|V| + |E|))` behaviour.
//! - [`greedy_mcb_naive`] — the textbook `O(k |V| · deg)` scan, kept as
//!   the ablation baseline (`bench/ablation`) and as the oracle for the
//!   equivalence property test.
//!
//! Both return identical selections (ties broken by ascending node id).
//!
//! The CELF drain loop itself lives in [`crate::incremental`]
//! ([`crate::incremental::celf_fill`]): the one-shot greedy here seeds a
//! fresh heap of `deg + 1` upper bounds and drains it once, while the
//! epoch-driven [`crate::BrokerMaintainer`] re-seeds and re-drains the
//! same loop across topology deltas. Sharing the loop keeps the two
//! selection paths bit-identical by construction.

use crate::coverage::CoverageState;
use crate::incremental::{celf_fill, CoverageIndex};
use crate::problem::BrokerSelection;
use netgraph::{Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Lazy greedy solution to `MCB(V, k)` (Algorithm 1).
///
/// Selects up to `k` brokers maximizing `f(B) = |B ∪ N(B)|`; stops early
/// when the graph is fully covered. Guarantees
/// `f(B) ≥ (1 − 1/e) · f(OPT_k)` by Nemhauser–Wolsey–Fisher.
pub fn greedy_mcb(g: &Graph, k: usize) -> BrokerSelection {
    let n = g.node_count();
    let mut idx = CoverageIndex::new(n);
    let mut order = Vec::with_capacity(k.min(n));
    // Heap of (cached_gain, Reverse(id)): highest gain first, lowest id on
    // ties — matching the naive argmax scan order.
    let mut heap: BinaryHeap<(usize, Reverse<NodeId>)> =
        g.nodes().map(|v| (g.degree(v) + 1, Reverse(v))).collect();
    celf_fill(g, &mut idx, k, &mut heap, &mut order, true);
    BrokerSelection::new("greedy-mcb", n, order)
}

/// Textbook greedy: full argmax scan each iteration.
pub fn greedy_mcb_naive(g: &Graph, k: usize) -> BrokerSelection {
    let n = g.node_count();
    let mut cov = CoverageState::new(g);
    let mut order = Vec::with_capacity(k.min(n));
    while order.len() < k && cov.covered_count() < n {
        let mut best: Option<(usize, NodeId)> = None;
        for v in g.nodes() {
            if cov.brokers().contains(v) {
                continue;
            }
            let gain = cov.gain(g, v);
            let better = match best {
                None => true,
                Some((bg, bv)) => gain > bg || (gain == bg && v < bv),
            };
            if better {
                best = Some((gain, v));
            }
        }
        match best {
            Some((gain, v)) if gain > 0 => {
                cov.add(g, v);
                order.push(v);
            }
            _ => break,
        }
    }
    BrokerSelection::new("greedy-mcb", n, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::coverage;
    use netgraph::graph::from_edges;
    use netgraph::NodeSet;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn star_selects_hub() {
        let g = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let sel = greedy_mcb(&g, 3);
        // Hub covers everything; greedy stops after one pick.
        assert_eq!(sel.order(), &[NodeId(0)]);
    }

    #[test]
    fn two_stars_select_both_hubs() {
        let mut edges: Vec<(NodeId, NodeId)> = (1..5).map(|i| (NodeId(0), NodeId(i))).collect();
        edges.extend((6..11).map(|i| (NodeId(5), NodeId(i))));
        let g = from_edges(11, edges);
        let sel = greedy_mcb(&g, 2);
        // Star at 5 has 5 leaves (covers 6), star at 0 covers 5.
        assert_eq!(sel.order(), &[NodeId(5), NodeId(0)]);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        assert!(greedy_mcb(&g, 0).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = from_edges(0, std::iter::empty());
        assert!(greedy_mcb(&g, 5).is_empty());
    }

    #[test]
    fn isolated_vertices_still_covered() {
        let g = from_edges(3, std::iter::empty());
        let sel = greedy_mcb(&g, 3);
        assert_eq!(sel.len(), 3); // each isolated vertex covers itself
    }

    #[test]
    fn lazy_matches_naive_on_random_graphs() {
        for seed in 0..10 {
            let g = netgraph::barabasi_albert(150, 3, &mut ChaCha8Rng::seed_from_u64(seed));
            let lazy = greedy_mcb(&g, 12);
            let naive = greedy_mcb_naive(&g, 12);
            assert_eq!(lazy.order(), naive.order(), "seed {seed}");
        }
    }

    #[test]
    fn approximation_bound_vs_bruteforce() {
        // Exhaustive optimum over all C(12, 3) subsets on small graphs.
        for seed in 0..8 {
            let g = netgraph::erdos_renyi_gnm(12, 20, &mut ChaCha8Rng::seed_from_u64(seed));
            let k = 3;
            let greedy_cov = coverage(&g, greedy_mcb(&g, k).brokers());
            let mut opt = 0usize;
            for a in 0..12u32 {
                for b in (a + 1)..12 {
                    for c in (b + 1)..12 {
                        let mut s = NodeSet::new(12);
                        s.insert(NodeId(a));
                        s.insert(NodeId(b));
                        s.insert(NodeId(c));
                        opt = opt.max(coverage(&g, &s));
                    }
                }
            }
            let bound = (1.0 - (-1.0f64).exp()) * opt as f64;
            assert!(
                greedy_cov as f64 >= bound - 1e-9,
                "seed {seed}: greedy {greedy_cov} < (1-1/e)·OPT = {bound}"
            );
        }
    }

    proptest! {
        /// The greedy prefix property: running with budget k then
        /// truncating equals running with smaller budget directly.
        #[test]
        fn greedy_prefix_consistency(seed in 0u64..100, k in 1usize..10) {
            let g = netgraph::erdos_renyi_gnm(40, 80, &mut ChaCha8Rng::seed_from_u64(seed));
            let big = greedy_mcb(&g, 10);
            let small = greedy_mcb(&g, k);
            let prefix: Vec<NodeId> = big.order().iter().copied().take(k).collect();
            prop_assert_eq!(small.order(), &prefix[..small.len()]);
        }

        /// Greedy never selects a zero-gain broker.
        #[test]
        fn greedy_gains_positive(seed in 0u64..100) {
            let g = netgraph::erdos_renyi_gnm(30, 40, &mut ChaCha8Rng::seed_from_u64(seed));
            let sel = greedy_mcb(&g, 30);
            let mut cov = CoverageState::new(&g);
            for &v in sel.order() {
                prop_assert!(cov.gain(&g, v) > 0);
                cov.add(&g, v);
            }
        }
    }
}
