//! Broker selection under path-length constraints (Problem 4).
//!
//! Problem 4 augments MCBG with per-pair path-length requirements,
//! evaluated stochastically through Eq. (4): the selected set's l-hop
//! connectivity curve must track a reference distribution within ε.
//! [`select_with_length_constraint`] grows a MaxSG selection until the
//! constraint is met (or the budget is exhausted), reporting the
//! feasibility frontier it traversed.

use crate::connectivity::{lhop_curve, SourceMode};
use crate::maxsg::max_subgraph_greedy;
use crate::problem::{BrokerSelection, PathLengthConstraint};
use netgraph::Graph;
use serde::{Deserialize, Serialize};

/// Outcome of a length-constrained selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LengthConstrainedSelection {
    /// The selected broker set (the smallest tested prefix satisfying the
    /// constraint, otherwise the full budget).
    pub selection: BrokerSelection,
    /// Whether Eq. (4) held at the returned size.
    pub feasible: bool,
    /// `(k, max deviation)` at every probed size, ascending.
    pub frontier: Vec<(usize, f64)>,
}

/// Grow a MaxSG selection until its l-hop curve satisfies `constraint`.
///
/// Probes sizes `step, 2·step, …` up to `k_max` (binary-search-free: the
/// deviation is monotone non-increasing in k up to sampling noise, and
/// the probe cost is dominated by the curve evaluation anyway).
///
/// # Panics
///
/// Panics if `step == 0`.
pub fn select_with_length_constraint(
    g: &Graph,
    k_max: usize,
    step: usize,
    constraint: &PathLengthConstraint,
    mode: SourceMode,
) -> LengthConstrainedSelection {
    assert!(step > 0, "step must be positive");
    let max_l = constraint.reference.len().max(1);
    let run = max_subgraph_greedy(g, k_max);
    let mut frontier = Vec::new();
    let mut k = step.min(run.len().max(1));
    loop {
        let sel = run.truncated(k);
        let curve = lhop_curve(g, sel.brokers(), max_l, mode);
        let dev = constraint.max_deviation(&curve.fractions);
        frontier.push((sel.len(), dev));
        if dev <= constraint.epsilon {
            return LengthConstrainedSelection {
                selection: sel,
                feasible: true,
                frontier,
            };
        }
        if k >= run.len() || k >= k_max {
            return LengthConstrainedSelection {
                selection: sel,
                feasible: false,
                frontier,
            };
        }
        k = (k + step).min(k_max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NodeSet;
    use topology::{InternetConfig, Scale};

    fn reference(g: &Graph, max_l: usize) -> Vec<f64> {
        lhop_curve(g, &NodeSet::full(g.node_count()), max_l, SourceMode::Exact).fractions
    }

    #[test]
    fn loose_constraint_feasible_small() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(61);
        let g = net.graph();
        let c = PathLengthConstraint::new(reference(g, 6), 0.5); // very loose
        let out = select_with_length_constraint(g, 200, 20, &c, SourceMode::Exact);
        assert!(out.feasible);
        assert!(out.selection.len() <= 200);
        assert!(!out.frontier.is_empty());
    }

    #[test]
    fn impossible_constraint_reports_infeasible() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(61);
        let g = net.graph();
        // Reference demands perfection at l = 1 — impossible even for
        // B = V on a sparse graph.
        let c = PathLengthConstraint::new(vec![1.0; 4], 0.001);
        let out = select_with_length_constraint(g, 60, 30, &c, SourceMode::Exact);
        assert!(!out.feasible);
        assert_eq!(out.frontier.len(), 2); // probed 30 and 60
    }

    #[test]
    fn frontier_deviation_decreases() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(61);
        let g = net.graph();
        let c = PathLengthConstraint::new(reference(g, 6), 0.0); // never met
        let out = select_with_length_constraint(g, 120, 40, &c, SourceMode::Exact);
        assert!(!out.feasible);
        for w in out.frontier.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 0.02,
                "deviation should shrink with k: {:?}",
                out.frontier
            );
        }
    }

    #[test]
    #[should_panic(expected = "step")]
    fn zero_step_rejected() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(61);
        let c = PathLengthConstraint::new(vec![0.5], 0.1);
        select_with_length_constraint(net.graph(), 10, 0, &c, SourceMode::Exact);
    }
}
