//! Algorithm 2: the approximation algorithm for MCBG on (α, β)-graphs.
//!
//! The broker budget `k` is split in two:
//!
//! 1. `B^p` — `x*` brokers pre-selected by the greedy MCB Algorithm 1,
//!    where `x* = ⌊(k − 1) / ⌈β/2⌉⌋ + 1` is the largest integer with
//!    `x* + (x* − 1)(⌈β/2⌉ − 1) ≤ k`;
//! 2. `B^r` — stitching brokers: for a candidate *root* `r ∈ B^p`, walk
//!    the shortest path from every other pre-selected broker to `r` and
//!    add every second vertex so the path becomes `(B^p ∪ B^r)`-
//!    dominating. The root minimizing `|B^r|` wins.
//!
//! Because the (α, β) property bounds inter-broker shortest paths by β
//! hops (w.h.p.), each non-root broker contributes at most `⌈β/2⌉ − 1`
//! stitches and the total stays within `k` — up to the α-tail, which is
//! why the paper's concrete runs come out slightly above the nominal
//! budget (1,064 for k = 1,000; 3,688 for k = 3,540). We reproduce that
//! behaviour: the returned set is *not* truncated, and its realized size
//! is part of the result.
//!
//! Root evaluation needs one BFS tree per candidate root
//! (`O(x*(|V| + |E|))` total, the practical face of the paper's
//! `O(k²(|V| log |V| + |E|))` bound). [`ApproxConfig::root_sample`]
//! optionally evaluates a random subset of roots — the ablation bench
//! quantifies the loss.

use crate::greedy::greedy_mcb;
use crate::problem::BrokerSelection;
use netgraph::traverse::{bfs_parents, path_from_parents};
use netgraph::{Graph, NodeId, NodeSet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Tuning for [`approx_mcbg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApproxConfig {
    /// The β of the (α, β)-graph assumption (4 for the AS topology).
    pub beta: usize,
    /// Evaluate only this many randomly chosen roots instead of all of
    /// `B^p` (None = all roots, the paper's algorithm).
    pub root_sample: Option<usize>,
    /// Seed for root sampling.
    pub seed: u64,
    /// Re-invest leftover budget: when the realized stitch set `B^r`
    /// comes out smaller than the `(x* − 1)(⌈β/2⌉ − 1)` worst case the
    /// split reserves for it, spend the remainder on additional greedy
    /// coverage brokers (repeating the stitching pass so the guarantee
    /// is preserved). The paper's Algorithm 2 does not do this — it was
    /// tuned for a topology where stitches consume the reserve — so the
    /// strict variant (`false`) is kept for the ablation bench.
    pub reinvest: bool,
}

impl ApproxConfig {
    /// The paper's configuration for the AS-level topology: β = 4, all
    /// roots evaluated, leftover budget re-invested.
    pub fn paper() -> Self {
        ApproxConfig {
            beta: 4,
            root_sample: None,
            seed: 0,
            reinvest: true,
        }
    }

    /// Strict Algorithm 2 as printed in the paper: no budget
    /// re-investment.
    pub fn strict() -> Self {
        ApproxConfig {
            reinvest: false,
            ..ApproxConfig::paper()
        }
    }

    /// `x* = ⌊(k − 1)/⌈β/2⌉⌋ + 1` pre-selected brokers for budget `k`.
    pub fn x_star(&self, k: usize) -> usize {
        if k == 0 {
            return 0;
        }
        let half_beta = self.beta.div_ceil(2).max(1);
        (k - 1) / half_beta + 1
    }
}

/// Run Algorithm 2 with budget `k`.
///
/// The returned selection lists `B^p` first (in greedy order) followed by
/// the stitching brokers `B^r`; its size may slightly exceed `k` when
/// some inter-broker shortest path is longer than β (the α-tail), exactly
/// as in the paper's reported runs.
///
/// # Panics
///
/// Panics if `cfg.beta == 0`.
pub fn approx_mcbg(g: &Graph, k: usize, cfg: &ApproxConfig) -> BrokerSelection {
    assert!(cfg.beta > 0, "beta must be positive");
    let n = g.node_count();
    if k == 0 || n == 0 {
        return BrokerSelection::new("approx-mcbg", n, Vec::new());
    }
    let mut pre_size = cfg.x_star(k).min(k);
    // Re-investment loop: enlarge B^p while the realized total stays
    // under budget. Bounded, and each round strictly grows pre_size.
    for _round in 0..4 {
        let pre = greedy_mcb(g, pre_size);
        let pre_nodes: Vec<NodeId> = pre.order().to_vec();
        if pre_nodes.len() <= 1 {
            return BrokerSelection::new("approx-mcbg", n, pre_nodes);
        }
        let stitches = best_stitches(g, &pre, cfg);
        let total = pre_nodes.len() + stitches.len();
        let coverage_exhausted = pre_nodes.len() < pre_size; // greedy stopped early
        if !cfg.reinvest || total >= k || coverage_exhausted {
            let mut order = pre_nodes;
            order.extend(stitches);
            return BrokerSelection::new("approx-mcbg", n, order);
        }
        pre_size += k - total;
    }
    // Final pass after the last enlargement.
    let pre = greedy_mcb(g, pre_size);
    let stitches = best_stitches(g, &pre, cfg);
    let mut order = pre.order().to_vec();
    order.extend(stitches);
    BrokerSelection::new("approx-mcbg", n, order)
}

/// For each candidate root, stitch every pre-selected broker's shortest
/// path to the root; return the smallest stitch set found (selection
/// order preserved).
fn best_stitches(g: &Graph, pre: &BrokerSelection, cfg: &ApproxConfig) -> Vec<NodeId> {
    let n = g.node_count();
    let pre_nodes = pre.order();
    let pre_set = pre.brokers();
    let roots: Vec<NodeId> = match cfg.root_sample {
        None => pre_nodes.to_vec(),
        Some(s) => {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
            let mut cand = pre_nodes.to_vec();
            cand.shuffle(&mut rng);
            cand.truncate(s.max(1));
            cand
        }
    };

    let mut best: Option<Vec<NodeId>> = None;
    for &r in &roots {
        let parents = bfs_parents(g, r);
        let mut stitches = NodeSet::new(n);
        let mut stitch_order: Vec<NodeId> = Vec::new();
        for &v in pre_nodes {
            if v == r {
                continue;
            }
            let Some(path) = path_from_parents(&parents, r, v) else {
                continue; // disconnected pre-broker: cannot stitch
            };
            // Make the path (B^p ∪ B^r)-dominating: scan hops, adding the
            // far endpoint whenever a hop has no broker endpoint.
            for i in 0..path.len() - 1 {
                let a = path[i];
                let b = path[i + 1];
                let dominated = pre_set.contains(a)
                    || pre_set.contains(b)
                    || stitches.contains(a)
                    || stitches.contains(b);
                if !dominated {
                    stitches.insert(b);
                    stitch_order.push(b);
                }
            }
        }
        let better = best.as_ref().is_none_or(|b| stitch_order.len() < b.len());
        if better {
            best = Some(stitch_order);
        }
    }
    best.unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::dominated_components;
    use crate::coverage::dominated_set;
    use netgraph::graph::from_edges;
    use proptest::prelude::*;

    #[test]
    fn x_star_formula() {
        let cfg = ApproxConfig::paper(); // beta 4 -> ceil(beta/2) = 2
        assert_eq!(cfg.x_star(1), 1);
        assert_eq!(cfg.x_star(2), 1);
        assert_eq!(cfg.x_star(3), 2);
        assert_eq!(cfg.x_star(1000), 500); // floor(999/2)+1
        assert_eq!(cfg.x_star(3540), 1770);
        // beta odd: theta uses ceil.
        let cfg3 = ApproxConfig {
            beta: 3,
            ..ApproxConfig::paper()
        };
        assert_eq!(cfg3.x_star(10), 5); // floor(9/2)+1
        assert_eq!(cfg3.x_star(0), 0);
    }

    #[test]
    fn star_needs_no_stitching() {
        let g = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let sel = approx_mcbg(&g, 3, &ApproxConfig::paper());
        assert_eq!(sel.order(), &[NodeId(0)]);
    }

    #[test]
    fn two_hubs_get_stitched() {
        // Two stars joined by a 3-hop bridge of plain vertices:
        // hub 0 (leaves 1..4), hub 5 (leaves 6..9), bridge 0-10-11-5.
        let mut edges: Vec<(NodeId, NodeId)> = (1..5).map(|i| (NodeId(0), NodeId(i))).collect();
        edges.extend((6..10).map(|i| (NodeId(5), NodeId(i))));
        edges.push((NodeId(0), NodeId(10)));
        edges.push((NodeId(10), NodeId(11)));
        edges.push((NodeId(11), NodeId(5)));
        let g = from_edges(12, edges);
        let cfg = ApproxConfig::paper();
        let sel = approx_mcbg(&g, 4, &cfg);
        // Pre-selection: hubs 0 and 5 (x* = 2 for k = 4).
        assert!(sel.brokers().contains(NodeId(0)));
        assert!(sel.brokers().contains(NodeId(5)));
        // Path 0-10-11-5: hop 10-11 has no broker endpoint until a stitch
        // is added.
        let comps = dominated_components(&g, sel.brokers());
        assert_eq!(
            comps.giant().unwrap().1,
            12,
            "stitched set must connect all"
        );
        assert!(sel.len() <= 4);
    }

    #[test]
    fn k_zero_and_empty() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        assert!(approx_mcbg(&g, 0, &ApproxConfig::paper()).is_empty());
        let empty = from_edges(0, std::iter::empty());
        assert!(approx_mcbg(&empty, 5, &ApproxConfig::paper()).is_empty());
    }

    #[test]
    fn root_sampling_still_valid() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let g = netgraph::barabasi_albert(200, 3, &mut rng);
        let cfg = ApproxConfig {
            beta: 4,
            root_sample: Some(2),
            seed: 7,
            reinvest: true,
        };
        let sel = approx_mcbg(&g, 20, &cfg);
        // Covered set must form one dominated component.
        let covered = dominated_set(&g, sel.brokers());
        let comps = dominated_components(&g, sel.brokers());
        assert_eq!(comps.giant().unwrap().1, covered.len());
    }

    proptest! {
        /// The defining MCBG guarantee: every pair of covered vertices is
        /// joined by a B-dominating path, i.e. the whole covered set lies
        /// in one component of the dominated edge graph (on connected
        /// inputs).
        #[test]
        fn covered_set_is_one_dominated_component(seed in 0u64..40, k in 2usize..12) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(80, 2, &mut rng);
            let sel = approx_mcbg(&g, k, &ApproxConfig::paper());
            let covered = dominated_set(&g, sel.brokers());
            let comps = dominated_components(&g, sel.brokers());
            prop_assert_eq!(comps.giant().unwrap().1, covered.len(),
                "covered set split across dominated components");
        }

        /// Budget of the strict paper variant: |B| ≤ k whenever the graph
        /// respects the β bound (BA graphs at this size have tiny
        /// diameters, so assert the strict budget).
        #[test]
        fn size_within_budget_on_small_world(seed in 0u64..40, k in 2usize..12) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(80, 3, &mut rng);
            let sel = approx_mcbg(&g, k, &ApproxConfig::strict());
            prop_assert!(sel.len() <= k, "|B| = {} > k = {k}", sel.len());
        }

        /// Re-investment spends more of the budget and never loses
        /// coverage relative to the strict variant.
        #[test]
        fn reinvest_dominates_strict(seed in 0u64..40, k in 4usize..16) {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(80, 3, &mut rng);
            let strict = approx_mcbg(&g, k, &ApproxConfig::strict());
            let reinvest = approx_mcbg(&g, k, &ApproxConfig::paper());
            let cov_s = dominated_set(&g, strict.brokers()).len();
            let cov_r = dominated_set(&g, reinvest.brokers()).len();
            prop_assert!(cov_r >= cov_s, "reinvest coverage {cov_r} < strict {cov_s}");
            // Realized size stays near the budget (paper overshoots too:
            // 1,064 for k = 1,000).
            prop_assert!(reinvest.len() <= k + k / 2 + 1);
        }
    }
}
