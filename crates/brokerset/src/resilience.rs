//! Failure injection: what happens to the alliance's connectivity when
//! brokers fail or defect?
//!
//! The paper's economic analysis (Theorems 7/8) argues no broker *wants*
//! to leave; this module quantifies what the network loses when brokers
//! leave anyway — by targeted attack on the highest-impact members or by
//! random failure — the classic robustness lens on scale-free systems.

use crate::chaos::chaos_trace_threaded;
use crate::connectivity::SourceMode;
use crate::problem::BrokerSelection;
use netgraph::{FaultSchedule, Graph, NodeId, NodeSet};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which brokers are removed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureOrder {
    /// Remove in selection order (highest-impact first — targeted
    /// attack / coordinated defection of the founding members).
    TargetedBySelectionRank,
    /// Remove uniformly at random (independent failures).
    Random {
        /// RNG seed.
        seed: u64,
    },
}

/// Connectivity trace as brokers are removed one group at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceTrace {
    /// Fraction of brokers removed at each step (0.0 first).
    pub removed_fraction: Vec<f64>,
    /// Saturated connectivity at each step.
    pub connectivity: Vec<f64>,
}

impl ResilienceTrace {
    /// Connectivity lost between the intact alliance and the final step.
    pub fn total_degradation(&self) -> f64 {
        match (self.connectivity.first(), self.connectivity.last()) {
            (Some(&a), Some(&b)) => a - b,
            _ => 0.0,
        }
    }
}

/// Remove brokers in `steps` equal batches according to `order`,
/// measuring saturated connectivity after each batch.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn failure_trace(
    g: &Graph,
    sel: &BrokerSelection,
    order: FailureOrder,
    steps: usize,
) -> ResilienceTrace {
    failure_trace_threaded(g, sel, order, steps, 1)
}

/// [`failure_trace`] with the per-step connectivity evaluations run on
/// `threads` workers (`0` = all hardware threads) via [`netgraph::par`].
///
/// Internally this is a thin wrapper over the chaos harness: the victim
/// batches become broker-defection events of a [`FaultSchedule`] (epoch
/// `i` has the first `i` batches defected) and the trace is
/// [`chaos_trace_threaded`]'s saturated curve. Each epoch is a pure
/// function of its victim prefix, so the result is identical to the
/// sequential trace at every thread count — and bit-identical to the
/// historical direct evaluation.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn failure_trace_threaded(
    g: &Graph,
    sel: &BrokerSelection,
    order: FailureOrder,
    steps: usize,
    threads: usize,
) -> ResilienceTrace {
    assert!(steps > 0, "need at least one step");
    let (victims, prefixes) = victim_prefixes(sel, order, steps);
    let schedule = broker_removal_schedule(g.node_count(), &victims, &prefixes);
    let trace = chaos_trace_threaded(g, sel, &schedule, None, SourceMode::Exact, threads);
    ResilienceTrace {
        removed_fraction: removed_fractions(&prefixes, victims.len()),
        connectivity: trace.saturated_curve(),
    }
}

/// Encode victim-prefix removal as a fault schedule: epoch `i` opens
/// with `victims[..prefixes[i]]` defected (epoch 0 is intact), one epoch
/// per trace point.
fn broker_removal_schedule(
    node_count: usize,
    victims: &[NodeId],
    prefixes: &[usize],
) -> FaultSchedule {
    let mut schedule = FaultSchedule::new(node_count);
    for (i, w) in prefixes.windows(2).enumerate() {
        for &v in &victims[w[0]..w[1]] {
            schedule.fail_broker(i as u32 + 1, v);
        }
    }
    schedule.set_horizon(prefixes.len() as u32);
    schedule
}

/// Resolve the victim list for `order` and the victim-prefix length at
/// each trace point: 0, batch, 2·batch, ..., victims.len() (the last
/// batch may be partial).
fn victim_prefixes(
    sel: &BrokerSelection,
    order: FailureOrder,
    steps: usize,
) -> (Vec<NodeId>, Vec<usize>) {
    let victims: Vec<NodeId> = match order {
        FailureOrder::TargetedBySelectionRank => sel.order().to_vec(),
        FailureOrder::Random { seed } => {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let mut v = sel.order().to_vec();
            v.shuffle(&mut rng);
            v
        }
    };
    let batch = victims.len().div_ceil(steps).max(1);
    let mut prefixes: Vec<usize> = vec![0];
    let mut k = batch;
    while k < victims.len() {
        prefixes.push(k);
        k += batch;
    }
    if !victims.is_empty() {
        prefixes.push(victims.len());
    }
    (victims, prefixes)
}

fn removed_fractions(prefixes: &[usize], victims: usize) -> Vec<f64> {
    prefixes
        .iter()
        .map(|&p| p as f64 / victims.max(1) as f64)
        .collect()
}

/// Hop-bounded connectivity trace as brokers are removed: like
/// [`ResilienceTrace`] but each step records `F_B(l)` at `l = max_l`
/// instead of the l → ∞ saturated value, exposing *path stretch* decay —
/// a failing alliance first loses its short dominating paths, well before
/// pairs disconnect outright.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LhopResilienceTrace {
    /// Fraction of brokers removed at each step (0.0 first).
    pub removed_fraction: Vec<f64>,
    /// l-hop E2E connectivity `F_B(max_l)` at each step.
    pub lhop_connectivity: Vec<f64>,
    /// The hop bound every step was evaluated at.
    pub max_l: usize,
}

impl LhopResilienceTrace {
    /// l-hop connectivity lost between the intact alliance and the final
    /// step.
    pub fn total_degradation(&self) -> f64 {
        match (
            self.lhop_connectivity.first(),
            self.lhop_connectivity.last(),
        ) {
            (Some(&a), Some(&b)) => a - b,
            _ => 0.0,
        }
    }
}

/// [`lhop_failure_trace_threaded`] on one thread.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn lhop_failure_trace(
    g: &Graph,
    sel: &BrokerSelection,
    order: FailureOrder,
    steps: usize,
    max_l: usize,
    mode: SourceMode,
) -> LhopResilienceTrace {
    lhop_failure_trace_threaded(g, sel, order, steps, max_l, mode, 1)
}

/// Remove brokers in `steps` equal batches according to `order`,
/// measuring the l-hop connectivity `F_B(max_l)` after each batch, with
/// the per-step evaluations fanned out on `threads` workers.
///
/// Like [`failure_trace_threaded`], a thin wrapper over the chaos
/// harness: the batches become broker-defection events and each epoch's
/// l-hop value is evaluated by the same 64-lane [`netgraph::msbfs`]
/// batching [`crate::connectivity::lhop_curve`] uses, so the trace is
/// bit-identical to the historical per-step `lhop_curve` loop at every
/// thread count.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn lhop_failure_trace_threaded(
    g: &Graph,
    sel: &BrokerSelection,
    order: FailureOrder,
    steps: usize,
    max_l: usize,
    mode: SourceMode,
    threads: usize,
) -> LhopResilienceTrace {
    assert!(steps > 0, "need at least one step");
    let (victims, prefixes) = victim_prefixes(sel, order, steps);
    let schedule = broker_removal_schedule(g.node_count(), &victims, &prefixes);
    let trace = chaos_trace_threaded(g, sel, &schedule, Some(max_l), mode, threads);
    LhopResilienceTrace {
        removed_fraction: removed_fractions(&prefixes, victims.len()),
        lhop_connectivity: trace.steps.iter().map(|s| s.lhop.unwrap_or(0.0)).collect(),
        max_l,
    }
}

/// Repair policy after failures: spend `budget` replacement brokers,
/// chosen greedily by dominated-component growth (the MaxSG step),
/// excluding the failed vertices. Returns the repaired selection.
///
/// Equal-score candidates are broken uniformly at random from a
/// [`ChaCha8Rng`] seeded with `seed` (the same generator
/// [`FailureOrder::Random`] uses), so the result is a pure function of
/// `(g, survivors, failed, budget, seed)` — reproducible from the run
/// record alone, with no caller-supplied generic RNG whose type and
/// internal state would also have to be recorded.
pub fn greedy_repair(
    g: &Graph,
    survivors: &NodeSet,
    failed: &NodeSet,
    budget: usize,
    seed: u64,
) -> BrokerSelection {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Start from the survivors and extend with MaxSG-style picks that
    // avoid the failed vertices.
    let n = g.node_count();
    let mut order: Vec<NodeId> = survivors.iter().collect();
    let mut brokers = survivors.clone();
    for _ in 0..budget {
        let comps = crate::connectivity::dominated_components(g, &brokers);
        let mut best: Option<u64> = None;
        let mut ties: Vec<NodeId> = Vec::new();
        for w in g.nodes() {
            if brokers.contains(w) || failed.contains(w) {
                continue;
            }
            // Size of the merged component around w.
            let mut seen: Vec<u32> = Vec::new();
            let mut score = 0u64;
            let push = |label: u32, size: usize, seen: &mut Vec<u32>| {
                if label != u32::MAX && !seen.contains(&label) {
                    seen.push(label);
                    size as u64
                } else if label == u32::MAX {
                    1 // isolated vertex counts itself
                } else {
                    0
                }
            };
            score += push(comps.label[w.index()], size_of(&comps, w), &mut seen);
            for &v in g.neighbors(w) {
                score += push(comps.label[v.index()], size_of(&comps, v), &mut seen);
            }
            if best.is_none_or(|bs| score > bs) {
                best = Some(score);
                ties.clear();
                ties.push(w);
            } else if best == Some(score) {
                ties.push(w);
            }
        }
        if ties.is_empty() {
            break;
        }
        let w = ties[rng.gen_range(0..ties.len())];
        brokers.insert(w);
        order.push(w);
    }
    BrokerSelection::new("greedy-repair", n, order)
}

fn size_of(comps: &netgraph::components::Components, v: NodeId) -> usize {
    let l = comps.label[v.index()];
    if l == u32::MAX {
        1
    } else {
        comps.sizes[l as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::saturated_connectivity;
    use crate::maxsg::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    fn setup() -> (netgraph::Graph, BrokerSelection) {
        let net = InternetConfig::scaled(Scale::Tiny).generate(88);
        let g = net.graph().clone();
        let sel = max_subgraph_greedy(&g, 70);
        (g, sel)
    }

    #[test]
    fn targeted_failures_degrade_monotonically() {
        let (g, sel) = setup();
        let trace = failure_trace(&g, &sel, FailureOrder::TargetedBySelectionRank, 10);
        assert_eq!(trace.removed_fraction.len(), trace.connectivity.len());
        for w in trace.connectivity.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "connectivity increased under failure");
        }
        // All brokers gone -> nothing dominated.
        assert!(trace.connectivity.last().unwrap() < &1e-9);
        assert!((trace.removed_fraction.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(trace.total_degradation() > 0.5);
    }

    #[test]
    fn targeted_hurts_more_than_random_early() {
        let (g, sel) = setup();
        let targeted = failure_trace(&g, &sel, FailureOrder::TargetedBySelectionRank, 10);
        let random = failure_trace(&g, &sel, FailureOrder::Random { seed: 5 }, 10);
        // After the first batch (10% of brokers), targeted removal of the
        // founding hubs should hurt at least as much as random removal.
        assert!(
            targeted.connectivity[1] <= random.connectivity[1] + 0.05,
            "targeted {} vs random {}",
            targeted.connectivity[1],
            random.connectivity[1]
        );
    }

    #[test]
    fn repair_recovers_connectivity() {
        let (g, sel) = setup();
        // Fail the top 10 brokers.
        let mut survivors = sel.brokers().clone();
        let mut failed = NodeSet::new(g.node_count());
        for &v in sel.order().iter().take(10) {
            survivors.remove(v);
            failed.insert(v);
        }
        let broken = saturated_connectivity(&g, &survivors).fraction;
        let repaired = greedy_repair(&g, &survivors, &failed, 10, 3);
        let fixed = saturated_connectivity(&g, repaired.brokers()).fraction;
        assert!(
            fixed > broken,
            "repair should improve connectivity ({broken} -> {fixed})"
        );
        // Repair never reuses failed vertices.
        for &v in repaired.order() {
            assert!(!failed.contains(v));
        }
    }

    /// Regression pin: `greedy_repair` is a pure function of its `u64`
    /// seed (no caller-supplied RNG can perturb it), so the exact
    /// replacement list for a fixed scenario must never drift.
    #[test]
    fn repair_pinned_by_seed_alone() {
        let (g, sel) = setup();
        let mut survivors = sel.brokers().clone();
        let mut failed = NodeSet::new(g.node_count());
        for &v in sel.order().iter().take(10) {
            survivors.remove(v);
            failed.insert(v);
        }
        let repaired = greedy_repair(&g, &survivors, &failed, 10, 3);
        let replacements: Vec<u32> = repaired.order()[survivors.len()..]
            .iter()
            .map(|v| v.0)
            .collect();
        assert_eq!(
            replacements, PINNED_REPLACEMENTS,
            "greedy_repair(seed=3) output drifted"
        );
        // Same seed, same answer; the seed is the whole story.
        assert_eq!(
            greedy_repair(&g, &survivors, &failed, 10, 3).order(),
            repaired.order()
        );
    }

    /// The replacement brokers `greedy_repair(seed=3)` picks in the
    /// `repair_pinned_by_seed_alone` scenario (tiny topology, seed 88,
    /// MaxSG-70 selection, top-10 failed).
    const PINNED_REPLACEMENTS: [u32; 10] = [1086, 1087, 978, 456, 1089, 911, 140, 27, 827, 408];

    #[test]
    #[should_panic(expected = "at least one step")]
    fn zero_steps_rejected() {
        let (g, sel) = setup();
        failure_trace(&g, &sel, FailureOrder::TargetedBySelectionRank, 0);
    }

    #[test]
    fn lhop_trace_bounded_by_saturated() {
        let (g, sel) = setup();
        let order = FailureOrder::TargetedBySelectionRank;
        let sat = failure_trace(&g, &sel, order, 5);
        let lhop = lhop_failure_trace(&g, &sel, order, 5, 6, SourceMode::Exact);
        assert_eq!(lhop.max_l, 6);
        assert_eq!(lhop.removed_fraction, sat.removed_fraction);
        // A hop bound can only lose pairs relative to l -> infinity.
        for (l, s) in lhop.lhop_connectivity.iter().zip(&sat.connectivity) {
            assert!(l <= &(s + 1e-12), "lhop {l} above saturated {s}");
        }
        assert!(lhop.lhop_connectivity.last().unwrap() < &1e-9);
        assert!(lhop.total_degradation() > 0.0);
    }

    #[test]
    fn lhop_trace_threaded_matches_sequential() {
        let (g, sel) = setup();
        let order = FailureOrder::Random { seed: 11 };
        let mode = SourceMode::Sampled {
            count: 200,
            seed: 7,
        };
        let seq = lhop_failure_trace(&g, &sel, order, 4, 5, mode);
        for threads in [2usize, 4, 7] {
            let par = lhop_failure_trace_threaded(&g, &sel, order, 4, 5, mode, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
