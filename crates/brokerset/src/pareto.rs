//! Budget–connectivity Pareto frontier and knee-point analysis.
//!
//! The paper's Remark after Fig. 2b: "the broker set's size can be
//! greatly reduced if we mainly focus on the majority part of E2E AS
//! connections". This module turns that into a tool: compute the full
//! (k, connectivity) frontier from one selection run (via the
//! incremental sweep) and locate the *knee* — the budget beyond which a
//! percentage point of connectivity costs disproportionately many
//! brokers.

use crate::problem::BrokerSelection;
use crate::sweep::connectivity_sweep;
use netgraph::Graph;
use serde::{Deserialize, Serialize};

/// The (budget, connectivity) frontier of a selection run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frontier {
    /// `points[i] = (k, connectivity at k)` for k = 1..=len.
    pub points: Vec<(usize, f64)>,
}

impl Frontier {
    /// Compute the frontier of `sel` on `g`.
    pub fn compute(g: &Graph, sel: &BrokerSelection) -> Frontier {
        let sweep = connectivity_sweep(g, sel);
        Frontier {
            points: sweep
                .fractions
                .iter()
                .enumerate()
                .map(|(i, &f)| (i + 1, f))
                .collect(),
        }
    }

    /// Smallest budget reaching at least `target` connectivity, if any.
    pub fn budget_for(&self, target: f64) -> Option<usize> {
        self.points
            .iter()
            .find(|&&(_, f)| f >= target)
            .map(|&(k, _)| k)
    }

    /// The knee point by the max-distance-to-chord rule: the point
    /// farthest (in normalized coordinates) from the straight line
    /// joining the frontier's endpoints. Returns `None` for frontiers
    /// with fewer than 3 points.
    pub fn knee(&self) -> Option<(usize, f64)> {
        if self.points.len() < 3 {
            return None;
        }
        let (k0, f0) = self.points[0];
        let (k1, f1) = *self.points.last()?;
        let dk = (k1 - k0) as f64;
        let df = f1 - f0;
        if dk <= 0.0 {
            return None;
        }
        let mut best = None;
        let mut best_d = f64::NEG_INFINITY;
        for &(k, f) in &self.points {
            // Normalized coordinates in [0, 1]^2.
            let x = (k - k0) as f64 / dk;
            let y = if df.abs() < 1e-15 { 0.0 } else { (f - f0) / df };
            // Distance above the diagonal y = x.
            let d = y - x;
            if d > best_d {
                best_d = d;
                best = Some((k, f));
            }
        }
        best
    }

    /// Marginal connectivity per broker at each point (first differences).
    pub fn marginals(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.points.len());
        let mut prev = 0.0;
        for &(_, f) in &self.points {
            out.push(f - prev);
            prev = f;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxsg::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    fn frontier() -> Frontier {
        let net = InternetConfig::scaled(Scale::Tiny).generate(47);
        let g = net.graph();
        let sel = max_subgraph_greedy(g, 120);
        Frontier::compute(g, &sel)
    }

    #[test]
    fn frontier_monotone_with_budget() {
        let f = frontier();
        for w in f.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-15);
            assert_eq!(w[1].0, w[0].0 + 1);
        }
    }

    #[test]
    fn budget_for_targets() {
        let f = frontier();
        let k50 = f.budget_for(0.5).expect("50% reachable");
        let k90 = f.budget_for(0.9).expect("90% reachable");
        assert!(k50 < k90, "cheaper target needs fewer brokers");
        assert!(f.budget_for(1.1).is_none());
    }

    #[test]
    fn knee_sits_between_extremes() {
        let f = frontier();
        let (k_knee, f_knee) = f.knee().expect("long frontier has a knee");
        let (k_first, _) = f.points[0];
        let (k_last, f_last) = *f.points.last().unwrap();
        assert!(k_first < k_knee && k_knee < k_last);
        // The knee already captures most of the final connectivity.
        assert!(f_knee > 0.5 * f_last, "knee {f_knee} vs final {f_last}");
    }

    #[test]
    fn marginals_sum_to_final() {
        let f = frontier();
        let total: f64 = f.marginals().iter().sum();
        assert!((total - f.points.last().unwrap().1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_frontiers() {
        let g = netgraph::graph::from_edges(2, [(netgraph::NodeId(0), netgraph::NodeId(1))]);
        let sel = crate::greedy::greedy_mcb(&g, 1);
        let f = Frontier::compute(&g, &sel);
        assert_eq!(f.points.len(), 1);
        assert!(f.knee().is_none());
    }
}
