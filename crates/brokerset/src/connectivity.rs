//! l-hop and saturated E2E connectivity under B-dominating paths.
//!
//! A path is **B-dominating** when every hop (edge) has at least one
//! endpoint in the broker set `B`. The paper evaluates a candidate set by
//! the operator `B_A · A` — erase every adjacency entry whose row *and*
//! column lie outside `B` — and counts nonzero entries of its powers
//! (Section 5.2). The surviving edge set is exactly
//! `E_B = {(u, v) ∈ E : u ∈ B ∨ v ∈ B}`, so instead of matrix powers we
//! run BFS over `E_B`:
//!
//! - **saturated connectivity** (l → ∞) — connected components of
//!   `(V, E_B)`, `O(|V| + |E|)`;
//! - **l-hop curves** `F_B(l)` — per-source BFS, either exact (all
//!   sources) or estimated from a uniform source sample with the standard
//!   error reported.

use netgraph::components::Components;
use netgraph::{msbfs, with_msbfs, DominatedView, Graph, GraphView, NodeId, NodeSet, UnionFind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How to choose BFS sources for l-hop evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceMode {
    /// Every vertex is a source: exact but `O(n(n + m))`.
    Exact,
    /// A uniform sample of sources (without replacement), seeded for
    /// reproducibility. Curves are unbiased estimates.
    Sampled {
        /// Number of source vertices.
        count: usize,
        /// RNG seed.
        seed: u64,
    },
}

/// Saturated-connectivity summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivityReport {
    /// Fraction of ordered vertex pairs `(u, v)`, `u ≠ v`, joined by some
    /// B-dominating path (the paper's "saturated E2E connectivity").
    pub fraction: f64,
    /// Number of connected ordered pairs.
    pub connected_pairs: u64,
    /// All ordered pairs `n(n − 1)`.
    pub total_pairs: u64,
    /// Size of the largest component of the dominated edge graph.
    pub giant: usize,
    /// Number of brokers evaluated.
    pub broker_count: usize,
}

/// Resolve a [`SourceMode`] into the concrete BFS source list.
pub(crate) fn sample_sources(g: &Graph, mode: SourceMode) -> Vec<NodeId> {
    let n = g.node_count();
    match mode {
        SourceMode::Exact => g.nodes().collect(),
        SourceMode::Sampled { count, seed } => {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut all: Vec<NodeId> = g.nodes().collect();
            all.shuffle(&mut rng);
            all.truncate(count.max(1).min(n));
            all
        }
    }
}

/// One-sigma standard error of the mean of a without-replacement source
/// sample: Bessel-corrected sample variance with the finite-population
/// correction `(1 - m/n)`.
///
/// Returns `Some(0.0)` when the sample is exhaustive (`m == population`)
/// and `None` for a single sample — the error is unknowable there, and
/// `serde_json` would serialize the old `f64::INFINITY` sentinel as
/// `null` anyway, so the option is the honest (and round-trippable)
/// encoding.
pub fn sample_std_error(values: &[f64], population: usize) -> Option<f64> {
    let m = values.len();
    if m >= population {
        return Some(0.0);
    }
    if m < 2 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / m as f64;
    let var = values.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (m - 1) as f64;
    let fpc = 1.0 - m as f64 / population as f64;
    Some((var * fpc / m as f64).sqrt())
}

/// Dominated-edge BFS over `sources`, returning the cumulative reach
/// histogram (`cum[l]` = total vertices reached within `l + 1` hops,
/// summed over sources) and each source's final reach fraction.
///
/// Sources are traversed in 64-lane [`msbfs`] batches: one adjacency
/// pass per level serves 64 sources at once, which is what makes
/// [`SourceMode::Exact`] affordable beyond toy scales. All accumulated
/// quantities are per-level set cardinalities (integers), so the result
/// is byte-identical to the historical one-arena-BFS-per-source loop —
/// including `finals`, whose division happens per source in source
/// order. Batch boundaries are invisible: each lane only ever
/// contributes its own counts.
pub(crate) fn run_sources(
    g: &Graph,
    brokers: &NodeSet,
    max_l: usize,
    sources: &[NodeId],
) -> (Vec<u64>, Vec<f64>) {
    run_sources_over(
        DominatedView::new(g, brokers),
        g.node_count(),
        max_l,
        sources,
    )
}

/// [`run_sources`] over an arbitrary symmetric [`GraphView`] — the same
/// 64-lane batching, level-pair accumulation and per-source division,
/// so instantiating it with a transparent mask (e.g. an all-clear
/// [`netgraph::FaultView`] over the dominated edge set) is byte-identical
/// to [`run_sources`] itself.
pub(crate) fn run_sources_over<V: GraphView + Copy>(
    view: V,
    n: usize,
    max_l: usize,
    sources: &[NodeId],
) -> (Vec<u64>, Vec<f64>) {
    netgraph::counter!("connectivity.sources_evaluated", sources.len() as u64);
    let mut cum = vec![0u64; max_l];
    let mut finals = Vec::with_capacity(sources.len());
    with_msbfs(|arena| {
        for batch in sources.chunks(msbfs::LANES) {
            // level_pairs[l] = pairs first connected at exactly l + 1
            // hops, summed over the batch's lanes (level 0 is each
            // source discovering itself, excluded from pair counts).
            let mut level_pairs = vec![0u64; max_l];
            arena.run(view, batch, max_l as u32, |wf| {
                let l = wf.level() as usize;
                if l >= 1 {
                    level_pairs[l - 1] += wf.new_pairs();
                }
            });
            let mut acc = 0u64;
            for (slot, &pairs) in cum.iter_mut().zip(&level_pairs) {
                acc += pairs;
                *slot += acc;
            }
            let reach = arena.lane_reach();
            for &r in reach.iter().take(batch.len()) {
                let acc = u64::from(r.saturating_sub(1));
                finals.push(acc as f64 / (n as f64 - 1.0));
            }
        }
    });
    (cum, finals)
}

/// Connected components of `(V, E_B)` where
/// `E_B = {(u, v) : u ∈ B ∨ v ∈ B}`.
pub fn dominated_components(g: &Graph, brokers: &NodeSet) -> Components {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    for b in brokers.iter() {
        for &v in g.neighbors(b) {
            uf.union(b.index(), v.index());
        }
    }
    // Convert union-find into the Components shape.
    let mut label = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    for v in 0..n {
        let r = uf.find(v);
        if label[r] == u32::MAX {
            label[r] = sizes.len() as u32;
            sizes.push(0);
        }
        label[v] = label[r];
        sizes[label[r] as usize] += 1;
    }
    Components { label, sizes }
}

/// Saturated E2E connectivity of a broker set (the l → ∞ value the
/// paper's headline 53.14 / 85.41 / 99.29 % numbers refer to).
pub fn saturated_connectivity(g: &Graph, brokers: &NodeSet) -> ConnectivityReport {
    let n = g.node_count() as u64;
    let comps = dominated_components(g, brokers);
    let connected = comps.connected_ordered_pairs();
    let total = n.saturating_mul(n.saturating_sub(1));
    ConnectivityReport {
        fraction: if total == 0 {
            0.0
        } else {
            connected as f64 / total as f64
        },
        connected_pairs: connected,
        total_pairs: total,
        giant: comps.giant().map_or(0, |(_, s)| s),
        broker_count: brokers.len(),
    }
}

/// An l-hop connectivity curve: `curve[l - 1]` = (estimated) fraction of
/// ordered pairs joined by a B-dominating path of length ≤ l.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LhopCurve {
    /// Cumulative fractions for l = 1 ..= max_l.
    pub fractions: Vec<f64>,
    /// One-sigma error of the final point: `Some(0.0)` for exact
    /// evaluation, `None` when unknowable (single-source samples).
    pub std_error: Option<f64>,
    /// Sources used.
    pub sources: usize,
}

impl LhopCurve {
    /// Fraction at hop bound `l` (1-based); saturates at the last value.
    pub fn at(&self, l: usize) -> f64 {
        if self.fractions.is_empty() || l == 0 {
            0.0
        } else {
            self.fractions[(l - 1).min(self.fractions.len() - 1)]
        }
    }
}

/// Compute `F_B(l)` for `l = 1 ..= max_l`.
///
/// With `brokers = NodeSet::full(n)` this degenerates to the free-path
/// curve ("ASesWithIXPs" in Fig. 2b / Table 3).
pub fn lhop_curve(g: &Graph, brokers: &NodeSet, max_l: usize, mode: SourceMode) -> LhopCurve {
    let n = g.node_count();
    if n < 2 || max_l == 0 {
        return LhopCurve {
            fractions: vec![0.0; max_l],
            std_error: Some(0.0),
            sources: 0,
        };
    }
    let sources = sample_sources(g, mode);
    let (cum, per_source_final) = run_sources(g, brokers, max_l, &sources);

    let denom = sources.len() as f64 * (n as f64 - 1.0);
    let fractions: Vec<f64> = cum.iter().map(|&c| c as f64 / denom).collect();
    let std_error = sample_std_error(&per_source_final, n);
    LhopCurve {
        fractions,
        std_error,
        sources: sources.len(),
    }
}

/// Check whether a specific path is B-dominating: every consecutive hop
/// has an endpoint in `brokers` (and every hop is an actual edge).
pub fn is_dominating_path(g: &Graph, brokers: &NodeSet, path: &[NodeId]) -> bool {
    if path.is_empty() {
        return false;
    }
    path.windows(2)
        .all(|w| g.has_edge(w[0], w[1]) && (brokers.contains(w[0]) || brokers.contains(w[1])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;

    fn path_graph(n: u32) -> Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    fn set(capacity: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_iter_with_capacity(capacity, ids.iter().map(|&i| NodeId(i)))
    }

    #[test]
    fn middle_broker_dominates_short_path() {
        // 0-1-2: B = {1} dominates both edges.
        let g = path_graph(3);
        let r = saturated_connectivity(&g, &set(3, &[1]));
        assert_eq!(r.fraction, 1.0);
        assert_eq!(r.connected_pairs, 6);
        assert_eq!(r.giant, 3);
    }

    #[test]
    fn adjacent_nonbrokers_are_cut() {
        // 0-1-2-3: B = {1}: edge 2-3 undominated -> 3 isolated.
        let g = path_graph(4);
        let r = saturated_connectivity(&g, &set(4, &[1]));
        assert_eq!(r.giant, 3);
        assert_eq!(r.connected_pairs, 6);
        assert!((r.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_broker_set_disconnects_everything() {
        let g = path_graph(4);
        let r = saturated_connectivity(&g, &NodeSet::new(4));
        assert_eq!(r.fraction, 0.0);
        assert_eq!(r.giant, 1);
    }

    #[test]
    fn full_broker_set_equals_plain_connectivity() {
        let g = path_graph(5);
        let r = saturated_connectivity(&g, &NodeSet::full(5));
        assert_eq!(r.fraction, 1.0);
    }

    #[test]
    fn lhop_curve_exact_on_path() {
        // 0-1-2-3 all brokers: distances known.
        let g = path_graph(4);
        let curve = lhop_curve(&g, &NodeSet::full(4), 3, SourceMode::Exact);
        // l=1: 6 ordered pairs of 12; l=2: 10; l=3: 12.
        assert!((curve.at(1) - 0.5).abs() < 1e-12);
        assert!((curve.at(2) - 10.0 / 12.0).abs() < 1e-12);
        assert!((curve.at(3) - 1.0).abs() < 1e-12);
        assert!((curve.at(99) - 1.0).abs() < 1e-12); // saturates
        assert_eq!(curve.std_error, Some(0.0));
    }

    #[test]
    fn lhop_respects_domination() {
        // 0-1-2-3, B = {1}: from 0 reach 1 (l=1), 2 (l=2); never 3.
        let g = path_graph(4);
        let curve = lhop_curve(&g, &set(4, &[1]), 5, SourceMode::Exact);
        // Connected ordered pairs among {0,1,2}: 6 of 12 total.
        assert!((curve.at(5) - 0.5).abs() < 1e-12);
        let sat = saturated_connectivity(&g, &set(4, &[1]));
        assert!((curve.at(5) - sat.fraction).abs() < 1e-12);
    }

    #[test]
    fn lhop_monotone_and_bounded() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4);
        let g = netgraph::barabasi_albert(120, 3, &mut rng);
        let b = crate::greedy::greedy_mcb(&g, 10);
        let curve = lhop_curve(&g, b.brokers(), 6, SourceMode::Exact);
        for w in curve.fractions.windows(2) {
            assert!(w[1] >= w[0] - 1e-15);
        }
        assert!(curve.at(6) <= 1.0 + 1e-12);
    }

    #[test]
    fn sampled_close_to_exact() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let g = netgraph::barabasi_albert(400, 3, &mut rng);
        let b = crate::greedy::greedy_mcb(&g, 25);
        let exact = lhop_curve(&g, b.brokers(), 5, SourceMode::Exact);
        let sampled = lhop_curve(
            &g,
            b.brokers(),
            5,
            SourceMode::Sampled {
                count: 150,
                seed: 9,
            },
        );
        assert!(
            (exact.at(5) - sampled.at(5)).abs() < 0.05,
            "exact {} sampled {}",
            exact.at(5),
            sampled.at(5)
        );
        assert!(sampled.std_error.is_some_and(|se| se > 0.0));
        assert_eq!(sampled.sources, 150);
    }

    #[test]
    fn sampled_curve_deterministic() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        let g = netgraph::barabasi_albert(200, 2, &mut rng);
        let b = crate::greedy::greedy_mcb(&g, 10);
        let mode = SourceMode::Sampled { count: 50, seed: 3 };
        assert_eq!(
            lhop_curve(&g, b.brokers(), 4, mode),
            lhop_curve(&g, b.brokers(), 4, mode)
        );
    }

    #[test]
    fn saturated_equals_lhop_limit() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(12);
        let g = netgraph::erdos_renyi_gnm(80, 160, &mut rng);
        let b = crate::greedy::greedy_mcb(&g, 8);
        let sat = saturated_connectivity(&g, b.brokers());
        let curve = lhop_curve(&g, b.brokers(), 80, SourceMode::Exact);
        assert!((sat.fraction - curve.at(80)).abs() < 1e-12);
    }

    #[test]
    fn dominating_path_checks() {
        let g = path_graph(4);
        let b = set(4, &[1]);
        assert!(is_dominating_path(
            &g,
            &b,
            &[NodeId(0), NodeId(1), NodeId(2)]
        ));
        // Hop 2-3 has no broker endpoint.
        assert!(!is_dominating_path(
            &g,
            &b,
            &[NodeId(1), NodeId(2), NodeId(3)]
        ));
        // Not an edge.
        assert!(!is_dominating_path(&g, &b, &[NodeId(0), NodeId(2)]));
        // Empty path is not a path.
        assert!(!is_dominating_path(&g, &b, &[]));
        // Singleton is trivially dominating.
        assert!(is_dominating_path(&g, &b, &[NodeId(3)]));
    }

    #[allow(clippy::needless_range_loop)]
    /// Literal implementation of the paper's Section 5.2 operator: erase
    /// adjacency entries whose row AND column are outside B, then count
    /// nonzero entries of I + A' + A'^2 + ... + A'^l (boolean powers).
    fn masked_matrix_lhop(g: &Graph, brokers: &NodeSet, l: usize) -> u64 {
        let n = g.node_count();
        let mut a = vec![vec![false; n]; n];
        for (u, v) in g.edges() {
            if brokers.contains(u) || brokers.contains(v) {
                a[u.index()][v.index()] = true;
                a[v.index()][u.index()] = true;
            }
        }
        // reach = boolean (I + A')^l
        let mut reach: Vec<Vec<bool>> = (0..n).map(|i| (0..n).map(|j| i == j).collect()).collect();
        for _ in 0..l {
            let mut next = reach.clone();
            for i in 0..n {
                for k in 0..n {
                    if reach[i][k] {
                        for (j, &akj) in a[k].iter().enumerate() {
                            if akj {
                                next[i][j] = true;
                            }
                        }
                    }
                }
            }
            reach = next;
        }
        let mut count = 0u64;
        for i in 0..n {
            for j in 0..n {
                if i != j && reach[i][j] {
                    count += 1;
                }
            }
        }
        count
    }

    #[test]
    fn bfs_matches_masked_matrix_operator() {
        // The dominated-edge BFS must agree with the paper's matrix
        // formulation exactly, for every l, on random graphs.
        for seed in 0..6u64 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(18, 30, &mut rng);
            let sel = crate::greedy::greedy_mcb(&g, 4);
            let total = 18u64 * 17;
            for l in 1..=5usize {
                let matrix = masked_matrix_lhop(&g, sel.brokers(), l);
                let curve = lhop_curve(&g, sel.brokers(), l, SourceMode::Exact);
                let bfs_pairs = (curve.at(l) * total as f64).round() as u64;
                assert_eq!(
                    matrix, bfs_pairs,
                    "seed {seed}, l={l}: matrix {matrix} vs bfs {bfs_pairs}"
                );
            }
        }
    }

    #[test]
    fn degenerate_graphs() {
        let g = from_edges(1, std::iter::empty());
        let r = saturated_connectivity(&g, &NodeSet::full(1));
        assert_eq!(r.fraction, 0.0);
        assert_eq!(r.total_pairs, 0);
        let curve = lhop_curve(&g, &NodeSet::full(1), 3, SourceMode::Exact);
        assert_eq!(curve.fractions, vec![0.0, 0.0, 0.0]);
    }
}
