//! Baseline broker-selection algorithms from Sections 5.1 and 6.1.
//!
//! - [`set_cover`] (SC) — a randomized dominating-set construction (the
//!   paper's ref \[31\]): scan vertices in random order, adding each vertex not
//!   yet dominated. Yields valid but *large* dominating sets — Fig. 2a
//!   shows the CDF of its size over 300 runs landing around 76 % of all
//!   vertices.
//! - [`degree_based`] (DB) — top-k vertices by degree.
//! - [`pagerank_based`] (PRB) — top-k vertices by PageRank.
//! - [`ixp_based`] (IXPB) — IXPs whose degree exceeds a threshold.
//! - [`tier1_only`] — exactly the tier-1 ASes.

use crate::problem::BrokerSelection;
use netgraph::{pagerank, top_by_score, Graph, NodeId, PageRankConfig};
use rand::seq::SliceRandom;
use rand::Rng;
use topology::{Internet, NodeKind};

/// Randomized dominating-set baseline (SC).
///
/// Scans a uniformly random vertex permutation and adds every vertex that
/// is not yet in `B ∪ N(B)`. The result always dominates the whole graph;
/// its size is the random variable plotted in Fig. 2a.
pub fn set_cover<R: Rng>(g: &Graph, rng: &mut R) -> BrokerSelection {
    let n = g.node_count();
    let mut perm: Vec<NodeId> = g.nodes().collect();
    perm.shuffle(rng);
    let mut cov = crate::coverage::CoverageState::new(g);
    let mut order = Vec::new();
    for v in perm {
        if !cov.covered().contains(v) {
            cov.add(g, v);
            order.push(v);
        }
    }
    BrokerSelection::new("set-cover", n, order)
}

/// Degree-Based baseline (DB): the `k` highest-degree vertices.
pub fn degree_based(g: &Graph, k: usize) -> BrokerSelection {
    let degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
    BrokerSelection::new("db", g.node_count(), top_by_score(&degrees, k))
}

/// PageRank-Based baseline (PRB): the `k` highest-PageRank vertices.
pub fn pagerank_based(g: &Graph, k: usize) -> BrokerSelection {
    let pr = pagerank(g, PageRankConfig::default());
    BrokerSelection::new("prb", g.node_count(), top_by_score(&pr, k))
}

/// IXP-Based baseline (IXPB): all IXPs with degree above `min_degree`
/// (0 selects every IXP, the paper's 322-broker configuration), ordered
/// by descending degree.
pub fn ixp_based(net: &Internet, min_degree: usize) -> BrokerSelection {
    let g = net.graph();
    let mut ixps: Vec<NodeId> = g
        .nodes()
        .filter(|&v| net.kind(v) == NodeKind::Ixp && g.degree(v) >= min_degree)
        .collect();
    ixps.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    BrokerSelection::new("ixpb", g.node_count(), ixps)
}

/// Tier-1-Only baseline: exactly the tier-1 backbone ASes.
pub fn tier1_only(net: &Internet) -> BrokerSelection {
    let g = net.graph();
    let mut t1 = net.tier1s();
    t1.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    BrokerSelection::new("tier1", g.node_count(), t1)
}

/// Greedy dominating set: run the MCB greedy until every vertex is
/// covered. The classic "smallest dominating set" heuristic, the
/// informed counterpart to the randomized [`set_cover`] — Fig. 2a's
/// contrast is between this scale (a few percent of V) and SC's tens of
/// percent.
pub fn greedy_dominating_set(g: &Graph) -> BrokerSelection {
    crate::greedy::greedy_mcb(g, g.node_count())
}

/// Betweenness-Based baseline (extension): the `k` vertices with the
/// highest (sampled) betweenness centrality. Not in the paper — included
/// because shortest-path load is the natural "transit broker" intuition,
/// and the ablation bench shows it inherits DB/PRB's marginal effect.
pub fn betweenness_based<R: Rng>(
    g: &Graph,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> BrokerSelection {
    let bc = netgraph::betweenness(g, Some(samples), rng);
    BrokerSelection::new("bb", g.node_count(), top_by_score(&bc, k))
}

/// Closeness-Based baseline (extension): the `k` vertices with the
/// highest (sampled) closeness centrality — "pick the ASes nearest to
/// everyone". Suffers the same overlap problem as DB/PRB.
pub fn closeness_based<R: Rng>(
    g: &Graph,
    k: usize,
    samples: usize,
    rng: &mut R,
) -> BrokerSelection {
    let cc = netgraph::closeness(g, Some(samples), rng);
    BrokerSelection::new("cb", g.node_count(), top_by_score(&cc, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::dominated_set;
    use netgraph::graph::from_edges;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use topology::{InternetConfig, Scale};

    #[test]
    fn set_cover_always_dominates() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for seed in 0..5u64 {
            let g = netgraph::erdos_renyi_gnm(80, 150, &mut ChaCha8Rng::seed_from_u64(seed));
            let sel = set_cover(&g, &mut rng);
            assert_eq!(dominated_set(&g, sel.brokers()).len(), 80);
        }
    }

    #[test]
    fn set_cover_size_varies_and_is_large() {
        let g = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            netgraph::barabasi_albert(300, 2, &mut rng)
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let sizes: Vec<usize> = (0..30).map(|_| set_cover(&g, &mut rng).len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max > min, "randomized sizes should vary");
        // Much larger than a greedy dominating set.
        let greedy = crate::greedy_mcb(&g, 300).len();
        assert!(
            min > greedy,
            "SC min {min} should exceed greedy dominating size {greedy}"
        );
    }

    #[test]
    fn degree_based_picks_hubs() {
        let g = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let sel = degree_based(&g, 2);
        assert_eq!(sel.order()[0], NodeId(0));
        assert_eq!(sel.len(), 2);
        assert!(degree_based(&g, 0).is_empty());
    }

    #[test]
    fn pagerank_based_picks_hubs() {
        let g = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let sel = pagerank_based(&g, 1);
        assert_eq!(sel.order(), &[NodeId(0)]);
    }

    #[test]
    fn ixpb_and_tier1_on_generated_topology() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(3);
        let all_ixps = ixp_based(&net, 0);
        assert_eq!(all_ixps.len(), net.ixp_count());
        // Ordered by degree descending.
        let g = net.graph();
        let o = all_ixps.order();
        for w in o.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
        // Threshold filters.
        let big_only = ixp_based(&net, g.degree(o[0]));
        assert!(!big_only.is_empty() && big_only.len() <= all_ixps.len());

        let t1 = tier1_only(&net);
        assert_eq!(t1.len(), InternetConfig::scaled(Scale::Tiny).n_tier1);
        for &v in t1.order() {
            assert_eq!(net.kind(v), NodeKind::Tier1);
        }
    }

    #[test]
    fn betweenness_based_picks_bridge() {
        // Two cliques joined by one bridge vertex: BB must pick it first.
        let mut edges = vec![];
        for i in 0..4u32 {
            for j in (i + 1)..4 {
                edges.push((NodeId(i), NodeId(j)));
            }
        }
        for i in 5..9u32 {
            for j in (i + 1)..9 {
                edges.push((NodeId(i), NodeId(j)));
            }
        }
        edges.push((NodeId(3), NodeId(4)));
        edges.push((NodeId(4), NodeId(5)));
        let g = from_edges(9, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let sel = betweenness_based(&g, 1, usize::MAX, &mut rng);
        assert_eq!(sel.order(), &[NodeId(4)]);
    }

    #[test]
    fn closeness_based_picks_center() {
        // Path: the middle vertex is the closeness center.
        let g = from_edges(7, (0..6).map(|i| (NodeId(i), NodeId(i + 1))));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let sel = closeness_based(&g, 1, usize::MAX, &mut rng);
        assert_eq!(sel.order(), &[NodeId(3)]);
    }

    #[test]
    fn set_cover_deterministic_given_rng() {
        let g = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            netgraph::erdos_renyi_gnm(60, 120, &mut rng)
        };
        let a = set_cover(&g, &mut ChaCha8Rng::seed_from_u64(11));
        let b = set_cover(&g, &mut ChaCha8Rng::seed_from_u64(11));
        assert_eq!(a.order(), b.order());
    }
}
