//! # brokerset — broker set selection for inter-domain routing
//!
//! This crate implements the paper's primary contribution: selecting a
//! small set `B` of ASes/IXPs ("brokers") such that as many end-to-end
//! AS pairs as possible are connected by a *B-dominating path* — a path
//! in which every hop has at least one endpoint inside `B`.
//!
//! ## Problems (Section 4 of the paper)
//!
//! - **PDS** — does a broker set of size ≤ k exist whose dominating paths
//!   cover *all* pairs? (NP-complete.)
//! - **MCB** — maximize the coverage `f(B) = |B ∪ N(B)|` with `|B| ≤ k`.
//! - **MCBG** — MCB plus the guarantee that every covered pair is joined
//!   by a B-dominating path. (NP-hard, APX-hard on (α, β)-graphs.)
//! - **MCBG with path-length constraints** — additionally bound the hop
//!   count distribution of the dominating paths (Problem 4 / Eq. (4)).
//!
//! ## Algorithms
//!
//! - [`greedy::greedy_mcb`] — Algorithm 1, the lazy (1 − 1/e) greedy for
//!   MCB.
//! - [`approx::approx_mcbg`] — Algorithm 2, the approximation for MCBG on
//!   an (α, β)-graph: `x*` pre-selected brokers plus shortest-path
//!   stitching brokers `B^r` chosen from the best root.
//! - [`maxsg::max_subgraph_greedy`] — Algorithm 3, the `O(k(|V| + |E|))`
//!   MaxSubGraph-Greedy heuristic.
//! - [`baseline`] — SC, Degree-Based, PageRank-Based, IXP-Based and
//!   Tier-1-Only baselines from Section 5.1/6.1.
//!
//! ## Evaluation
//!
//! [`connectivity`] computes the paper's l-hop E2E connectivity: BFS over
//! the *dominated edge set* `{(u, v) : u ∈ B ∨ v ∈ B}` — exactly the
//! `B_A · A` masked-adjacency operator of Section 5.2 — plus the
//! saturated connectivity (its l → ∞ limit) via connected components.
//!
//! ```
//! use brokerset::{greedy::greedy_mcb, connectivity::saturated_connectivity};
//! use netgraph::{graph::from_edges, NodeId};
//!
//! // A star: the hub alone dominates everything.
//! let g = from_edges(5, (1..5).map(|i| (NodeId(0), NodeId(i))));
//! let sel = greedy_mcb(&g, 1);
//! assert_eq!(sel.brokers().to_vec(), vec![NodeId(0)]);
//! let report = saturated_connectivity(&g, sel.brokers());
//! assert_eq!(report.fraction, 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod approx;
pub mod baseline;
pub mod chaos;
pub mod composition;
pub mod connectivity;
pub mod coverage;
pub mod exact;
pub mod greedy;
pub mod incremental;
pub mod index;
pub mod lengthaware;
pub mod localsearch;
pub mod maxsg;
pub mod parallel;
pub mod pareto;
pub mod problem;
pub mod resilience;
pub mod sweep;
pub mod validate;
pub mod weighted;

pub use approx::{approx_mcbg, ApproxConfig};
pub use baseline::{
    betweenness_based, closeness_based, degree_based, ixp_based, pagerank_based, set_cover,
    tier1_only,
};
pub use chaos::{
    chaos_trace, chaos_trace_threaded, ChaosStep, ChaosTrace, Degradation, DegradationCertificate,
};
pub use composition::{broker_only_connectivity, composition_histogram, ranked_brokers};
pub use connectivity::{
    dominated_components, lhop_curve, saturated_connectivity, ConnectivityReport, SourceMode,
};
pub use coverage::CoverageState;
pub use exact::{solve_mcb_exact, solve_mcbg_exact, solve_pds_exact};
pub use greedy::{greedy_mcb, greedy_mcb_naive};
pub use incremental::{
    BrokerMaintainer, CoverageIndex, EpochReport, MaintainConfig, MaintenanceCertificate,
    StabilityLedger,
};
pub use index::{
    answers_checksum, exact_query, IndexCertificate, IndexCodecError, InvalidationReport,
    ReachIndex, StitchAnswer,
};
pub use lengthaware::{select_with_length_constraint, LengthConstrainedSelection};
pub use localsearch::{local_search_coverage, LocalSearchResult};
pub use maxsg::max_subgraph_greedy;
pub use parallel::lhop_curve_parallel;
pub use pareto::Frontier;
pub use problem::{BrokerSelection, PathLengthConstraint};
pub use resilience::{
    failure_trace, failure_trace_threaded, greedy_repair, lhop_failure_trace,
    lhop_failure_trace_threaded, FailureOrder, LhopResilienceTrace, ResilienceTrace,
};
pub use sweep::{connectivity_sweep, ConnectivitySweep};
pub use validate::{AuditReport, CoverageCertificate, Validate};
pub use weighted::{degree_proxy_weights, greedy_mcb_weighted, WeightedCoverage};
