//! Incremental connectivity sweeps over a selection's prefixes.
//!
//! Fig. 2b and Fig. 3 need the saturated connectivity of *every* prefix
//! `B_1 ⊂ B_2 ⊂ …` of a selection. Recomputing components per prefix
//! costs `O(k(|V| + |E|))`; since adding a broker only *activates* edges
//! (never removes them), one incremental union-find pass does the whole
//! sweep in `O(|V| + |E| α(|V|))` plus `O(1)` per prefix — the
//! `bench/ablation` suite quantifies the gap.

use crate::problem::BrokerSelection;
use netgraph::{Graph, UnionFind};
use serde::{Deserialize, Serialize};

/// Saturated connectivity after each prefix of a selection.
///
/// ```
/// use brokerset::{connectivity_sweep, max_subgraph_greedy};
/// use netgraph::{graph::from_edges, NodeId};
///
/// let g = from_edges(4, (0..3).map(|i| (NodeId(i), NodeId(i + 1))));
/// let sel = max_subgraph_greedy(&g, 3);
/// let sweep = connectivity_sweep(&g, &sel);
/// assert!(sweep.at(sel.len()) >= sweep.at(1)); // monotone in the budget
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectivitySweep {
    /// `fractions[i]` = saturated E2E connectivity of the first `i + 1`
    /// brokers.
    pub fractions: Vec<f64>,
    /// `giants[i]` = size of the largest dominated component at that
    /// prefix.
    pub giants: Vec<usize>,
}

impl ConnectivitySweep {
    /// Connectivity at broker budget `k` (1-based); 0.0 for `k == 0`,
    /// saturates at the last prefix.
    pub fn at(&self, k: usize) -> f64 {
        if k == 0 || self.fractions.is_empty() {
            0.0
        } else {
            self.fractions[(k - 1).min(self.fractions.len() - 1)]
        }
    }
}

/// Sweep the saturated connectivity over every prefix of `sel`.
///
/// The connected-pair count is maintained incrementally: merging two
/// components of sizes `a` and `b` adds `2ab` ordered pairs.
pub fn connectivity_sweep(g: &Graph, sel: &BrokerSelection) -> ConnectivitySweep {
    let n = g.node_count();
    let total_pairs = (n as u64) * (n as u64).saturating_sub(1);
    let mut uf = UnionFind::new(n);
    let mut connected_pairs = 0u64;
    let mut fractions = Vec::with_capacity(sel.len());
    let mut giants = Vec::with_capacity(sel.len());
    for &b in sel.order() {
        for &v in g.neighbors(b) {
            let (rb, rv) = (uf.find(b.index()), uf.find(v.index()));
            if rb != rv {
                let (sa, sb) = (uf.component_size(rb), uf.component_size(rv));
                connected_pairs += 2 * sa as u64 * sb as u64;
                uf.union(rb, rv);
            }
        }
        fractions.push(if total_pairs == 0 {
            0.0
        } else {
            connected_pairs as f64 / total_pairs as f64
        });
        giants.push(uf.largest_component());
    }
    ConnectivitySweep { fractions, giants }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::saturated_connectivity;
    use crate::greedy::greedy_mcb;
    use crate::maxsg::max_subgraph_greedy;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sweep_matches_per_prefix_recomputation() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = netgraph::barabasi_albert(150, 3, &mut rng);
        let sel = greedy_mcb(&g, 15);
        let sweep = connectivity_sweep(&g, &sel);
        for k in 1..=sel.len() {
            let direct = saturated_connectivity(&g, sel.truncated(k).brokers());
            assert!(
                (sweep.at(k) - direct.fraction).abs() < 1e-12,
                "k={k}: sweep {} vs direct {}",
                sweep.at(k),
                direct.fraction
            );
            assert_eq!(sweep.giants[k - 1], direct.giant, "giant at k={k}");
        }
    }

    #[test]
    fn sweep_monotone() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = netgraph::erdos_renyi_gnm(100, 200, &mut rng);
        let sel = max_subgraph_greedy(&g, 20);
        let sweep = connectivity_sweep(&g, &sel);
        for w in sweep.fractions.windows(2) {
            assert!(w[1] >= w[0] - 1e-15);
        }
    }

    #[test]
    fn empty_selection_and_at_bounds() {
        let g = netgraph::graph::from_edges(3, std::iter::empty());
        let sel = BrokerSelection::new("none", 3, vec![]);
        let sweep = connectivity_sweep(&g, &sel);
        assert!(sweep.fractions.is_empty());
        assert_eq!(sweep.at(0), 0.0);
        assert_eq!(sweep.at(5), 0.0);
    }

    proptest! {
        #[test]
        fn sweep_equivalence_random(seed in 0u64..50) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(40, 70, &mut rng);
            let sel = max_subgraph_greedy(&g, 8);
            let sweep = connectivity_sweep(&g, &sel);
            for k in [1usize, sel.len() / 2, sel.len()] {
                if k == 0 { continue; }
                let direct = saturated_connectivity(&g, sel.truncated(k).brokers());
                prop_assert!((sweep.at(k) - direct.fraction).abs() < 1e-12);
            }
        }
    }
}
