//! Exact (exponential) solvers for PDS, MCB and MCBG on small graphs.
//!
//! The paper proves PDS NP-complete (Lemma 1), MCBG NP-hard (Theorem 2)
//! and APX-hard on (α, β)-graphs (Theorem 4); these brute-force solvers
//! exist to *validate* the polynomial algorithms against ground truth on
//! small instances — the property tests check Algorithm 1's (1 − 1/e)
//! bound and Algorithm 2's Theorem-3 ratio empirically.
//!
//! All solvers enumerate subsets by bitmask and are capped at 24
//! vertices.

use crate::connectivity::dominated_components;
use crate::coverage::coverage;
use crate::problem::BrokerSelection;
use netgraph::{Graph, NodeId, NodeSet};

const MAX_EXACT_NODES: usize = 24;

fn assert_small(g: &Graph) {
    assert!(
        g.node_count() <= MAX_EXACT_NODES,
        "exact solvers capped at {MAX_EXACT_NODES} vertices, got {}",
        g.node_count()
    );
}

fn mask_to_set(g: &Graph, mask: u32) -> NodeSet {
    NodeSet::from_iter_with_capacity(
        g.node_count(),
        (0..g.node_count() as u32)
            .filter(|&v| mask >> v & 1 == 1)
            .map(NodeId),
    )
}

fn set_to_selection(algorithm: &str, g: &Graph, mask: u32) -> BrokerSelection {
    BrokerSelection::new(
        algorithm,
        g.node_count(),
        (0..g.node_count() as u32)
            .filter(|&v| mask >> v & 1 == 1)
            .map(NodeId)
            .collect(),
    )
}

/// Iterate all `|V| choose ≤ k` subsets via Gosper's hack per size class.
fn for_each_subset_of_size(n: usize, k: usize, mut f: impl FnMut(u32) -> bool) {
    if k == 0 || n == 0 {
        f(0);
        return;
    }
    for size in 1..=k.min(n) {
        // First subset of `size` bits.
        let mut mask: u32 = (1u32 << size) - 1;
        let limit: u32 = 1u32 << n;
        while mask < limit {
            if f(mask) {
                return;
            }
            // Gosper's hack: next subset with the same popcount.
            let c = mask & mask.wrapping_neg();
            let r = mask + c;
            if r >= limit || c == 0 {
                break;
            }
            mask = r | (((mask ^ r) >> 2) / c);
        }
    }
}

/// Exact PDS decision (Problem 1): is there a `B`, `|B| ≤ k`, giving a
/// B-dominating path between *every* vertex pair? Returns a witness.
///
/// # Panics
///
/// Panics on graphs larger than 24 vertices.
pub fn solve_pds_exact(g: &Graph, k: usize) -> Option<BrokerSelection> {
    assert_small(g);
    let n = g.node_count();
    if n <= 1 {
        return Some(set_to_selection("pds-exact", g, 0));
    }
    let mut witness = None;
    for_each_subset_of_size(n, k, |mask| {
        let set = mask_to_set(g, mask);
        let comps = dominated_components(g, &set);
        if comps.giant().is_some_and(|(_, s)| s == n) {
            witness = Some(set_to_selection("pds-exact", g, mask));
            true // stop
        } else {
            false
        }
    });
    witness
}

/// Exact MCB optimum (Problem 3): the subset of size ≤ k maximizing
/// `f(B) = |B ∪ N(B)|`. Returns the selection and its coverage.
///
/// # Panics
///
/// Panics on graphs larger than 24 vertices.
pub fn solve_mcb_exact(g: &Graph, k: usize) -> (BrokerSelection, usize) {
    assert_small(g);
    let n = g.node_count();
    let mut best_mask = 0u32;
    let mut best_cov = 0usize;
    for_each_subset_of_size(n, k, |mask| {
        let cov = coverage(g, &mask_to_set(g, mask));
        if cov > best_cov {
            best_cov = cov;
            best_mask = mask;
        }
        false
    });
    (set_to_selection("mcb-exact", g, best_mask), best_cov)
}

/// Exact MCBG optimum (Problem 2): maximize `|B ∪ N(B)|` subject to the
/// B-dominating-path guarantee between every pair of covered vertices
/// (the covered set must sit in one component of the dominated edge
/// graph).
///
/// # Panics
///
/// Panics on graphs larger than 24 vertices.
pub fn solve_mcbg_exact(g: &Graph, k: usize) -> (BrokerSelection, usize) {
    assert_small(g);
    let n = g.node_count();
    let mut best_mask = 0u32;
    let mut best_cov = 0usize;
    for_each_subset_of_size(n, k, |mask| {
        let set = mask_to_set(g, mask);
        let covered = crate::coverage::dominated_set(g, &set);
        if covered.len() <= best_cov {
            return false;
        }
        // Guarantee check: all covered vertices in one dominated
        // component.
        let comps = dominated_components(g, &set);
        let ok = comps.giant().is_some_and(|(_, s)| s >= covered.len());
        if ok {
            best_cov = covered.len();
            best_mask = mask;
        }
        false
    });
    (set_to_selection("mcbg-exact", g, best_mask), best_cov)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approx_mcbg, ApproxConfig};
    use crate::greedy::greedy_mcb;
    use netgraph::graph::from_edges;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_graph(n: u32) -> Graph {
        from_edges(n as usize, (0..n - 1).map(|i| (NodeId(i), NodeId(i + 1))))
    }

    #[test]
    fn pds_on_paths() {
        // Path of 4 (0-1-2-3): k=1 insufficient, k=2 works ({1, 2}).
        let g = path_graph(4);
        assert!(solve_pds_exact(&g, 1).is_none());
        let w = solve_pds_exact(&g, 2).expect("k=2 suffices");
        assert!(crate::problem::solves_pds(&g, w.brokers()));
        // Path of 3: the middle vertex alone suffices.
        let g3 = path_graph(3);
        let w3 = solve_pds_exact(&g3, 1).unwrap();
        assert_eq!(w3.order(), &[NodeId(1)]);
    }

    #[test]
    fn pds_trivial_graphs() {
        let empty = from_edges(0, std::iter::empty());
        assert!(solve_pds_exact(&empty, 0).is_some());
        let single = from_edges(1, std::iter::empty());
        assert!(solve_pds_exact(&single, 0).is_some());
        // Disconnected graph can never satisfy PDS.
        let disc = from_edges(4, [(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert!(solve_pds_exact(&disc, 4).is_none());
    }

    #[test]
    fn mcb_exact_on_star() {
        let g = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let (sel, cov) = solve_mcb_exact(&g, 1);
        assert_eq!(sel.order(), &[NodeId(0)]);
        assert_eq!(cov, 6);
    }

    #[test]
    fn mcbg_no_worse_than_k_and_guaranteed() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = netgraph::erdos_renyi_gnm(12, 18, &mut rng);
        let (sel, cov) = solve_mcbg_exact(&g, 3);
        assert!(sel.len() <= 3);
        assert!(cov >= 1);
        let comps = dominated_components(&g, sel.brokers());
        let covered = crate::coverage::dominated_set(&g, sel.brokers());
        assert!(comps.giant().unwrap().1 >= covered.len());
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn exact_rejects_large_graphs() {
        let g = from_edges(30, (0..29).map(|i| (NodeId(i), NodeId(i + 1))));
        solve_mcb_exact(&g, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Theorem-1 empirically: if PDS(k) is solvable, the MCBG optimum
        /// covers everything.
        #[test]
        fn pds_solution_is_mcbg_solution(seed in 0u64..60) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(10, 16, &mut rng);
            let k = 3;
            let pds = solve_pds_exact(&g, k);
            let (_, cov) = solve_mcbg_exact(&g, k);
            if pds.is_some() {
                prop_assert_eq!(cov, g.node_count());
            } else {
                // A full-coverage guaranteed set would itself solve PDS,
                // so the MCBG optimum must fall short of n.
                prop_assert!(cov < g.node_count());
            }
        }

        /// Algorithm 1 respects the (1 − 1/e) bound against the exact
        /// MCB optimum.
        #[test]
        fn greedy_meets_approx_bound(seed in 0u64..60, k in 1usize..4) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(13, 22, &mut rng);
            let (_, opt) = solve_mcb_exact(&g, k);
            let greedy_cov = coverage(&g, greedy_mcb(&g, k).brokers());
            let bound = (1.0 - (-1.0f64).exp()) * opt as f64;
            prop_assert!(greedy_cov as f64 >= bound - 1e-9,
                "greedy {greedy_cov} below (1-1/e)*{opt}");
        }

        /// Algorithm 2 against the exact MCBG optimum: Theorem 3's ratio
        /// is (1 − 1/e)/θ with θ = 2⌈β/2⌉ ≥ 4 for β = 4 — we check the
        /// much stronger empirical ratio 1/4 ... and that the guarantee
        /// constraint always holds.
        #[test]
        fn approx_mcbg_within_theorem3_ratio(seed in 0u64..60, k in 2usize..5) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(12, 20, &mut rng);
            let (_, opt) = solve_mcbg_exact(&g, k);
            let apx = approx_mcbg(&g, k, &ApproxConfig::strict());
            let covered = crate::coverage::dominated_set(&g, apx.brokers());
            let comps = dominated_components(&g, apx.brokers());
            // Guarantee: covered set in one dominated component.
            prop_assert!(comps.giant().is_none_or(|(_, s)| s >= covered.len()));
            // Theorem 3 ratio for beta=4: (1 - 1/e)/4 ≈ 0.158.
            let ratio = (1.0 - (-1.0f64).exp()) / 4.0;
            prop_assert!(covered.len() as f64 >= ratio * opt as f64 - 1e-9,
                "approx coverage {} below ratio bound {:.3} * {opt}",
                covered.len(), ratio);
        }
    }
}
