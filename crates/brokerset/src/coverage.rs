//! The coverage function `f(B) = |B ∪ N(B)|` and its incremental state.
//!
//! `f` is monotone and submodular (Lemma 3 of the paper) — the property
//! tests in this module check both on random graphs — which is what gives
//! the greedy algorithm its (1 − 1/e) guarantee.

use netgraph::{Graph, NodeId, NodeSet};

/// Incrementally maintained coverage of a growing broker set.
///
/// Tracks `B` and the covered set `B ∪ N(B)`; adding a broker and querying
/// the marginal gain of a candidate are both `O(deg(v))`.
///
/// ```
/// use brokerset::CoverageState;
/// use netgraph::{graph::from_edges, NodeId};
///
/// let g = from_edges(4, [(0, 1), (1, 2), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))));
/// let mut cov = CoverageState::new(&g);
/// assert_eq!(cov.gain(&g, NodeId(1)), 3); // {0, 1, 2}
/// cov.add(&g, NodeId(1));
/// assert_eq!(cov.covered_count(), 3);
/// assert_eq!(cov.gain(&g, NodeId(2)), 1); // only 3 is new
/// ```
#[derive(Debug, Clone)]
pub struct CoverageState {
    brokers: NodeSet,
    covered: NodeSet,
}

impl CoverageState {
    /// Empty state for graph `g`.
    pub fn new(g: &Graph) -> Self {
        CoverageState {
            brokers: NodeSet::new(g.node_count()),
            covered: NodeSet::new(g.node_count()),
        }
    }

    /// The broker set `B`.
    pub fn brokers(&self) -> &NodeSet {
        &self.brokers
    }

    /// The covered set `B ∪ N(B)`.
    pub fn covered(&self) -> &NodeSet {
        &self.covered
    }

    /// `f(B)`.
    pub fn covered_count(&self) -> usize {
        self.covered.len()
    }

    /// Marginal gain `f(B ∪ {v}) − f(B)`.
    pub fn gain(&self, g: &Graph, v: NodeId) -> usize {
        let mut gain = usize::from(!self.covered.contains(v));
        for &u in g.neighbors(v) {
            if !self.covered.contains(u) {
                gain += 1;
            }
        }
        gain
    }

    /// Add `v` to `B`; returns the realized gain.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already a broker.
    pub fn add(&mut self, g: &Graph, v: NodeId) -> usize {
        assert!(self.brokers.insert(v), "{v} is already a broker");
        let mut gain = usize::from(self.covered.insert(v));
        for &u in g.neighbors(v) {
            if self.covered.insert(u) {
                gain += 1;
            }
        }
        gain
    }
}

/// One-shot coverage `f(B)` of an arbitrary set.
pub fn coverage(g: &Graph, brokers: &NodeSet) -> usize {
    dominated_set(g, brokers).len()
}

/// The covered set `B ∪ N(B)` of an arbitrary broker set.
pub fn dominated_set(g: &Graph, brokers: &NodeSet) -> NodeSet {
    let mut covered = NodeSet::new(g.node_count());
    for b in brokers.iter() {
        covered.insert(b);
        for &u in g.neighbors(b) {
            covered.insert(u);
        }
    }
    covered
}

impl netgraph::Validate for CoverageState {
    /// Re-derive the incremental-coverage invariants that hold without
    /// the graph in hand:
    ///
    /// 1. the broker and covered bitsets share one capacity;
    /// 2. `B ⊆ B ∪ N(B)` — every broker is covered;
    /// 3. consequently `|B| ≤ f(B)`.
    ///
    /// (That `covered` equals `B ∪ N(B)` exactly is re-checked against
    /// the graph by the coverage property tests; the state alone cannot
    /// know `N`.)
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("brokerset::CoverageState");
        rep.check(
            "coverage.capacities-aligned",
            self.brokers.capacity() == self.covered.capacity(),
            || {
                format!(
                    "brokers capacity {}, covered capacity {}",
                    self.brokers.capacity(),
                    self.covered.capacity()
                )
            },
        );
        rep.check(
            "coverage.brokers-covered",
            self.brokers.capacity() == self.covered.capacity()
                && self.brokers.iter().all(|v| self.covered.contains(v)),
            || "a broker is not in the covered set".into(),
        );
        rep.check(
            "coverage.monotone-count",
            self.brokers.len() <= self.covered.len(),
            || {
                format!(
                    "|B| = {} exceeds f(B) = {}",
                    self.brokers.len(),
                    self.covered.len()
                )
            },
        );
        rep.absorb(self.brokers.audit());
        rep.absorb(self.covered.audit());
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn incremental_matches_oneshot() {
        let g = netgraph::barabasi_albert(200, 3, &mut ChaCha8Rng::seed_from_u64(1));
        let mut cov = CoverageState::new(&g);
        let picks = [3u32, 77, 154, 9, 42];
        for &p in &picks {
            cov.add(&g, NodeId(p));
        }
        let mut set = NodeSet::new(200);
        for &p in &picks {
            set.insert(NodeId(p));
        }
        assert_eq!(cov.covered_count(), coverage(&g, &set));
        assert_eq!(cov.covered(), &dominated_set(&g, &set));
    }

    #[test]
    fn gain_equals_realized_gain() {
        let g = netgraph::barabasi_albert(100, 2, &mut ChaCha8Rng::seed_from_u64(2));
        let mut cov = CoverageState::new(&g);
        for v in [5u32, 17, 60] {
            let predicted = cov.gain(&g, NodeId(v));
            let realized = cov.add(&g, NodeId(v));
            assert_eq!(predicted, realized);
        }
    }

    #[test]
    fn audit_accepts_and_detects_corruption() {
        use netgraph::Validate;
        let g = from_edges(4, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let mut cov = CoverageState::new(&g);
        cov.add(&g, NodeId(1));
        assert!(cov.audit().is_ok());
        assert!(CoverageState::new(&g).audit().is_ok());

        // A broker outside the covered set breaks B ⊆ B ∪ N(B).
        let mut bad = cov.clone();
        bad.covered = NodeSet::new(4); // drop all coverage, keep brokers
        let rep = bad.audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "coverage.brokers-covered"));
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "coverage.monotone-count"));

        // Capacity mismatch between the two bitsets.
        let mut bad = cov;
        bad.covered = NodeSet::full(9);
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "coverage.capacities-aligned"));
    }

    #[test]
    #[should_panic(expected = "already a broker")]
    fn double_add_panics() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        let mut cov = CoverageState::new(&g);
        cov.add(&g, NodeId(0));
        cov.add(&g, NodeId(0));
    }

    #[test]
    fn empty_broker_set_covers_nothing() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        assert_eq!(coverage(&g, &NodeSet::new(3)), 0);
    }

    #[test]
    fn isolated_broker_covers_itself() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        let mut b = NodeSet::new(3);
        b.insert(NodeId(2));
        assert_eq!(coverage(&g, &b), 1);
    }

    proptest! {
        /// f is monotone: adding a broker never decreases coverage.
        #[test]
        fn coverage_monotone(seed in 0u64..500, v in 0u32..60) {
            let g = netgraph::erdos_renyi_gnm(60, 120, &mut ChaCha8Rng::seed_from_u64(seed));
            let mut base = NodeSet::new(60);
            // pseudo-random base set derived from the seed
            for i in 0..10u32 {
                base.insert(NodeId((seed as u32 * 7 + i * 13) % 60));
            }
            let before = coverage(&g, &base);
            let mut bigger = base.clone();
            bigger.insert(NodeId(v));
            prop_assert!(coverage(&g, &bigger) >= before);
        }

        /// f is submodular: gain(v | A) >= gain(v | A ∪ B) for A ⊆ A ∪ B.
        #[test]
        fn coverage_submodular(seed in 0u64..500, v in 0u32..60, extra in 0u32..60) {
            let g = netgraph::erdos_renyi_gnm(60, 120, &mut ChaCha8Rng::seed_from_u64(seed));
            let mut small = CoverageState::new(&g);
            let mut large = CoverageState::new(&g);
            for i in 0..6u32 {
                let b = NodeId((seed as u32 * 11 + i * 17) % 60);
                if !small.brokers().contains(b) {
                    small.add(&g, b);
                    large.add(&g, b);
                }
            }
            if !large.brokers().contains(NodeId(extra)) {
                large.add(&g, NodeId(extra));
            }
            prop_assert!(small.gain(&g, NodeId(v)) >= large.gain(&g, NodeId(v)));
        }
    }
}
