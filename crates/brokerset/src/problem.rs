//! Problem statements and the common result type of all selection
//! algorithms.

use netgraph::{Graph, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The ordered outcome of a broker-selection algorithm.
///
/// Selection order is preserved — the paper ranks brokers by the
/// iteration at which they were chosen (Table 5), and Fig. 2's curves are
/// produced by truncating one long selection run at increasing k.
///
/// ```
/// use brokerset::{greedy_mcb, BrokerSelection};
/// use netgraph::{graph::from_edges, NodeId};
///
/// let g = from_edges(5, (1..5).map(|i| (NodeId(0), NodeId(i))));
/// let sel: BrokerSelection = greedy_mcb(&g, 2);
/// assert_eq!(sel.rank(NodeId(0)), Some(1)); // the hub is picked first
/// assert!(sel.brokers().contains(NodeId(0)));
/// assert_eq!(sel.truncated(1).len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerSelection {
    /// Short algorithm tag, e.g. `"greedy-mcb"`, `"maxsg"`, `"db"`.
    algorithm: String,
    /// Brokers in the order they were selected.
    order: Vec<NodeId>,
    /// Same brokers as a set, for O(1) membership tests.
    set: NodeSet,
}

impl BrokerSelection {
    /// Assemble a selection.
    ///
    /// # Panics
    ///
    /// Panics if `order` contains duplicates or ids outside `0..capacity`.
    pub fn new(algorithm: impl Into<String>, capacity: usize, order: Vec<NodeId>) -> Self {
        let mut set = NodeSet::new(capacity);
        for &v in &order {
            assert!(set.insert(v), "duplicate broker {v} in selection order");
        }
        let sel = BrokerSelection {
            algorithm: algorithm.into(),
            order,
            set,
        };
        netgraph::validate::debug_validate(&sel);
        sel
    }

    /// Algorithm tag this selection came from.
    pub fn algorithm(&self) -> &str {
        &self.algorithm
    }

    /// Brokers in selection order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// The broker set.
    pub fn brokers(&self) -> &NodeSet {
        &self.set
    }

    /// Number of brokers.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no broker was selected.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The selection truncated to its first `k` brokers (used to sweep k
    /// without re-running the algorithm, exactly like the paper's Fig. 2b
    /// size sweep for DB/PRB; note this is only meaningful for algorithms
    /// whose prefix of length k equals their k-budget output).
    pub fn truncated(&self, k: usize) -> BrokerSelection {
        BrokerSelection::new(
            self.algorithm.clone(),
            self.set.capacity(),
            self.order.iter().copied().take(k).collect(),
        )
    }

    /// 1-based selection rank of a broker, `None` if not selected.
    pub fn rank(&self, v: NodeId) -> Option<usize> {
        self.order.iter().position(|&b| b == v).map(|i| i + 1)
    }
}

impl fmt::Display for BrokerSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} selection of {} brokers", self.algorithm, self.len())
    }
}

/// Path-length requirement of Problem 4 / Eq. (4): the broker set's l-hop
/// connectivity curve must stay within `epsilon` of a reference curve at
/// every l.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathLengthConstraint {
    /// Reference cumulative distribution `F(l)` (fraction of all ordered
    /// pairs connected within `l` hops), index 0 = l of 1.
    pub reference: Vec<f64>,
    /// Allowed uniform deviation ε.
    pub epsilon: f64,
}

impl PathLengthConstraint {
    /// Build from a reference curve.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or the reference is not a
    /// monotone CDF in [0, 1].
    pub fn new(reference: Vec<f64>, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        for w in reference.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "reference curve must be non-decreasing"
            );
        }
        if let (Some(&first), Some(&last)) = (reference.first(), reference.last()) {
            assert!((0.0..=1.0 + 1e-12).contains(&first) && last <= 1.0 + 1e-12);
        }
        PathLengthConstraint { reference, epsilon }
    }

    /// Check a measured curve against the constraint: `|F_B(l) − F(l)| ≤ ε`
    /// for every l present in both curves.
    pub fn is_satisfied_by(&self, measured: &[f64]) -> bool {
        self.max_deviation(measured) <= self.epsilon
    }

    /// Largest deviation between the curves over the common prefix; if
    /// lengths differ, the shorter curve is extended with its final value
    /// (a saturated CDF stays flat).
    pub fn max_deviation(&self, measured: &[f64]) -> f64 {
        let len = self.reference.len().max(measured.len());
        let mut worst = 0.0f64;
        for l in 0..len {
            let r = extend(&self.reference, l);
            let m = extend(measured, l);
            worst = worst.max((r - m).abs());
        }
        worst
    }
}

fn extend(curve: &[f64], i: usize) -> f64 {
    if curve.is_empty() {
        0.0
    } else {
        curve[i.min(curve.len() - 1)]
    }
}

impl netgraph::Validate for PathLengthConstraint {
    /// Re-derive the constructor's contract on the stored curve: ε is
    /// finite and non-negative, and the reference is a monotone CDF with
    /// values in `[0, 1]` (up to the constructor's 1e-12 slack).
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("brokerset::PathLengthConstraint");
        rep.check(
            "plc.epsilon-valid",
            self.epsilon.is_finite() && self.epsilon >= 0.0,
            || format!("epsilon {}", self.epsilon),
        );
        let monotone = self.reference.windows(2).all(|w| w[1] >= w[0] - 1e-12);
        rep.check("plc.reference-monotone", monotone, || {
            "reference curve decreases somewhere".into()
        });
        let in_unit = self
            .reference
            .iter()
            .all(|&x| x.is_finite() && (-1e-12..=1.0 + 1e-12).contains(&x));
        rep.check("plc.reference-in-unit-interval", in_unit, || {
            "a reference value is outside [0, 1]".into()
        });
        rep
    }
}

/// The decision version of the Path-Dominating Set problem (Problem 1):
/// does `brokers` give every pair in the graph a B-dominating path?
///
/// Decided exactly by checking that the dominated edge set connects all
/// vertices — `O(|V| + |E|)`.
pub fn solves_pds(g: &Graph, brokers: &NodeSet) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    let comps = crate::connectivity::dominated_components(g, brokers);
    comps.giant().is_some_and(|(_, s)| s == g.node_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;

    #[test]
    fn selection_preserves_order_and_set() {
        let sel = BrokerSelection::new("test", 10, vec![NodeId(5), NodeId(2), NodeId(7)]);
        assert_eq!(sel.order(), &[NodeId(5), NodeId(2), NodeId(7)]);
        assert!(sel.brokers().contains(NodeId(2)));
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.rank(NodeId(2)), Some(2));
        assert_eq!(sel.rank(NodeId(9)), None);
        assert_eq!(sel.algorithm(), "test");
        assert!(!sel.is_empty());
        assert!(sel.to_string().contains("3 brokers"));
    }

    #[test]
    fn truncation() {
        let sel = BrokerSelection::new("t", 10, vec![NodeId(1), NodeId(2), NodeId(3)]);
        let t = sel.truncated(2);
        assert_eq!(t.order(), &[NodeId(1), NodeId(2)]);
        assert_eq!(sel.truncated(99).len(), 3);
        assert!(sel.truncated(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate broker")]
    fn duplicate_brokers_rejected() {
        BrokerSelection::new("t", 10, vec![NodeId(1), NodeId(1)]);
    }

    #[test]
    fn path_length_constraint_checks() {
        let c = PathLengthConstraint::new(vec![0.2, 0.6, 0.9, 0.99], 0.05);
        assert!(c.is_satisfied_by(&[0.18, 0.58, 0.91, 0.99]));
        assert!(!c.is_satisfied_by(&[0.18, 0.40, 0.91, 0.99]));
        // Shorter measured curve extends flat.
        assert!(c.is_satisfied_by(&[0.2, 0.6, 0.9, 0.99, 0.99, 0.99]));
        let dev = c.max_deviation(&[0.2, 0.6, 0.9]);
        assert!((dev - 0.09).abs() < 1e-12); // 0.99 vs flat 0.9
    }

    #[test]
    fn constraint_audit_accepts_and_detects_corruption() {
        use netgraph::Validate;
        let good = PathLengthConstraint::new(vec![0.2, 0.6, 0.99], 0.05);
        assert!(good.audit().is_ok());

        // The fields are pub, so a caller can corrupt a constructed
        // constraint; the audit re-derives the constructor's contract.
        let mut bad = good.clone();
        bad.epsilon = f64::NAN;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "plc.epsilon-valid"));

        let mut bad = good.clone();
        bad.reference[1] = 0.1; // decreasing after 0.2
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "plc.reference-monotone"));

        let mut bad = good;
        bad.reference[2] = 1.7;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "plc.reference-in-unit-interval"));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_reference_rejected() {
        PathLengthConstraint::new(vec![0.5, 0.4], 0.1);
    }

    #[test]
    fn pds_decision() {
        // Path 0-1-2: {1} dominates both edges -> all pairs have
        // dominating paths.
        let g = from_edges(3, [(0, 1), (1, 2)].map(|(a, b)| (NodeId(a), NodeId(b))));
        let mut b = NodeSet::new(3);
        b.insert(NodeId(1));
        assert!(solves_pds(&g, &b));
        // {0} leaves edge 1-2 undominated -> vertex 2 unreachable.
        let mut b0 = NodeSet::new(3);
        b0.insert(NodeId(0));
        assert!(!solves_pds(&g, &b0));
        // Trivial graphs.
        assert!(solves_pds(
            &from_edges(1, std::iter::empty()),
            &NodeSet::new(1)
        ));
        assert!(solves_pds(
            &from_edges(0, std::iter::empty()),
            &NodeSet::new(0)
        ));
    }
}
