//! Multi-threaded l-hop connectivity evaluation.
//!
//! The per-source BFS over the dominated edge set is embarrassingly
//! parallel: sources are independent and the graph is shared read-only.
//! [`lhop_curve_parallel`] fans the source list out through the
//! deterministic executor in [`netgraph::par`] — on the full 52k-node
//! topology this is the difference between minutes and seconds for exact
//! curves.

use crate::connectivity::{run_sources, sample_sources, sample_std_error, LhopCurve, SourceMode};
use netgraph::{msbfs, par, Graph, NodeSet};
use std::sync::Arc;

/// Parallel version of [`crate::lhop_curve`]; produces *bit-identical*
/// results for the same inputs at every thread count.
///
/// The fan-out unit is one msbfs **lane batch**: batch `b` covers
/// `sources[b * LANES .. (b + 1) * LANES]`, so every work item feeds the
/// 64-lane kernel a full batch instead of single sources. Batch
/// boundaries are fixed by [`msbfs::LANES`] (never by `threads`), the
/// cumulative histogram merge is integer-additive, and the per-source
/// finals concatenate in batch order — so the result is invariant both
/// to the thread count *and* to how batches are grouped into pool
/// chunks, which makes [`par::adaptive_chunk`] sizing safe here.
///
/// `threads = 0` means all hardware threads
/// ([`std::thread::available_parallelism`]); worker panics propagate to
/// the caller.
pub fn lhop_curve_parallel(
    g: &Graph,
    brokers: &NodeSet,
    max_l: usize,
    mode: SourceMode,
    threads: usize,
) -> LhopCurve {
    let n = g.node_count();
    if n < 2 || max_l == 0 {
        return LhopCurve {
            fractions: vec![0.0; max_l],
            std_error: Some(0.0),
            sources: 0,
        };
    }
    let sources = Arc::new(sample_sources(g, mode));
    let n_sources = sources.len();
    let batches: Vec<u32> = (0..n_sources.div_ceil(msbfs::LANES) as u32).collect();

    // Pool jobs are 'static: the closure owns one CSR clone, one broker
    // set clone, and a shared handle on the source list.
    let g_owned = g.clone();
    let brokers_owned = brokers.clone();
    let src = Arc::clone(&sources);
    let chunk_size = par::adaptive_chunk(batches.len(), threads);
    let (cum, finals) = par::map_reduce(
        &batches,
        chunk_size,
        threads,
        move |chunk| {
            let mut cum = vec![0u64; max_l];
            let mut finals = Vec::new();
            for &b in chunk {
                let lo = b as usize * msbfs::LANES;
                let hi = (lo + msbfs::LANES).min(src.len());
                let (batch_cum, batch_finals) =
                    run_sources(&g_owned, &brokers_owned, max_l, &src[lo..hi]);
                for (acc, c) in cum.iter_mut().zip(batch_cum) {
                    *acc += c;
                }
                finals.extend(batch_finals);
            }
            (cum, finals)
        },
        (vec![0u64; max_l], Vec::with_capacity(n_sources)),
        |(mut cum, mut finals), (partial_cum, partial_finals)| {
            for (acc, c) in cum.iter_mut().zip(partial_cum) {
                *acc += c;
            }
            finals.extend(partial_finals);
            (cum, finals)
        },
    );

    let denom = sources.len() as f64 * (n as f64 - 1.0);
    let fractions: Vec<f64> = cum.iter().map(|&c| c as f64 / denom).collect();
    let std_error = sample_std_error(&finals, n);
    LhopCurve {
        fractions,
        std_error,
        sources: sources.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::lhop_curve;
    use crate::greedy::greedy_mcb;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential_exact() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let g = netgraph::barabasi_albert(400, 3, &mut rng);
        let sel = greedy_mcb(&g, 25);
        let seq = lhop_curve(&g, sel.brokers(), 6, SourceMode::Exact);
        for threads in [0, 2, 4, 7] {
            let par = lhop_curve_parallel(&g, sel.brokers(), 6, SourceMode::Exact, threads);
            assert_eq!(seq.fractions, par.fractions, "threads = {threads}");
            assert_eq!(seq.sources, par.sources);
        }
    }

    #[test]
    fn parallel_matches_sequential_sampled() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = netgraph::erdos_renyi_gnm(300, 900, &mut rng);
        let sel = greedy_mcb(&g, 15);
        let mode = SourceMode::Sampled {
            count: 120,
            seed: 9,
        };
        let seq = lhop_curve(&g, sel.brokers(), 5, mode);
        let par = lhop_curve_parallel(&g, sel.brokers(), 5, mode, 4);
        assert_eq!(seq.fractions, par.fractions);
        assert_eq!(seq.std_error, par.std_error);
    }

    #[test]
    fn single_thread_matches_sequential() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = netgraph::erdos_renyi_gnm(60, 120, &mut rng);
        let sel = greedy_mcb(&g, 5);
        let a = lhop_curve_parallel(&g, sel.brokers(), 4, SourceMode::Exact, 1);
        let b = lhop_curve(&g, sel.brokers(), 4, SourceMode::Exact);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_graph() {
        let g = netgraph::graph::from_edges(1, std::iter::empty());
        let c = lhop_curve_parallel(&g, &NodeSet::full(1), 3, SourceMode::Exact, 4);
        assert_eq!(c.fractions, vec![0.0, 0.0, 0.0]);
    }
}
