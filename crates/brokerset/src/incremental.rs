//! Incremental broker-set maintenance under epochal topology deltas.
//!
//! The paper selects its broker set once, on a static snapshot. A
//! long-lived serving system lives through churn — IXP births,
//! membership growth, AS births and deaths — and recomputing greedy MCB
//! from scratch every epoch is pure batch posture: almost all coverage
//! gains are untouched by any one epoch's edits. This module maintains
//! the greedy selection *incrementally*:
//!
//! - [`CoverageIndex`] — the delta-aware coverage state shared with
//!   [`crate::greedy_mcb`]: per-vertex *cover counts* (`|closed(x) ∩ B|`
//!   rather than a covered bit) so broker removals are as cheap as
//!   additions, growable so vertex births do not invalidate it.
//! - [`celf_fill`] lives here too (refactored out of `greedy.rs`): the
//!   CELF stale-gain priority queue that both the one-shot greedy and
//!   the incremental engine drain. Submodularity makes cached heap
//!   gains upper bounds within an epoch; across a delta, a gain can
//!   only *increase* when a vertex acquires an uncovered closed
//!   neighbor, and [`BrokerMaintainer::apply`] re-seeds fresh
//!   `deg + 1` bounds for exactly those vertices (added-edge endpoints,
//!   newborns, and the closed neighborhoods of vertices that flipped
//!   covered → uncovered), preserving the upper-bound invariant the
//!   lazy evaluation relies on.
//! - [`BrokerMaintainer`] — applies a [`netgraph::GraphDelta`] per
//!   epoch: withdraws dead brokers, patches only the *touched* cover
//!   counts, evicts brokers whose exclusive coverage dropped to zero,
//!   re-seeds dirty bounds and lazily refills the budget. Every epoch
//!   appends an [`EpochReport`] (swaps, coverage, gains re-evaluated)
//!   to a [`StabilityLedger`]; a [`MaintenanceCertificate`] certifies
//!   the whole state — including the coverage gap against a full
//!   from-scratch recompute — through [`netgraph::Validate`].
//!
//! When an epoch touches more than [`MaintainConfig::rebuild_fraction`]
//! of the vertices, the engine falls back to an exact full recompute
//! (bit-identical to [`crate::greedy_mcb`]); otherwise the maintained
//! set tracks the recomputed one within a small, *measured* coverage
//! gap — the differential property tests assert both regimes.

use crate::problem::BrokerSelection;
use netgraph::{Graph, GraphDelta, NodeId, NodeSet};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

/// Growable, removal-friendly coverage state: for every vertex `x`, the
/// number of brokers in its closed neighborhood (`x` and its
/// neighbors). `x` is covered iff its count is positive, so
/// `f(B) = |B ∪ N(B)|` is the number of positive counts — and removing
/// a broker is a decrement, not a recompute.
///
/// Unlike [`crate::CoverageState`] (two fixed-capacity bitsets), the
/// index survives vertex births: [`CoverageIndex::grow_to`] extends the
/// count vector, and brokers live in a `BTreeSet` with no capacity to
/// outgrow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageIndex {
    brokers: BTreeSet<NodeId>,
    /// `cover_count[x] = |closed(x) ∩ B|`.
    cover_count: Vec<u32>,
    /// Number of vertices with a positive count, i.e. `f(B)`.
    covered: usize,
}

impl CoverageIndex {
    /// Empty index over `n` vertices.
    pub fn new(n: usize) -> Self {
        let idx = CoverageIndex {
            brokers: BTreeSet::new(),
            cover_count: vec![0; n],
            covered: 0,
        };
        netgraph::validate::debug_validate(&idx);
        idx
    }

    /// Extend the vertex range to `n` (newborns start uncovered);
    /// shrinking is a no-op.
    pub fn grow_to(&mut self, n: usize) {
        if n > self.cover_count.len() {
            self.cover_count.resize(n, 0);
        }
    }

    /// Current vertex capacity.
    pub fn capacity(&self) -> usize {
        self.cover_count.len()
    }

    /// The broker set `B`.
    pub fn brokers(&self) -> &BTreeSet<NodeId> {
        &self.brokers
    }

    /// Whether `v` is a broker.
    pub fn is_broker(&self, v: NodeId) -> bool {
        self.brokers.contains(&v)
    }

    /// `f(B)` — vertices with at least one broker in their closed
    /// neighborhood.
    pub fn covered_count(&self) -> usize {
        self.covered
    }

    /// Brokers covering `x` (the cover count).
    pub fn cover_count(&self, x: NodeId) -> u32 {
        self.cover_count[x.index()]
    }

    /// Marginal gain `f(B ∪ {v}) − f(B)`: uncovered vertices in `v`'s
    /// closed neighborhood.
    pub fn gain(&self, g: &Graph, v: NodeId) -> usize {
        let mut gain = usize::from(self.cover_count[v.index()] == 0);
        for &u in g.neighbors(v) {
            if self.cover_count[u.index()] == 0 {
                gain += 1;
            }
        }
        gain
    }

    /// Vertices only `b` covers — the coverage that would be lost if `b`
    /// were evicted.
    pub fn exclusive_coverage(&self, g: &Graph, b: NodeId) -> usize {
        let mut excl = usize::from(self.cover_count[b.index()] == 1);
        for &u in g.neighbors(b) {
            if self.cover_count[u.index()] == 1 {
                excl += 1;
            }
        }
        excl
    }

    /// Add broker `v`; returns the realized gain.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already a broker.
    pub fn add(&mut self, g: &Graph, v: NodeId) -> usize {
        assert!(self.brokers.insert(v), "{v} is already a broker");
        let mut gained = self.bump(v);
        for &u in g.neighbors(v) {
            gained += self.bump(u);
        }
        gained
    }

    /// Remove broker `v`; returns the coverage lost.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a broker.
    pub fn remove(&mut self, g: &Graph, v: NodeId) -> usize {
        assert!(self.brokers.remove(&v), "{v} is not a broker");
        let mut lost = self.unbump(v);
        for &u in g.neighbors(v) {
            lost += self.unbump(u);
        }
        lost
    }

    /// Overwrite `x`'s cover count, keeping the covered tally
    /// consistent.
    pub(crate) fn set_count(&mut self, x: NodeId, count: u32) {
        let old = self.cover_count[x.index()];
        self.cover_count[x.index()] = count;
        match (old > 0, count > 0) {
            (false, true) => self.covered += 1,
            (true, false) => self.covered -= 1,
            _ => {}
        }
    }

    /// `|closed(x) ∩ B|` re-derived from `g` (not the stored count).
    pub(crate) fn count_from_graph(&self, g: &Graph, x: NodeId) -> u32 {
        let mut c = u32::from(self.brokers.contains(&x));
        for &u in g.neighbors(x) {
            if self.brokers.contains(&u) {
                c += 1;
            }
        }
        c
    }

    fn bump(&mut self, x: NodeId) -> usize {
        let c = &mut self.cover_count[x.index()];
        *c += 1;
        if *c == 1 {
            self.covered += 1;
            1
        } else {
            0
        }
    }

    fn unbump(&mut self, x: NodeId) -> usize {
        let c = &mut self.cover_count[x.index()];
        *c -= 1;
        if *c == 0 {
            self.covered -= 1;
            1
        } else {
            0
        }
    }
}

impl netgraph::Validate for CoverageIndex {
    /// Self-contained invariants (graph-free):
    ///
    /// 1. the covered tally equals the number of positive counts;
    /// 2. every broker id is inside the count vector;
    /// 3. every broker covers at least itself (`count ≥ 1`).
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("brokerset::CoverageIndex");
        rep.check(
            "covindex.covered-tally",
            self.covered == self.cover_count.iter().filter(|&&c| c > 0).count(),
            || {
                format!(
                    "covered tally {} disagrees with the count vector",
                    self.covered
                )
            },
        );
        let in_range = self
            .brokers
            .iter()
            .all(|v| v.index() < self.cover_count.len());
        rep.check("covindex.brokers-in-range", in_range, || {
            "a broker id is outside the count vector".into()
        });
        rep.check(
            "covindex.brokers-covered",
            in_range
                && self
                    .brokers
                    .iter()
                    .all(|v| self.cover_count[v.index()] >= 1),
            || "a broker's own cover count is zero".into(),
        );
        rep
    }
}

/// The CELF loop shared by [`crate::greedy_mcb`] and the incremental
/// engine: drain stale cached gains from `heap`, re-evaluating lazily,
/// selecting into `order` until the budget `k` is reached, the graph is
/// fully covered, or every remaining gain is zero. Returns the number
/// of gains re-evaluated.
///
/// `strict` asserts the submodularity bound `fresh ≤ cached` (valid for
/// a freshly seeded heap; a heap carried across deltas may hold
/// understated entries, which cost extra re-evaluations but never break
/// the max-entry upper-bound invariant the caller maintains).
pub(crate) fn celf_fill(
    g: &Graph,
    idx: &mut CoverageIndex,
    k: usize,
    heap: &mut BinaryHeap<(usize, Reverse<NodeId>)>,
    order: &mut Vec<NodeId>,
    strict: bool,
) -> usize {
    let n = g.node_count();
    let mut reevals = 0usize;
    while order.len() < k && idx.covered_count() < n {
        let Some((cached, Reverse(v))) = heap.pop() else {
            break;
        };
        if idx.is_broker(v) {
            continue;
        }
        // Drop duplicate entries for `v` sitting at the top (an epoch's
        // dirty re-seeding can enqueue a vertex more than once).
        while matches!(heap.peek(), Some(&(_, Reverse(u))) if u == v) {
            heap.pop();
        }
        let fresh = idx.gain(g, v);
        reevals += 1;
        if strict {
            debug_assert!(fresh <= cached, "submodularity violated");
        }
        let still_best = heap
            .peek()
            .is_none_or(|&(next, Reverse(u))| fresh > next || (fresh == next && v < u));
        if still_best {
            if fresh == 0 {
                // Nothing left to cover; keep `v` enqueued for future
                // epochs (a delta may resurrect its gain).
                heap.push((0, Reverse(v)));
                break;
            }
            idx.add(g, v);
            order.push(v);
        } else {
            heap.push((fresh, Reverse(v)));
        }
    }
    reevals
}

/// What one epoch of maintenance did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index (1-based; epoch 0 is the initial selection).
    pub epoch: u32,
    /// Brokers evicted this epoch (died, or lost all exclusive
    /// coverage), ascending.
    pub swapped_out: Vec<NodeId>,
    /// Brokers selected this epoch, in selection order.
    pub swapped_in: Vec<NodeId>,
    /// `f(B)` after the epoch.
    pub coverage: usize,
    /// Vertex count after the epoch.
    pub node_count: usize,
    /// Gains lazily re-evaluated this epoch (the work the CELF queue
    /// did *not* skip).
    pub gains_reevaluated: usize,
    /// Whether the epoch fell back to an exact full recompute.
    pub recomputed: bool,
    /// Relative coverage gap vs a full recompute, if measured
    /// (`(full − incremental) / full`; negative when the maintained set
    /// covers more).
    pub coverage_gap: Option<f64>,
}

impl EpochReport {
    /// Brokers changed this epoch (evictions plus selections).
    pub fn swaps(&self) -> usize {
        self.swapped_out.len() + self.swapped_in.len()
    }

    /// Replay this epoch's swaps onto the pre-epoch broker set,
    /// producing the post-epoch set sized at this epoch's vertex count.
    ///
    /// `(before-resized, after)` is exactly the `(current, target)`
    /// configuration pair the `routing::plan` reconfiguration planner
    /// takes, so a maintenance epoch can be applied as a dependency-DAG
    /// transition instead of an atomic swap. Brokers outside the new
    /// vertex range (tombstoned before this epoch) are dropped from both
    /// sides.
    pub fn transition(&self, before: &NodeSet) -> (NodeSet, NodeSet) {
        let n = self.node_count;
        let mut cur = NodeSet::new(n);
        for b in before.iter() {
            if b.index() < n {
                cur.insert(b);
            }
        }
        let mut after = cur.clone();
        for &b in &self.swapped_out {
            if b.index() < n {
                after.remove(b);
            }
        }
        for &b in &self.swapped_in {
            if b.index() < n {
                after.insert(b);
            }
        }
        (cur, after)
    }
}

/// Append-only regret/stability ledger: one [`EpochReport`] per applied
/// delta.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StabilityLedger {
    reports: Vec<EpochReport>,
}

impl StabilityLedger {
    /// All epoch reports, oldest first.
    pub fn reports(&self) -> &[EpochReport] {
        &self.reports
    }

    /// Total brokers swapped across all epochs.
    pub fn total_swaps(&self) -> usize {
        self.reports.iter().map(EpochReport::swaps).sum()
    }

    /// The largest single-epoch swap count (the stability headline: how
    /// much of the alliance can churn at once).
    pub fn max_swaps_per_epoch(&self) -> usize {
        self.reports
            .iter()
            .map(EpochReport::swaps)
            .max()
            .unwrap_or(0)
    }

    /// Attach a measured coverage gap to epoch report `i`.
    pub fn set_gap(&mut self, i: usize, gap: f64) {
        self.reports[i].coverage_gap = Some(gap);
    }

    fn push(&mut self, r: EpochReport) {
        self.reports.push(r);
    }
}

/// Tuning knobs of the incremental engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintainConfig {
    /// When one epoch's delta touches at least this fraction of the
    /// vertices, fall back to an exact full recompute instead of
    /// patching — the patch bookkeeping would approach the recompute
    /// cost anyway, and the fallback re-anchors the maintained set to
    /// the exact greedy selection.
    pub rebuild_fraction: f64,
}

impl Default for MaintainConfig {
    fn default() -> Self {
        MaintainConfig {
            rebuild_fraction: 0.25,
        }
    }
}

/// Epoch-driven maintainer of a greedy broker set under
/// [`GraphDelta`]s.
///
/// ```
/// use brokerset::{BrokerMaintainer, MaintainConfig};
/// use netgraph::{graph::from_edges, GraphDelta, NodeId};
///
/// let g = from_edges(5, (1..5).map(|i| (NodeId(0), NodeId(i))));
/// let mut m = BrokerMaintainer::new(&g, 2, MaintainConfig::default());
/// assert_eq!(m.brokers(), &[NodeId(0)]); // the hub covers everything
///
/// // Epoch 1: a new vertex attaches to vertex 1.
/// let mut d = GraphDelta::new(5);
/// let w = d.add_node();
/// d.add_edge(w, NodeId(1));
/// let g1 = g.apply_delta(&d);
/// let report = m.apply(&g, &g1, &d);
/// assert_eq!(report.epoch, 1);
/// assert_eq!(m.coverage(), 6); // budget refilled to cover the newborn
/// ```
#[derive(Debug, Clone)]
pub struct BrokerMaintainer {
    k: usize,
    cfg: MaintainConfig,
    idx: CoverageIndex,
    /// Persistent CELF queue; for every non-broker its *maximum* entry
    /// is an upper bound on its true gain (see [`celf_fill`]).
    heap: BinaryHeap<(usize, Reverse<NodeId>)>,
    /// Current brokers in selection order (evictions keep the relative
    /// order of survivors).
    order: Vec<NodeId>,
    epoch: u32,
    ledger: StabilityLedger,
}

impl BrokerMaintainer {
    /// Select the initial (epoch-0) broker set on `g` — bit-identical
    /// to [`crate::greedy_mcb`] — and prime the incremental state.
    pub fn new(g: &Graph, k: usize, cfg: MaintainConfig) -> Self {
        let mut m = BrokerMaintainer {
            k,
            cfg,
            idx: CoverageIndex::new(g.node_count()),
            heap: BinaryHeap::new(),
            order: Vec::new(),
            epoch: 0,
            ledger: StabilityLedger::default(),
        };
        m.recompute(g);
        netgraph::validate::debug_validate(&m);
        m
    }

    /// Budget `k`.
    pub fn budget(&self) -> usize {
        self.k
    }

    /// Current brokers in selection order.
    pub fn brokers(&self) -> &[NodeId] {
        &self.order
    }

    /// Current `f(B)`.
    pub fn coverage(&self) -> usize {
        self.idx.covered_count()
    }

    /// Epochs applied so far.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The regret/stability ledger.
    pub fn ledger(&self) -> &StabilityLedger {
        &self.ledger
    }

    /// Mutable ledger access (for attaching measured coverage gaps).
    pub fn ledger_mut(&mut self) -> &mut StabilityLedger {
        &mut self.ledger
    }

    /// The coverage index (counts, broker set).
    pub fn index(&self) -> &CoverageIndex {
        &self.idx
    }

    /// Package the current brokers as a [`BrokerSelection`].
    pub fn selection(&self) -> BrokerSelection {
        BrokerSelection::new(
            "greedy-mcb-incremental",
            self.idx.capacity(),
            self.order.clone(),
        )
    }

    /// A machine-checkable certificate binding this maintainer to a
    /// graph (and optionally to a coverage-gap bound vs full
    /// recompute); validate with [`netgraph::Validate::audit`].
    pub fn certify<'a>(&'a self, g: &'a Graph) -> MaintenanceCertificate<'a> {
        MaintenanceCertificate {
            maintainer: self,
            graph: g,
            gap_bound: None,
        }
    }

    /// Apply one epoch's delta: `old_g` is the graph the maintainer
    /// currently tracks, `new_g = old_g.apply_delta(delta)` (passed in
    /// so the caller keeps ownership of the epoch graphs and the
    /// maintenance cost excludes the CSR rebuild both sides pay).
    ///
    /// # Panics
    ///
    /// Panics if the graphs do not match the delta's vertex counts.
    pub fn apply(&mut self, old_g: &Graph, new_g: &Graph, delta: &GraphDelta) -> &EpochReport {
        assert_eq!(
            old_g.node_count(),
            delta.base_nodes(),
            "old graph does not match the delta's base"
        );
        assert_eq!(
            new_g.node_count(),
            delta.node_count_after(),
            "new graph does not match the delta's result"
        );
        self.epoch += 1;
        let old_n = old_g.node_count();
        let new_n = new_g.node_count();
        self.idx.grow_to(new_n);

        let mut swapped_out: Vec<NodeId> = Vec::new();

        // Vertices whose cover count may have changed: endpoints of
        // edited edges, the dead and their old neighborhoods, newborns.
        let mut affected: BTreeSet<NodeId> = BTreeSet::new();
        for &(a, b) in delta.added_edges().iter().chain(delta.removed_edges()) {
            affected.insert(NodeId(a));
            affected.insert(NodeId(b));
        }
        for &v in delta.removed_nodes() {
            affected.insert(v);
            // A delta may tombstone one of its own newborns; those have
            // no old adjacency to consult.
            if v.index() < old_n {
                for &u in old_g.neighbors(v) {
                    affected.insert(u);
                }
            }
        }
        for v in old_n..new_n {
            affected.insert(NodeId::from(v));
        }

        // First-touch snapshot of every cover count this epoch edits,
        // for covered → uncovered flip detection below.
        let mut touched: BTreeMap<NodeId, u32> = BTreeMap::new();

        // Dead brokers leave the set first, returning the counts they
        // contributed along their *old* adjacency (their edges are gone
        // in `new_g`).
        for &v in delta.removed_nodes() {
            if self.idx.is_broker(v) {
                // A newborn cannot be a broker yet, so `v` predates the
                // delta and its old adjacency is consultable.
                touched.entry(v).or_insert(self.idx.cover_count(v));
                for &u in old_g.neighbors(v) {
                    touched.entry(u).or_insert(self.idx.cover_count(u));
                }
                self.idx.remove(old_g, v);
                swapped_out.push(v);
            }
        }

        // Heavy epoch: patching would approach recompute cost, so
        // re-anchor exactly.
        if (affected.len() as f64) >= self.cfg.rebuild_fraction * (new_n as f64) {
            return self.apply_recompute(new_g, swapped_out);
        }

        // Patch counts differentially, one edge transition at a time:
        // the distinct vertex pairs whose adjacency may differ between
        // the graphs are the edited pairs plus the incident pairs of the
        // dead. Comparing old vs new adjacency per pair makes this
        // robust to duplicate or self-cancelling delta ops, and — unlike
        // re-counting closed neighborhoods — the cost stays O(Δ log deg)
        // even when churn lands on hubs. Brokers that may have lost
        // their last exclusively covered vertex are collected as
        // eviction candidates along the way.
        let mut pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        let norm = |a: NodeId, b: NodeId| if a < b { (a, b) } else { (b, a) };
        for &(a, b) in delta.added_edges().iter().chain(delta.removed_edges()) {
            if a != b {
                pairs.insert(norm(NodeId(a), NodeId(b)));
            }
        }
        for &v in delta.removed_nodes() {
            if v.index() < old_n {
                for &u in old_g.neighbors(v) {
                    pairs.insert(norm(v, u));
                }
            }
        }
        let mut evict_candidates: BTreeSet<NodeId> = BTreeSet::new();
        let mut raised_from_one: Vec<NodeId> = Vec::new();
        for &(a, b) in &pairs {
            let was = a.index() < old_n && b.index() < old_n && old_g.has_edge(a, b);
            let is = new_g.has_edge(a, b);
            if was == is {
                continue;
            }
            if !is {
                // A vanished edge is the only way a surviving broker
                // endpoint can lose an exclusively covered vertex it
                // still neighbors.
                for v in [a, b] {
                    if self.idx.is_broker(v) {
                        evict_candidates.insert(v);
                    }
                }
            }
            for (x, y) in [(a, b), (b, a)] {
                if self.idx.is_broker(y) {
                    let old = *touched.entry(x).or_insert(self.idx.cover_count(x));
                    let c = self.idx.cover_count(x);
                    self.idx.set_count(x, if is { c + 1 } else { c - 1 });
                    if old == 1 && self.idx.cover_count(x) >= 2 {
                        raised_from_one.push(x);
                    }
                }
            }
        }

        // Covered → uncovered flips: the only way an *untouched*
        // vertex's gain can rise.
        let flipped_uncovered: Vec<NodeId> = touched
            .iter()
            .filter(|&(&x, &old)| old > 0 && self.idx.cover_count(x) == 0)
            .map(|(&x, _)| x)
            .collect();

        // A vertex whose count rose from exactly 1 had a unique covering
        // broker that may now cover nothing exclusively; it sits in the
        // vertex's closed neighborhood.
        for &x in &raised_from_one {
            if self.idx.cover_count(x) < 2 {
                continue; // later transitions pulled it back down
            }
            if self.idx.is_broker(x) {
                evict_candidates.insert(x);
            }
            for &u in new_g.neighbors(x) {
                if self.idx.is_broker(u) {
                    evict_candidates.insert(u);
                }
            }
        }

        // Evict candidates whose exclusive coverage dropped to zero —
        // their budget slot buys more elsewhere. The eviction itself
        // flips nothing (nothing was exclusively theirs), so no further
        // propagation is needed.
        for &b in &evict_candidates {
            if self.idx.is_broker(b) && self.idx.exclusive_coverage(new_g, b) == 0 {
                self.idx.remove(new_g, b);
                swapped_out.push(b);
            }
        }
        swapped_out.sort_unstable();
        let out_set: BTreeSet<NodeId> = swapped_out.iter().copied().collect();
        self.order.retain(|v| !out_set.contains(v));

        // Re-seed fresh upper bounds for every vertex whose gain may
        // have *increased*: added-edge endpoints, newborns, evicted
        // brokers (candidates again), and the closed neighborhoods of
        // freshly uncovered vertices.
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        for &(a, b) in delta.added_edges() {
            dirty.insert(NodeId(a));
            dirty.insert(NodeId(b));
        }
        for v in old_n..new_n {
            dirty.insert(NodeId::from(v));
        }
        dirty.extend(out_set.iter().copied());
        for &u in &flipped_uncovered {
            dirty.insert(u);
            for &w in new_g.neighbors(u) {
                dirty.insert(w);
            }
        }
        for &v in &dirty {
            if !self.idx.is_broker(v) {
                self.heap.push((new_g.degree(v) + 1, Reverse(v)));
            }
        }

        // Lazily refill the freed budget.
        let before = self.order.len();
        let reevals = celf_fill(
            new_g,
            &mut self.idx,
            self.k,
            &mut self.heap,
            &mut self.order,
            false,
        );
        let swapped_in: Vec<NodeId> = self.order[before..].to_vec();

        self.finish_epoch(swapped_out, swapped_in, new_n, reevals, false)
    }

    /// The exact-recompute path of [`BrokerMaintainer::apply`].
    fn apply_recompute(&mut self, new_g: &Graph, dead: Vec<NodeId>) -> &EpochReport {
        let before: BTreeSet<NodeId> = self.order.iter().copied().collect();
        let reevals = self.recompute(new_g);
        let after: BTreeSet<NodeId> = self.order.iter().copied().collect();
        let mut swapped_out: Vec<NodeId> = before.difference(&after).copied().collect();
        for v in dead {
            // A dead broker is out even if the diff cannot see it (it
            // was dropped from `order` by recompute already).
            if !swapped_out.contains(&v) && !after.contains(&v) && before.contains(&v) {
                swapped_out.push(v);
            }
        }
        swapped_out.sort_unstable();
        let swapped_in: Vec<NodeId> = after.difference(&before).copied().collect();
        let n = new_g.node_count();
        self.finish_epoch(swapped_out, swapped_in, n, reevals, true)
    }

    fn finish_epoch(
        &mut self,
        swapped_out: Vec<NodeId>,
        swapped_in: Vec<NodeId>,
        node_count: usize,
        reevals: usize,
        recomputed: bool,
    ) -> &EpochReport {
        netgraph::counter!("incremental.gains_reevaluated", reevals as u64);
        netgraph::counter!(
            "incremental.swaps",
            (swapped_out.len() + swapped_in.len()) as u64
        );
        self.ledger.push(EpochReport {
            epoch: self.epoch,
            swapped_out,
            swapped_in,
            coverage: self.idx.covered_count(),
            node_count,
            gains_reevaluated: reevals,
            recomputed,
            coverage_gap: None,
        });
        netgraph::validate::debug_validate(self);
        // The report pushed four lines up: index, not `last().unwrap()`,
        // so the accessor cannot panic-path through an Option.
        &self.ledger.reports[self.ledger.reports.len() - 1]
    }

    /// From-scratch exact selection on `g` (the same computation as
    /// [`crate::greedy_mcb`]); replaces index, heap and order.
    fn recompute(&mut self, g: &Graph) -> usize {
        self.idx = CoverageIndex::new(g.node_count());
        self.heap = g.nodes().map(|v| (g.degree(v) + 1, Reverse(v))).collect();
        self.order = Vec::with_capacity(self.k.min(g.node_count()));
        celf_fill(
            g,
            &mut self.idx,
            self.k,
            &mut self.heap,
            &mut self.order,
            true,
        )
    }
}

impl netgraph::Validate for BrokerMaintainer {
    /// Graph-free invariants of the maintained state:
    ///
    /// 1. the selection order holds no duplicates and at most `k`
    ///    brokers;
    /// 2. order and index agree on the broker set;
    /// 3. ledger epochs are strictly increasing up to the current epoch;
    /// 4. the coverage index passes its own audit.
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("brokerset::BrokerMaintainer");
        let order_set: BTreeSet<NodeId> = self.order.iter().copied().collect();
        rep.check(
            "maintainer.order-unique",
            order_set.len() == self.order.len(),
            || "duplicate broker in selection order".into(),
        );
        rep.check(
            "maintainer.within-budget",
            self.order.len() <= self.k,
            || format!("{} brokers exceed budget {}", self.order.len(), self.k),
        );
        rep.check(
            "maintainer.order-matches-index",
            order_set == self.idx.brokers().iter().copied().collect(),
            || "selection order and coverage index disagree on B".into(),
        );
        let epochs_ok = self
            .ledger
            .reports()
            .windows(2)
            .all(|w| w[0].epoch < w[1].epoch)
            && self
                .ledger
                .reports()
                .last()
                .is_none_or(|r| r.epoch == self.epoch);
        rep.check("maintainer.ledger-epochs", epochs_ok, || {
            "ledger epochs are not strictly increasing up to now".into()
        });
        rep.absorb(self.idx.audit());
        rep
    }
}

/// Binds a [`BrokerMaintainer`] to the graph it claims to track (and
/// optionally to a coverage-gap bound); [`netgraph::Validate::audit`]
/// re-derives every cover count from the graph, so a drifted index
/// cannot certify.
#[derive(Debug, Clone)]
pub struct MaintenanceCertificate<'a> {
    maintainer: &'a BrokerMaintainer,
    graph: &'a Graph,
    gap_bound: Option<f64>,
}

impl<'a> MaintenanceCertificate<'a> {
    /// Additionally require the maintained coverage to stay within
    /// `bound` (relative) of a full greedy recompute on the same graph.
    /// The audit then *runs the recompute* — exact but not free.
    pub fn with_gap_bound(mut self, bound: f64) -> MaintenanceCertificate<'a> {
        self.gap_bound = Some(bound);
        self
    }
}

impl netgraph::Validate for MaintenanceCertificate<'_> {
    /// Cross-checks the maintainer against the graph: capacity matches,
    /// every cover count re-derives, `f(B)` agrees, and (if bounded)
    /// the coverage gap vs [`crate::greedy_mcb`] is within bounds.
    fn audit(&self) -> netgraph::AuditReport {
        let mut rep = netgraph::AuditReport::new("brokerset::MaintenanceCertificate");
        let m = self.maintainer;
        let g = self.graph;
        rep.check(
            "certificate.capacity",
            m.idx.capacity() == g.node_count(),
            || {
                format!(
                    "index capacity {} vs graph {}",
                    m.idx.capacity(),
                    g.node_count()
                )
            },
        );
        if m.idx.capacity() == g.node_count() {
            let counts_ok = g
                .nodes()
                .all(|x| m.idx.count_from_graph(g, x) == m.idx.cover_count(x));
            rep.check("certificate.counts-rederive", counts_ok, || {
                "a stored cover count disagrees with the graph".into()
            });
            let derived_cov = g
                .nodes()
                .filter(|&x| m.idx.count_from_graph(g, x) > 0)
                .count();
            rep.check(
                "certificate.coverage-rederives",
                derived_cov == m.coverage(),
                || format!("stored f(B) {} vs derived {derived_cov}", m.coverage()),
            );
        }
        if let Some(bound) = self.gap_bound {
            let full = crate::greedy_mcb(g, m.k);
            let full_cov = crate::coverage::coverage(g, full.brokers());
            let gap = if full_cov == 0 {
                0.0
            } else {
                (full_cov as f64 - m.coverage() as f64) / full_cov as f64
            };
            rep.check("certificate.gap-within-bound", gap <= bound, || {
                format!("coverage gap {gap:.6} exceeds bound {bound}")
            });
        }
        rep.absorb(m.audit());
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;
    use netgraph::Validate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn star(n: u32) -> Graph {
        from_edges(n as usize, (1..n).map(|i| (NodeId(0), NodeId(i))))
    }

    #[test]
    fn index_matches_coverage_state() {
        let g = netgraph::barabasi_albert(120, 3, &mut ChaCha8Rng::seed_from_u64(5));
        let mut idx = CoverageIndex::new(120);
        let mut cov = crate::CoverageState::new(&g);
        for v in [3u32, 77, 9, 42] {
            assert_eq!(idx.gain(&g, NodeId(v)), cov.gain(&g, NodeId(v)));
            assert_eq!(idx.add(&g, NodeId(v)), cov.add(&g, NodeId(v)));
            assert_eq!(idx.covered_count(), cov.covered_count());
        }
        assert!(idx.audit().is_ok());
    }

    #[test]
    fn add_remove_round_trips() {
        let g = star(6);
        let mut idx = CoverageIndex::new(6);
        let gained = idx.add(&g, NodeId(0));
        assert_eq!(gained, 6);
        assert_eq!(idx.exclusive_coverage(&g, NodeId(0)), 6);
        idx.add(&g, NodeId(1));
        // Everything vertex 1 covers, the hub covers too.
        assert_eq!(idx.exclusive_coverage(&g, NodeId(1)), 0);
        let lost = idx.remove(&g, NodeId(1));
        assert_eq!(lost, 0);
        assert_eq!(idx.covered_count(), 6);
        let lost = idx.remove(&g, NodeId(0));
        assert_eq!(lost, 6);
        assert_eq!(idx.covered_count(), 0);
        assert!(idx.brokers().is_empty());
    }

    #[test]
    fn grow_keeps_counts() {
        let g = star(4);
        let mut idx = CoverageIndex::new(4);
        idx.add(&g, NodeId(0));
        idx.grow_to(7);
        assert_eq!(idx.capacity(), 7);
        assert_eq!(idx.cover_count(NodeId(5)), 0);
        assert_eq!(idx.covered_count(), 4);
        idx.grow_to(3); // shrink is a no-op
        assert_eq!(idx.capacity(), 7);
    }

    #[test]
    fn index_audit_detects_corruption() {
        let g = star(4);
        let mut idx = CoverageIndex::new(4);
        idx.add(&g, NodeId(0));
        assert!(idx.audit().is_ok());
        let mut bad = idx.clone();
        bad.covered = 1;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "covindex.covered-tally"));
        let mut bad = idx.clone();
        bad.brokers.insert(NodeId(99));
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "covindex.brokers-in-range"));
        let mut bad = idx;
        bad.brokers.insert(NodeId(2));
        bad.cover_count[2] = 0;
        bad.covered = 3;
        assert!(bad
            .audit()
            .findings
            .iter()
            .any(|f| f.invariant == "covindex.brokers-covered"));
    }

    #[test]
    fn epoch_transition_replays_to_the_maintained_set() {
        // Whatever apply() did, report.transition(pre-epoch set) must
        // land exactly on the post-epoch maintained set — the contract
        // the reconfiguration planner's inputs ride on.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g0 = netgraph::barabasi_albert(160, 3, &mut rng);
        let mut m = BrokerMaintainer::new(&g0, 10, MaintainConfig::default());
        let mut g = g0.clone();
        for round in 0..6 {
            let before =
                NodeSet::from_iter_with_capacity(g.node_count(), m.brokers().iter().copied());
            let mut d = GraphDelta::new(g.node_count());
            let v = d.add_node();
            d.add_edge(v, NodeId(round * 7 % 160));
            d.remove_edge(NodeId(round % 20), NodeId((round % 20 + 1) % 20));
            let new_g = g.apply_delta(&d);
            let report = m.apply(&g, &new_g, &d).clone();
            let (cur, after) = report.transition(&before);
            assert_eq!(cur.capacity(), new_g.node_count());
            let want: Vec<NodeId> = {
                let mut b = m.brokers().to_vec();
                b.sort_unstable();
                b
            };
            assert_eq!(after.to_vec(), want, "round {round}");
            g = new_g;
        }
    }

    #[test]
    fn initial_selection_matches_greedy() {
        for seed in 0..6 {
            let g = netgraph::barabasi_albert(150, 3, &mut ChaCha8Rng::seed_from_u64(seed));
            let m = BrokerMaintainer::new(&g, 12, MaintainConfig::default());
            let full = crate::greedy_mcb(&g, 12);
            assert_eq!(m.brokers(), full.order(), "seed {seed}");
            assert_eq!(m.selection().order(), full.order());
            assert!(m.certify(&g).audit().is_ok());
        }
    }

    #[test]
    fn growth_epoch_extends_coverage() {
        let g = star(5);
        let mut m = BrokerMaintainer::new(&g, 2, MaintainConfig::default());
        assert_eq!(m.brokers(), &[NodeId(0)]);
        // Two newborns attach to vertex 3.
        let mut d = GraphDelta::new(5);
        let a = d.add_node();
        let b = d.add_node();
        d.add_edge(a, NodeId(3));
        d.add_edge(b, NodeId(3));
        let g1 = g.apply_delta(&d);
        let r = m.apply(&g, &g1, &d).clone();
        assert_eq!(r.epoch, 1);
        assert!(r.swapped_out.is_empty());
        // Budget refills: vertex 3 now covers itself + hub-adjacents + 2
        // newborns — the engine picks it (or covers the newborns some
        // other way) and coverage is complete.
        assert_eq!(m.coverage(), 7);
        assert!(m.certify(&g1).audit().is_ok());
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.ledger().reports().len(), 1);
    }

    #[test]
    fn broker_death_is_swapped_out_and_replaced() {
        let g = star(6);
        let mut m = BrokerMaintainer::new(
            &g,
            3,
            MaintainConfig {
                rebuild_fraction: 1.1,
            },
        );
        assert_eq!(m.brokers(), &[NodeId(0)]);
        let mut d = GraphDelta::new(6);
        d.remove_node(NodeId(0));
        let g1 = g.apply_delta(&d);
        let r = m.apply(&g, &g1, &d).clone();
        assert!(r.swapped_out.contains(&NodeId(0)));
        assert!(!r.recomputed, "rebuild_fraction 1.1 forces the patch path");
        // All 6 vertices are now isolated (5 leaves + the tombstone);
        // budget 3 covers three of them by ascending id — exactly what a
        // full greedy recompute on the new graph selects. The tombstone
        // is evicted as a *hub* and re-selected as a self-covering
        // isolated vertex.
        assert_eq!(m.brokers(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(m.brokers(), crate::greedy_mcb(&g1, 3).order());
        assert_eq!(m.coverage(), 3);
        assert!(m.certify(&g1).audit().is_ok());
        assert_eq!(r.swaps(), 1 + 3);
    }

    #[test]
    fn redundant_broker_is_evicted() {
        // Path 0-1, plus isolated 2: k=2 selects {0 or 1} then 2.
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        let mut m = BrokerMaintainer::new(
            &g,
            2,
            MaintainConfig {
                rebuild_fraction: 1.1,
            },
        );
        let first = m.brokers().to_vec();
        assert_eq!(first.len(), 2);
        // Epoch 1: connect 2 to both 0 and 1 — broker 2's exclusive
        // coverage collapses (0/1's closed neighborhood now covers it).
        let mut d = GraphDelta::new(3);
        d.add_edge(NodeId(2), NodeId(0));
        d.add_edge(NodeId(2), NodeId(1));
        let g1 = g.apply_delta(&d);
        let r = m.apply(&g, &g1, &d).clone();
        // In the triangle every broker's coverage is redundant with the
        // other's; the ascending eviction scan drops the first one and
        // the survivor retains exclusive coverage of all three vertices.
        assert_eq!(r.swapped_out.len(), 1, "report: {r:?}");
        assert_eq!(m.brokers().len(), 1);
        assert_eq!(m.coverage(), 3);
        assert!(m.certify(&g1).audit().is_ok());
    }

    #[test]
    fn heavy_epoch_falls_back_to_exact_recompute() {
        let g = netgraph::barabasi_albert(80, 2, &mut ChaCha8Rng::seed_from_u64(7));
        let mut m = BrokerMaintainer::new(
            &g,
            8,
            MaintainConfig {
                rebuild_fraction: 0.01,
            },
        );
        let mut d = GraphDelta::new(80);
        d.add_edge(NodeId(3), NodeId(70));
        d.add_edge(NodeId(4), NodeId(71));
        let g1 = g.apply_delta(&d);
        let r = m.apply(&g, &g1, &d).clone();
        assert!(r.recomputed, "4 touched vertices >= 1% of 80");
        let full = crate::greedy_mcb(&g1, 8);
        assert_eq!(m.brokers(), full.order(), "recompute path is exact");
        assert!(m.certify(&g1).with_gap_bound(0.0).audit().is_ok());
    }

    #[test]
    fn certificate_detects_index_drift() {
        let g = star(5);
        let mut m = BrokerMaintainer::new(&g, 2, MaintainConfig::default());
        m.idx.cover_count[3] = 7; // drift
        let rep = m.certify(&g).audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "certificate.counts-rederive"));
        // And the gap bound fires when coverage is corrupted away.
        let mut m2 = BrokerMaintainer::new(&g, 2, MaintainConfig::default());
        m2.idx.set_count(NodeId(0), 0);
        m2.idx.set_count(NodeId(1), 0);
        let rep = m2.certify(&g).with_gap_bound(0.1).audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "certificate.gap-within-bound"));
    }

    #[test]
    fn maintainer_audit_detects_corruption() {
        let g = star(5);
        let mut m = BrokerMaintainer::new(&g, 2, MaintainConfig::default());
        assert!(m.audit().is_ok());
        m.order.push(NodeId(4)); // order no longer matches the index
        let rep = m.audit();
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "maintainer.order-matches-index"));
    }

    #[test]
    fn ledger_aggregates() {
        let mut ledger = StabilityLedger::default();
        for (e, (o, i)) in [(1u32, (2usize, 1usize)), (2, (0, 3))] {
            ledger.push(EpochReport {
                epoch: e,
                swapped_out: (0..o as u32).map(NodeId).collect(),
                swapped_in: (10..10 + i as u32).map(NodeId).collect(),
                coverage: 5,
                node_count: 9,
                gains_reevaluated: 4,
                recomputed: false,
                coverage_gap: None,
            });
        }
        assert_eq!(ledger.total_swaps(), 6);
        assert_eq!(ledger.max_swaps_per_epoch(), 3);
        ledger.set_gap(0, 0.01);
        assert_eq!(ledger.reports()[0].coverage_gap, Some(0.01));
        // Reports serialize (the bench records them).
        let json = serde_json::to_string(&ledger).expect("serialize");
        let back: StabilityLedger = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, ledger);
    }
}
