//! Hop-bounded reachability index over the dominated subgraph — the
//! repo's query plane.
//!
//! Every evaluation so far has been a batch job; a brokerage deployment
//! instead answers point queries: *can `(s, t)` be stitched through the
//! broker set within `l` hops, and via which broker?* [`ReachIndex`]
//! precomputes per-broker hop-distance shards so that question costs a
//! single `O(k)` row scan (`k` = broker count) instead of a BFS.
//!
//! ## Why broker-hub labeling is exact
//!
//! In the dominated edge set `{(u, v) : u ∈ B ∨ v ∈ B}` every edge has a
//! broker endpoint, so any dominated path of length ≥ 1 visits a broker
//! no later than its first edge. For any vertices `s ≠ t` the dominated
//! hop distance therefore satisfies
//!
//! ```text
//! d(s, t) = min over live brokers b of d(s, b) + d(b, t)
//! ```
//!
//! (≤ by concatenation, ≥ because a shortest dominated path contains a
//! broker `b` with `d(s, b) + d(b, t) = d(s, t)`). Storing, per broker
//! `b`, the dominated distances `d(b, ·)` capped at `max_l` loses
//! nothing for queries with `l ≤ max_l`: a witness path of length
//! `d ≤ max_l` splits as `d(s, b) ≤ 1` plus `d(b, t) ≤ d`, both within
//! the cap. Queries with `l > max_l` are clamped to `max_l` — the index
//! is *hop-bounded* by construction.
//!
//! ## Shards, faults and invalidation
//!
//! The index keys one distance column ("shard") per roster broker,
//! columns ordered by ascending broker id. Shards are built by 64-lane
//! [`netgraph::msbfs`] batches over the masked dominated view (failed
//! vertices and cut edges vanish; defected brokers stop dominating but
//! keep their column, blanked, so the layout never changes), fanned out
//! on [`netgraph::par`] with batch-order merge — bit-identical at every
//! thread count.
//!
//! On an epoch flip ([`ReachIndex::apply_state`]) or topology delta
//! ([`ReachIndex::apply_delta`]) only the *affected* shards rebuild.
//! The dirty test is conservative and provably sound: collect the
//! vertices touched by changed elements (failed/recovered/tombstoned
//! vertices and their neighbors, endpoints of changed edges), and
//! rebuild shard `b` iff some dirty vertex was inside `b`'s old
//! `max_l`-ball. Soundness: walk any appearing path from `b` to its
//! first changed element — the prefix is valid in the *old* view, so its
//! endpoint (a dirty vertex) had a finite old distance; walk any
//! breaking path to its first broken element for the disappearing case.
//! Either way the shard is flagged. The counter
//! `index.shards_invalidated` tracks churn.

use netgraph::{
    with_msbfs, AuditReport, DominatedView, FaultState, FaultView, Graph, GraphDelta, GraphView,
    NodeId, NodeSet, Permuted, Validate,
};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Sentinel for "not reachable within the hop cap" in a distance shard.
pub const UNREACH: u8 = u8::MAX;

/// Largest supported hop cap (distances are stored as `u8` with
/// [`UNREACH`] reserved).
pub const MAX_HOP_CAP: usize = 254;

/// One answered stitch query: the broker to route through and the hop
/// split on either side. `hops_s + hops_t` is the exact dominated hop
/// distance from `s` to `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StitchAnswer {
    /// The broker minimizing the total hop count (smallest id on ties).
    pub broker: NodeId,
    /// Dominated hops from the source to `broker`.
    pub hops_s: u32,
    /// Dominated hops from `broker` to the destination.
    pub hops_t: u32,
}

impl StitchAnswer {
    /// Total hops of the stitched route.
    pub fn hops(&self) -> u32 {
        self.hops_s + self.hops_t
    }
}

/// What one invalidation pass ([`ReachIndex::apply_state`] /
/// [`ReachIndex::apply_delta`]) did to the shard set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvalidationReport {
    /// Epoch the index now reflects.
    pub epoch: u32,
    /// Vertices flagged dirty by the changed elements.
    pub dirty: usize,
    /// Shards recomputed from scratch (includes reactivated ones).
    pub rebuilt: usize,
    /// Live shards whose `max_l`-ball provably missed every dirty
    /// vertex and were kept verbatim.
    pub kept: usize,
    /// Columns blanked because their broker left service.
    pub deactivated: usize,
    /// Columns revived because their broker returned to service.
    pub reactivated: usize,
}

/// Decoding errors for the `BRI1` binary index format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexCodecError {
    /// Input shorter than the declared contents.
    Truncated,
    /// Bad magic bytes (not a BRI1 blob).
    BadMagic,
    /// The FNV-1a trailer does not match the payload.
    ChecksumMismatch,
    /// A structural invariant failed while decoding.
    Corrupt(&'static str),
}

impl std::fmt::Display for IndexCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexCodecError::Truncated => write!(f, "binary index blob truncated"),
            IndexCodecError::BadMagic => write!(f, "missing BRI1 magic"),
            IndexCodecError::ChecksumMismatch => write!(f, "index checksum mismatch"),
            IndexCodecError::Corrupt(what) => write!(f, "corrupt index: {what}"),
        }
    }
}

impl std::error::Error for IndexCodecError {}

const MAGIC: &[u8; 4] = b"BRI1";

/// The masked dominated view the shards are computed over — equivalent
/// to `FaultView(DominatedView(g, alive), state)` but constructible
/// from the raw element sets the index persists (a [`FaultState`]
/// cannot be rebuilt from outside [`netgraph::fault`]).
#[derive(Debug, Clone, Copy)]
struct MaskView<'a> {
    g: &'a Graph,
    alive: &'a NodeSet,
    down: &'a NodeSet,
    cut: &'a BTreeSet<(u32, u32)>,
}

impl GraphView for MaskView<'_> {
    fn node_count(&self) -> usize {
        self.g.node_count()
    }

    #[inline]
    fn for_each_neighbor(&self, u: NodeId, mut visit: impl FnMut(NodeId)) {
        if self.down.contains(u) {
            return;
        }
        let u_alive_broker = self.alive.contains(u);
        let check_cut = !self.cut.is_empty();
        for &v in self.g.neighbors(u) {
            if !u_alive_broker && !self.alive.contains(v) {
                continue; // not a dominated edge under the live brokers
            }
            if self.down.contains(v) {
                continue;
            }
            if check_cut && self.cut.contains(&netgraph::undirected_key(u, v)) {
                continue;
            }
            visit(v);
        }
    }

    #[inline]
    fn contains_node(&self, v: NodeId) -> bool {
        v.index() < self.g.node_count() && !self.down.contains(v)
    }

    fn is_symmetric(&self) -> bool {
        true // domination, vertex masks and undirected cuts are all symmetric
    }
}

/// Precomputed hop-bounded reachability index over the dominated
/// subgraph: one `u8` distance shard per roster broker, vertex-major.
///
/// Build with [`ReachIndex::build`] (or
/// [`ReachIndex::build_under`] / [`ReachIndex::build_permuted`]), ask
/// with [`ReachIndex::query`], persist with [`ReachIndex::to_bytes`],
/// and keep fresh with [`ReachIndex::apply_state`] /
/// [`ReachIndex::apply_delta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachIndex {
    n: usize,
    max_l: u8,
    epoch: u32,
    shards_invalidated: u64,
    /// Full broker roster, ascending by id; column `j` belongs to
    /// `brokers[j]` forever (fault churn blanks, never relayouts).
    brokers: Vec<NodeId>,
    roster: NodeSet,
    live: Vec<bool>,
    /// `dist[v * k + j]` = dominated hops from `brokers[j]` to `v`,
    /// capped at `max_l`, [`UNREACH`] beyond.
    dist: Vec<u8>,
    /// Failed vertices at the indexed epoch.
    down: NodeSet,
    /// Cut edges at the indexed epoch (normalized keys).
    cut: BTreeSet<(u32, u32)>,
    /// Defected broker roles at the indexed epoch.
    defected: NodeSet,
}

impl ReachIndex {
    /// Build the index for a clear (fault-free) topology.
    ///
    /// # Panics
    ///
    /// If `max_l` exceeds [`MAX_HOP_CAP`] or `brokers` is empty of
    /// capacity (capacity must equal `g.node_count()`).
    pub fn build(g: &Graph, brokers: &NodeSet, max_l: usize, threads: usize) -> Self {
        Self::build_under(
            g,
            brokers,
            max_l,
            &FaultState::all_clear(g.node_count()),
            threads,
        )
    }

    /// Build the index as of one fault epoch: failed vertices and cut
    /// edges are masked, defected (or dead-vertex) brokers get blank
    /// columns. Mirrors the chaos layer's evaluation view exactly.
    pub fn build_under(
        g: &Graph,
        brokers: &NodeSet,
        max_l: usize,
        state: &FaultState,
        threads: usize,
    ) -> Self {
        assert!(max_l <= MAX_HOP_CAP, "max_l {max_l} exceeds {MAX_HOP_CAP}");
        let n = g.node_count();
        let roster_ids: Vec<NodeId> = brokers.iter().collect();
        let k = roster_ids.len();
        let down = state.failed_nodes().clone();
        let cut = state.failed_edges().clone();
        let defected = state.failed_brokers().clone();
        let mut alive = brokers.clone();
        alive.difference_with(&defected);
        alive.difference_with(&down);
        let live: Vec<bool> = roster_ids.iter().map(|&b| alive.contains(b)).collect();

        let mut idx = ReachIndex {
            n,
            max_l: max_l as u8,
            epoch: state.epoch(),
            shards_invalidated: 0,
            brokers: roster_ids,
            roster: brokers.clone(),
            live,
            dist: vec![UNREACH; n * k],
            down,
            cut,
            defected,
        };
        let js: Vec<usize> = (0..k).filter(|&j| idx.live[j]).collect();
        idx.rebuild_columns(g, &js, threads);
        let () = netgraph::counter!("index.builds");
        idx
    }

    /// Build over a degree-permuted CSR layout, writing results back
    /// through the permutation: the returned index lives in the
    /// *original* id space and serializes byte-identically to
    /// [`ReachIndex::build`] on the unpermuted graph (BFS levels are
    /// unique values, so traversal order cannot leak into them).
    pub fn build_permuted(
        perm: &Permuted,
        brokers: &NodeSet,
        max_l: usize,
        threads: usize,
    ) -> Self {
        assert!(max_l <= MAX_HOP_CAP, "max_l {max_l} exceeds {MAX_HOP_CAP}");
        let g = perm.graph();
        let n = g.node_count();
        let roster_ids: Vec<NodeId> = brokers.iter().collect();
        let k = roster_ids.len();
        let alive_new = perm.map_set(brokers);
        let sources_new: Vec<NodeId> = roster_ids.iter().map(|&b| perm.to_new(b)).collect();

        let batches: Vec<Vec<NodeId>> = sources_new.chunks(64).map(<[NodeId]>::to_vec).collect();
        let blocks = run_batches(
            g.clone(),
            alive_new,
            NodeSet::new(n),
            BTreeSet::new(),
            batches,
            max_l as u8,
            threads,
        );
        let mut dist = vec![UNREACH; n * k];
        let mut j = 0usize;
        for block in &blocks {
            let lanes = block.len() / n;
            for lane in 0..lanes {
                let col = &block[lane * n..(lane + 1) * n];
                for (v_new, &d) in col.iter().enumerate() {
                    if d != UNREACH {
                        dist[perm.to_old(NodeId(v_new as u32)).index() * k + j] = d;
                    }
                }
                j += 1;
            }
        }
        let () = netgraph::counter!("index.builds");
        ReachIndex {
            n,
            max_l: max_l as u8,
            epoch: 0,
            shards_invalidated: 0,
            brokers: roster_ids,
            roster: brokers.clone(),
            live: vec![true; k],
            dist,
            down: NodeSet::new(n),
            cut: BTreeSet::new(),
            defected: NodeSet::new(n),
        }
    }

    /// Vertices the index covers.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Roster size (one shard per broker, live or not).
    pub fn broker_count(&self) -> usize {
        self.brokers.len()
    }

    /// The hop cap every shard is truncated at.
    pub fn max_l(&self) -> usize {
        self.max_l as usize
    }

    /// Fault epoch the index currently reflects.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Brokers currently in service (live shards).
    pub fn live_brokers(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Cumulative shards invalidated (rebuilt or blanked) by
    /// [`ReachIndex::apply_state`] / [`ReachIndex::apply_delta`].
    pub fn shards_invalidated(&self) -> u64 {
        self.shards_invalidated
    }

    /// The full broker roster, ascending by id.
    pub fn roster(&self) -> &[NodeId] {
        &self.brokers
    }

    /// Answer the l-hop stitch question: the cheapest live broker `b`
    /// with `d(s, b) + d(b, t) ≤ min(l, max_l)`, ties broken towards the
    /// smallest broker id. `None` when no such broker exists or an
    /// endpoint is failed; `s == t` answers the zero-hop self path
    /// (matching `stitch_path`'s `[s]`).
    pub fn query(&self, s: NodeId, t: NodeId, l: usize) -> Option<StitchAnswer> {
        if s.index() >= self.n || t.index() >= self.n {
            return None;
        }
        if self.down.contains(s) || self.down.contains(t) {
            return None;
        }
        if s == t {
            return Some(StitchAnswer {
                broker: s,
                hops_s: 0,
                hops_t: 0,
            });
        }
        let cap = u32::from(self.max_l).min(l as u32);
        let k = self.brokers.len();
        let rs = &self.dist[s.index() * k..s.index() * k + k];
        let rt = &self.dist[t.index() * k..t.index() * k + k];
        let mut best: Option<(u32, usize)> = None;
        for j in 0..k {
            let (ds, dt) = (rs[j], rt[j]);
            if ds == UNREACH || dt == UNREACH {
                continue; // dead columns are all-UNREACH, so this also skips them
            }
            let total = u32::from(ds) + u32::from(dt);
            if total <= cap && best.is_none_or(|(b, _)| total < b) {
                best = Some((total, j));
            }
        }
        best.map(|(_, j)| StitchAnswer {
            broker: self.brokers[j],
            hops_s: u32::from(rs[j]),
            hops_t: u32::from(rt[j]),
        })
    }

    /// Re-point the index at a new fault epoch, rebuilding exactly the
    /// shards the state diff can affect (see the module docs for the
    /// soundness argument). `g` must be the same topology the index was
    /// built from.
    pub fn apply_state(
        &mut self,
        g: &Graph,
        state: &FaultState,
        threads: usize,
    ) -> InvalidationReport {
        assert_eq!(g.node_count(), self.n, "graph/index size mismatch");
        let k = self.brokers.len();
        let new_down = state.failed_nodes();
        let new_cut = state.failed_edges();
        let new_defected = state.failed_brokers();

        // Dirty = changed vertices plus their neighborhoods, endpoints
        // of changed edges, and changed broker roles' neighborhoods.
        let mut dirty = NodeSet::new(self.n);
        let touch = |v: NodeId, dirty: &mut NodeSet| {
            if v.index() < self.n {
                dirty.insert(v);
                for &u in g.neighbors(v) {
                    dirty.insert(u);
                }
            }
        };
        for v in sym_diff(&self.down, new_down) {
            touch(v, &mut dirty);
        }
        for v in sym_diff(&self.defected, new_defected) {
            touch(v, &mut dirty);
        }
        for &(a, b) in self.cut.symmetric_difference(new_cut) {
            if (a as usize) < self.n {
                dirty.insert(NodeId(a));
            }
            if (b as usize) < self.n {
                dirty.insert(NodeId(b));
            }
        }

        let mut alive = self.roster.clone();
        alive.difference_with(new_defected);
        alive.difference_with(new_down);
        let new_live: Vec<bool> = self.brokers.iter().map(|&b| alive.contains(b)).collect();

        let affected = self.affected_columns(&dirty);
        let mut rebuild = Vec::new();
        let mut report = InvalidationReport {
            epoch: state.epoch(),
            dirty: dirty.len(),
            rebuilt: 0,
            kept: 0,
            deactivated: 0,
            reactivated: 0,
        };
        for j in 0..k {
            match (self.live[j], new_live[j]) {
                (true, false) => {
                    report.deactivated += 1;
                    self.blank_column(j);
                }
                (false, true) => {
                    report.reactivated += 1;
                    rebuild.push(j);
                }
                (true, true) if affected[j] => rebuild.push(j),
                (true, true) => report.kept += 1,
                (false, false) => {}
            }
        }
        report.rebuilt = rebuild.len();

        self.down = new_down.clone();
        self.cut = new_cut.clone();
        self.defected = new_defected.clone();
        self.live = new_live;
        self.epoch = state.epoch();
        self.rebuild_columns(g, &rebuild, threads);

        self.shards_invalidated += (report.rebuilt + report.deactivated) as u64;
        let () = netgraph::counter!(
            "index.shards_invalidated",
            (report.rebuilt + report.deactivated) as u64
        );
        report
    }

    /// Absorb a topology delta (`new_g` must be the delta applied to the
    /// graph this index reflects), rebuilding exactly the affected
    /// shards. New-born vertices get fresh rows; tombstoned vertices
    /// keep their ids and naturally go unreachable.
    pub fn apply_delta(
        &mut self,
        new_g: &Graph,
        delta: &GraphDelta,
        threads: usize,
    ) -> InvalidationReport {
        assert_eq!(delta.base_nodes(), self.n, "delta base/index size mismatch");
        assert_eq!(
            new_g.node_count(),
            delta.node_count_after(),
            "graph is not the delta's application"
        );
        let n_old = self.n;
        let k = self.brokers.len();

        // Dirty vertices in the *old* id space: the ball test consults
        // old rows only. Newborn vertices cannot be in any old ball; a
        // path reaching one crosses an added edge whose old endpoint is
        // dirty.
        let mut dirty = NodeSet::new(n_old);
        let mark = |id: u32, dirty: &mut NodeSet| {
            if (id as usize) < n_old {
                dirty.insert(NodeId(id));
            }
        };
        for &(a, b) in delta.added_edges().iter().chain(delta.removed_edges()) {
            mark(a, &mut dirty);
            mark(b, &mut dirty);
        }
        for &v in delta.removed_nodes() {
            mark(v.0, &mut dirty);
        }

        let n_new = new_g.node_count();
        if n_new != n_old {
            let mut grown = vec![UNREACH; n_new * k];
            grown[..n_old * k].copy_from_slice(&self.dist);
            self.dist = grown;
            self.roster = regrow(&self.roster, n_new);
            self.down = regrow(&self.down, n_new);
            self.defected = regrow(&self.defected, n_new);
            self.n = n_new;
        }

        let affected = self.affected_columns(&dirty);
        let mut rebuild = Vec::new();
        let mut kept = 0usize;
        for (j, &hit) in affected.iter().enumerate().take(k) {
            if !self.live[j] {
                continue;
            }
            if hit {
                rebuild.push(j);
            } else {
                kept += 1;
            }
        }
        let report = InvalidationReport {
            epoch: self.epoch,
            dirty: dirty.len(),
            rebuilt: rebuild.len(),
            kept,
            deactivated: 0,
            reactivated: 0,
        };
        self.rebuild_columns(new_g, &rebuild, threads);
        self.shards_invalidated += report.rebuilt as u64;
        let () = netgraph::counter!("index.shards_invalidated", report.rebuilt as u64);
        report
    }

    /// Columns (by roster position) with a finite old distance to some
    /// dirty vertex — the sound over-approximation of "answers changed".
    fn affected_columns(&self, dirty: &NodeSet) -> Vec<bool> {
        let k = self.brokers.len();
        let mut affected = vec![false; k];
        for v in dirty.iter() {
            let row = &self.dist[v.index() * k..v.index() * k + k];
            for (j, &d) in row.iter().enumerate() {
                if d != UNREACH {
                    affected[j] = true;
                }
            }
        }
        affected
    }

    fn blank_column(&mut self, j: usize) {
        let k = self.brokers.len();
        for v in 0..self.n {
            self.dist[v * k + j] = UNREACH;
        }
    }

    /// Recompute the given columns (ascending roster positions) from
    /// scratch over the current masked view of `g`.
    fn rebuild_columns(&mut self, g: &Graph, js: &[usize], threads: usize) {
        if js.is_empty() {
            return;
        }
        let k = self.brokers.len();
        let n = self.n;
        let mut alive = self.roster.clone();
        alive.difference_with(&self.defected);
        alive.difference_with(&self.down);
        let batches: Vec<Vec<NodeId>> = js
            .chunks(64)
            .map(|chunk| chunk.iter().map(|&j| self.brokers[j]).collect())
            .collect();
        let blocks = run_batches(
            g.clone(),
            alive,
            self.down.clone(),
            self.cut.clone(),
            batches,
            self.max_l,
            threads,
        );
        for j in js {
            self.blank_column(*j);
        }
        let mut pos = 0usize;
        for block in &blocks {
            let lanes = block.len() / n;
            for lane in 0..lanes {
                let j = js[pos];
                pos += 1;
                let col = &block[lane * n..(lane + 1) * n];
                for (v, &d) in col.iter().enumerate() {
                    if d != UNREACH {
                        self.dist[v * k + j] = d;
                    }
                }
            }
        }
    }

    /// Serialize into the `BRI1` binary format (little-endian, FNV-1a
    /// trailer). The bytes are a pure function of the index contents —
    /// bit-identical across thread counts and CSR layouts.
    pub fn to_bytes(&self) -> Vec<u8> {
        let k = self.brokers.len();
        let mut buf = Vec::with_capacity(32 + 5 * k + self.dist.len());
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&(self.n as u32).to_le_bytes());
        buf.extend_from_slice(&(k as u32).to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.push(self.max_l);
        buf.extend_from_slice(&self.shards_invalidated.to_le_bytes());
        for &b in &self.brokers {
            buf.extend_from_slice(&b.0.to_le_bytes());
        }
        for &l in &self.live {
            buf.push(u8::from(l));
        }
        push_ids(&mut buf, &self.down);
        buf.extend_from_slice(&(self.cut.len() as u32).to_le_bytes());
        for &(a, b) in &self.cut {
            buf.extend_from_slice(&a.to_le_bytes());
            buf.extend_from_slice(&b.to_le_bytes());
        }
        push_ids(&mut buf, &self.defected);
        buf.extend_from_slice(&self.dist);
        let digest = fnv1a(&buf);
        buf.extend_from_slice(&digest.to_le_bytes());
        buf
    }

    /// Deserialize a `BRI1` blob.
    ///
    /// # Errors
    ///
    /// Returns an [`IndexCodecError`] on truncation, bad magic, checksum
    /// mismatch or violated structural invariants.
    pub fn from_bytes(data: &[u8]) -> Result<Self, IndexCodecError> {
        if data.len() < 8 {
            return Err(IndexCodecError::Truncated);
        }
        let (payload, trailer) = data.split_at(data.len() - 8);
        let mut digest = [0u8; 8];
        digest.copy_from_slice(trailer);
        if fnv1a(payload) != u64::from_le_bytes(digest) {
            return Err(IndexCodecError::ChecksumMismatch);
        }
        if payload.len() < 4 {
            return Err(IndexCodecError::Truncated);
        }
        if &payload[..4] != MAGIC {
            return Err(IndexCodecError::BadMagic);
        }
        let mut cur = Cur {
            data: &payload[4..],
        };
        let n = cur.u32()? as usize;
        let k = cur.u32()? as usize;
        let epoch = cur.u32()?;
        let max_l = cur.u8()?;
        if usize::from(max_l) > MAX_HOP_CAP {
            return Err(IndexCodecError::Corrupt("hop cap out of range"));
        }
        let shards_invalidated = cur.u64()?;
        let mut brokers = Vec::with_capacity(k);
        for _ in 0..k {
            let b = cur.u32()?;
            if b as usize >= n {
                return Err(IndexCodecError::Corrupt("broker id out of range"));
            }
            if brokers.last().is_some_and(|&NodeId(p)| p >= b) {
                return Err(IndexCodecError::Corrupt("broker roster not ascending"));
            }
            brokers.push(NodeId(b));
        }
        let mut live = Vec::with_capacity(k);
        for _ in 0..k {
            live.push(cur.u8()? != 0);
        }
        let down = cur.ids(n, "failed vertex id out of range")?;
        let cut_len = cur.u32()? as usize;
        let mut cut = BTreeSet::new();
        for _ in 0..cut_len {
            let a = cur.u32()?;
            let b = cur.u32()?;
            if a >= b || b as usize >= n {
                return Err(IndexCodecError::Corrupt("cut edge key not normalized"));
            }
            cut.insert((a, b));
        }
        let defected = cur.ids(n, "defected broker id out of range")?;
        let dist = cur.bytes(n * k)?.to_vec();
        if !cur.data.is_empty() {
            return Err(IndexCodecError::Corrupt("trailing bytes after shards"));
        }
        let roster = NodeSet::from_iter_with_capacity(n, brokers.iter().copied());
        Ok(ReachIndex {
            n,
            max_l,
            epoch,
            shards_invalidated,
            brokers,
            roster,
            live,
            dist,
            down,
            cut,
            defected,
        })
    }

    /// [`ReachIndex::to_bytes`] to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// [`ReachIndex::from_bytes`] from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; decode errors surface as
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// FNV-1a digest of the serialized index — a cheap identity for
    /// cross-configuration equality assertions.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.to_bytes())
    }
}

impl Validate for ReachIndex {
    /// Structural invariants: shard dimensions, roster ordering, live
    /// flags consistent with the fault sets, dead columns blank, live
    /// self-distances zero, every entry within the hop cap, and failed
    /// vertices' rows blank.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("brokerset::ReachIndex");
        let k = self.brokers.len();
        rep.check("index.dims", self.dist.len() == self.n * k, || {
            format!("{} shard bytes for n={} k={k}", self.dist.len(), self.n)
        });
        let sorted = self.brokers.windows(2).all(|w| w[0].0 < w[1].0)
            && self.brokers.iter().all(|b| b.index() < self.n);
        rep.check("index.roster-sorted", sorted, || {
            "roster not strictly ascending in range".to_string()
        });
        let mut flag_bad = 0usize;
        let mut dead_dirty = 0usize;
        let mut self_bad = 0usize;
        let mut over_cap = 0usize;
        for (j, &b) in self.brokers.iter().enumerate() {
            let should_live =
                !self.defected.contains(b) && !self.down.contains(b) && self.roster.contains(b);
            if self.live[j] != should_live {
                flag_bad += 1;
            }
            if self.live[j] {
                if self.dist.get(b.index() * k + j) != Some(&0) {
                    self_bad += 1;
                }
            } else {
                for v in 0..self.n {
                    if self.dist[v * k + j] != UNREACH {
                        dead_dirty += 1;
                        break;
                    }
                }
            }
        }
        for &d in &self.dist {
            if d != UNREACH && d > self.max_l {
                over_cap += 1;
            }
        }
        let mut down_dirty = 0usize;
        for v in self.down.iter() {
            if self.dist[v.index() * k..v.index() * k + k]
                .iter()
                .any(|&d| d != UNREACH)
            {
                down_dirty += 1;
            }
        }
        rep.check("index.live-consistent", flag_bad == 0, || {
            format!("{flag_bad} live flags disagree with the fault sets")
        });
        rep.check("index.dead-columns-blank", dead_dirty == 0, || {
            format!("{dead_dirty} dead columns hold stale distances")
        });
        rep.check("index.self-distance-zero", self_bad == 0, || {
            format!("{self_bad} live brokers lack a zero self-distance")
        });
        rep.check("index.hop-cap", over_cap == 0, || {
            format!("{over_cap} entries exceed the {} hop cap", self.max_l)
        });
        rep.check("index.down-rows-blank", down_dirty == 0, || {
            format!("{down_dirty} failed vertices hold stale rows")
        });
        rep
    }
}

/// A label-soundness certificate: re-derives sampled shards by an
/// independent queue BFS over the masked dominated edge set (sharing no
/// code with the msbfs build path) and compares every entry.
#[derive(Debug)]
pub struct IndexCertificate<'a> {
    g: &'a Graph,
    idx: &'a ReachIndex,
    columns: usize,
    seed: u64,
}

impl<'a> IndexCertificate<'a> {
    /// Certificate re-checking up to `columns` live shards, sampled
    /// deterministically from `seed`.
    pub fn new(g: &'a Graph, idx: &'a ReachIndex, columns: usize, seed: u64) -> Self {
        IndexCertificate {
            g,
            idx,
            columns,
            seed,
        }
    }

    /// Independent bounded BFS from `src` over the masked dominated
    /// edge set.
    fn reference_column(&self, src: NodeId, alive: &NodeSet) -> Vec<u8> {
        let idx = self.idx;
        let mut col = vec![UNREACH; idx.n];
        if idx.down.contains(src) {
            return col;
        }
        col[src.index()] = 0;
        let mut queue = std::collections::VecDeque::from([src]);
        while let Some(u) = queue.pop_front() {
            let d = col[u.index()];
            if d >= idx.max_l {
                continue;
            }
            let u_broker = alive.contains(u);
            for &v in self.g.neighbors(u) {
                if !u_broker && !alive.contains(v) {
                    continue;
                }
                if idx.down.contains(v) || col[v.index()] != UNREACH {
                    continue;
                }
                if !idx.cut.is_empty() && idx.cut.contains(&netgraph::undirected_key(u, v)) {
                    continue;
                }
                col[v.index()] = d + 1;
                queue.push_back(v);
            }
        }
        col
    }
}

impl Validate for IndexCertificate<'_> {
    /// Sampled shard-exactness audit plus full shard-coverage audit.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("brokerset::IndexCertificate");
        rep.absorb(self.idx.audit());
        rep.check(
            "certificate.graph-size",
            self.g.node_count() == self.idx.n,
            || {
                format!(
                    "index covers {} vertices, graph has {}",
                    self.idx.n,
                    self.g.node_count()
                )
            },
        );
        if self.g.node_count() != self.idx.n {
            return rep;
        }
        let mut alive = self.idx.roster.clone();
        alive.difference_with(&self.idx.defected);
        alive.difference_with(&self.idx.down);
        let live_js: Vec<usize> = (0..self.idx.brokers.len())
            .filter(|&j| self.idx.live[j])
            .collect();
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut picked = live_js;
        picked.shuffle(&mut rng);
        picked.truncate(self.columns);
        picked.sort_unstable();
        let k = self.idx.brokers.len();
        let mut wrong = 0usize;
        let mut exemplar = String::new();
        for &j in &picked {
            let b = self.idx.brokers[j];
            let reference = self.reference_column(b, &alive);
            for (v, &want) in reference.iter().enumerate() {
                if self.idx.dist[v * k + j] != want {
                    wrong += 1;
                    if exemplar.is_empty() {
                        exemplar = format!(
                            "shard {b} at vertex {v}: stored {} want {want}",
                            self.idx.dist[v * k + j]
                        );
                    }
                }
            }
        }
        rep.check("certificate.shards-exact", wrong == 0, || {
            format!(
                "{wrong} label(s) diverge from the reference BFS over {} sampled shards ({exemplar})",
                picked.len()
            )
        });
        rep
    }
}

/// The exact evaluation the index replaces: dominated-view msbfs from
/// `s` and `t` under `state`, minimized over live brokers with the same
/// tie-break as [`ReachIndex::query`]. Used as the serving layer's
/// ground truth; the differential tests additionally carry their own
/// independent oracle.
pub fn exact_query(
    g: &Graph,
    brokers: &NodeSet,
    state: &FaultState,
    s: NodeId,
    t: NodeId,
    l: usize,
) -> Option<StitchAnswer> {
    let n = g.node_count();
    if s.index() >= n || t.index() >= n {
        return None;
    }
    if state.failed_nodes().contains(s) || state.failed_nodes().contains(t) {
        return None;
    }
    if s == t {
        return Some(StitchAnswer {
            broker: s,
            hops_s: 0,
            hops_t: 0,
        });
    }
    let mut alive = brokers.clone();
    alive.difference_with(state.failed_brokers());
    alive.difference_with(state.failed_nodes());
    let view = FaultView::new(DominatedView::new(g, &alive), state);
    let dists = netgraph::msbfs_distances(view, &[s, t]);
    let mut best: Option<(u32, NodeId, u32, u32)> = None;
    for b in alive.iter() {
        let (Some(ds), Some(dt)) = (dists[0][b.index()], dists[1][b.index()]) else {
            continue;
        };
        let total = ds + dt;
        if total as usize <= l && best.is_none_or(|(bt, ..)| total < bt) {
            best = Some((total, b, ds, dt));
        }
    }
    best.map(|(_, broker, hops_s, hops_t)| StitchAnswer {
        broker,
        hops_s,
        hops_t,
    })
}

/// FNV-1a over the canonical encoding of an answer stream — the
/// cross-configuration equality currency of the serving layer.
pub fn answers_checksum<I: IntoIterator<Item = Option<StitchAnswer>>>(answers: I) -> u64 {
    let mut h = FNV_OFFSET;
    for ans in answers {
        let mut word = [0u8; 13];
        if let Some(a) = ans {
            word[0] = 1;
            word[1..5].copy_from_slice(&a.broker.0.to_le_bytes());
            word[5..9].copy_from_slice(&a.hops_s.to_le_bytes());
            word[9..13].copy_from_slice(&a.hops_t.to_le_bytes());
        }
        for &b in &word {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

fn push_ids(buf: &mut Vec<u8>, set: &NodeSet) {
    buf.extend_from_slice(&(set.len() as u32).to_le_bytes());
    for v in set.iter() {
        buf.extend_from_slice(&v.0.to_le_bytes());
    }
}

fn regrow(set: &NodeSet, capacity: usize) -> NodeSet {
    NodeSet::from_iter_with_capacity(capacity, set.iter())
}

/// Elements in exactly one of the two sets.
fn sym_diff(a: &NodeSet, b: &NodeSet) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = a.iter().filter(|&v| !b.contains(v)).collect();
    out.extend(b.iter().filter(|&v| !a.contains(v)));
    out
}

/// Little-endian checked cursor for [`ReachIndex::from_bytes`].
struct Cur<'a> {
    data: &'a [u8],
}

impl<'a> Cur<'a> {
    fn bytes(&mut self, len: usize) -> Result<&'a [u8], IndexCodecError> {
        if self.data.len() < len {
            return Err(IndexCodecError::Truncated);
        }
        let (head, tail) = self.data.split_at(len);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, IndexCodecError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, IndexCodecError> {
        let mut word = [0u8; 4];
        word.copy_from_slice(self.bytes(4)?);
        Ok(u32::from_le_bytes(word))
    }

    fn u64(&mut self) -> Result<u64, IndexCodecError> {
        let mut word = [0u8; 8];
        word.copy_from_slice(self.bytes(8)?);
        Ok(u64::from_le_bytes(word))
    }

    fn ids(&mut self, n: usize, what: &'static str) -> Result<NodeSet, IndexCodecError> {
        let len = self.u32()? as usize;
        let mut set = NodeSet::new(n);
        for _ in 0..len {
            let id = self.u32()?;
            if id as usize >= n {
                return Err(IndexCodecError::Corrupt(what));
            }
            set.insert(NodeId(id));
        }
        Ok(set)
    }
}

/// Fan the 64-lane shard batches out on the persistent worker pool.
/// Results merge in batch order, so the shard bytes are bit-identical
/// at every thread count.
fn run_batches(
    g: Graph,
    alive: NodeSet,
    down: NodeSet,
    cut: BTreeSet<(u32, u32)>,
    batches: Vec<Vec<NodeId>>,
    max_l: u8,
    threads: usize,
) -> Vec<Vec<u8>> {
    let n = g.node_count();
    let idxs: Vec<u32> = (0..batches.len() as u32).collect();
    let batches = Arc::new(batches);
    netgraph::par::map_auto(&idxs, threads, move |&bi| {
        let sources = &batches[bi as usize];
        let mut local = vec![UNREACH; n * sources.len()];
        let view = MaskView {
            g: &g,
            alive: &alive,
            down: &down,
            cut: &cut,
        };
        with_msbfs(|arena| {
            arena.run(view, sources, u32::from(max_l), |wf| {
                let level = wf.level() as u8;
                wf.for_each_new(|v, lanes| {
                    lanes.for_each_lane(|lane| local[lane * n + v.index()] = level);
                });
            });
        });
        local
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::graph::from_edges;
    use netgraph::FaultSchedule;

    fn set(capacity: usize, ids: &[u32]) -> NodeSet {
        NodeSet::from_iter_with_capacity(capacity, ids.iter().map(|&i| NodeId(i)))
    }

    /// Path 0-1-2-3-4 with brokers {1, 3}.
    fn path5() -> (Graph, NodeSet) {
        let g = from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))));
        let b = set(5, &[1, 3]);
        (g, b)
    }

    #[test]
    fn answers_path_queries_exactly() {
        let (g, b) = path5();
        let idx = ReachIndex::build(&g, &b, 6, 1);
        assert_eq!(idx.broker_count(), 2);
        assert_eq!(idx.live_brokers(), 2);
        let a = idx.query(NodeId(0), NodeId(4), 6).unwrap();
        assert_eq!(a.hops(), 4);
        // Tie between routing via 1 (1+3) and via 3 (3+1): smallest id.
        assert_eq!(a.broker, NodeId(1));
        assert_eq!((a.hops_s, a.hops_t), (1, 3));
        assert!(idx.query(NodeId(0), NodeId(4), 3).is_none());
        let self_q = idx.query(NodeId(2), NodeId(2), 0).unwrap();
        assert_eq!((self_q.broker, self_q.hops()), (NodeId(2), 0));
        assert!(idx.query(NodeId(0), NodeId(9), 6).is_none());
        assert!(idx.audit().is_ok());
        assert!(IndexCertificate::new(&g, &idx, 8, 3).audit().is_ok());
    }

    #[test]
    fn hop_cap_clamps_long_queries() {
        let (g, b) = path5();
        let idx = ReachIndex::build(&g, &b, 3, 1);
        // True distance 4 > max_l 3: unanswerable at this cap even when
        // the caller asks for more.
        assert!(idx.query(NodeId(0), NodeId(4), 100).is_none());
        assert_eq!(idx.query(NodeId(0), NodeId(3), 100).unwrap().hops(), 3);
    }

    #[test]
    fn matches_exact_query_on_a_clear_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = netgraph::barabasi_albert(80, 2, &mut rng);
        let sel = crate::greedy::greedy_mcb(&g, 8);
        let idx = ReachIndex::build(&g, sel.brokers(), 6, 2);
        let clear = FaultState::all_clear(g.node_count());
        for s in 0..20u32 {
            for t in 15..35u32 {
                for l in [1usize, 3, 6] {
                    let got = idx.query(NodeId(s), NodeId(t), l);
                    let want = exact_query(&g, sel.brokers(), &clear, NodeId(s), NodeId(t), l);
                    assert_eq!(got, want, "(s={s}, t={t}, l={l})");
                }
            }
        }
    }

    #[test]
    fn serialization_roundtrips_and_rejects_malformed() {
        let (g, b) = path5();
        let idx = ReachIndex::build(&g, &b, 5, 1);
        let bytes = idx.to_bytes();
        let back = ReachIndex::from_bytes(&bytes).unwrap();
        assert_eq!(idx, back);
        assert_eq!(bytes, back.to_bytes());

        assert_eq!(
            ReachIndex::from_bytes(&bytes[..6]),
            Err(IndexCodecError::Truncated)
        );
        let mut flipped = bytes.clone();
        flipped[10] ^= 1;
        assert_eq!(
            ReachIndex::from_bytes(&flipped),
            Err(IndexCodecError::ChecksumMismatch)
        );
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        let fixed = {
            let payload_len = bad_magic.len() - 8;
            let digest = fnv1a(&bad_magic[..payload_len]).to_le_bytes();
            bad_magic[payload_len..].copy_from_slice(&digest);
            bad_magic
        };
        assert_eq!(
            ReachIndex::from_bytes(&fixed),
            Err(IndexCodecError::BadMagic)
        );
        assert!(IndexCodecError::Corrupt("x").to_string().contains("x"));
    }

    #[test]
    fn fault_epoch_invalidation_matches_full_rebuild() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = netgraph::barabasi_albert(60, 2, &mut rng);
        let sel = crate::greedy::greedy_mcb(&g, 6);
        let brokers = sel.brokers();
        let mut sched = FaultSchedule::new(g.node_count());
        let order = sel.order();
        sched.fail_broker(1, order[0]);
        sched.fail_node(2, NodeId(30));
        sched.fail_edge(2, NodeId(0), g.neighbors(NodeId(0))[0]);
        sched.recover_broker(3, order[0]);
        sched.set_horizon(4);

        let mut idx = ReachIndex::build(&g, brokers, 6, 1);
        for epoch in 0..sched.horizon() {
            let state = sched.state_at(epoch);
            let report = idx.apply_state(&g, &state, 1);
            assert_eq!(report.epoch, epoch);
            let full = ReachIndex::build_under(&g, brokers, 6, &state, 1);
            assert_eq!(idx.dist, full.dist, "shards diverge at epoch {epoch}");
            assert_eq!(idx.live, full.live);
            assert!(idx.audit().is_ok());
        }
        assert!(idx.shards_invalidated() > 0);
    }

    #[test]
    fn delta_invalidation_matches_full_rebuild() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = netgraph::barabasi_albert(50, 2, &mut rng);
        let sel = crate::greedy::greedy_mcb(&g, 5);
        let brokers = sel.brokers();
        let mut idx = ReachIndex::build(&g, brokers, 5, 1);

        let mut delta = GraphDelta::new(g.node_count());
        let born = delta.add_node();
        delta.add_edge(born, NodeId(3));
        delta.remove_edge(NodeId(0), g.neighbors(NodeId(0))[0]);
        delta.remove_node(NodeId(40));
        let g2 = g.apply_delta(&delta);

        let report = idx.apply_delta(&g2, &delta, 1);
        assert!(report.rebuilt + report.kept > 0);
        let grown = regrow(brokers, g2.node_count());
        let full = ReachIndex::build(&g2, &grown, 5, 1);
        assert_eq!(idx.dist, full.dist, "post-delta shards diverge");
        assert!(idx.audit().is_ok());
        assert!(IndexCertificate::new(&g2, &idx, 5, 1).audit().is_ok());
    }

    #[test]
    fn certificate_rejects_corrupted_labels() {
        let (g, b) = path5();
        let mut idx = ReachIndex::build(&g, &b, 5, 1);
        let k = idx.broker_count();
        idx.dist[2 * k] = 3; // lie about d(broker 1, vertex 2)
        let cert = IndexCertificate::new(&g, &idx, 8, 0);
        let rep = cert.audit();
        assert!(!rep.is_ok());
        assert!(rep
            .findings
            .iter()
            .any(|f| f.invariant == "certificate.shards-exact"));
    }

    #[test]
    fn checksum_distinguishes_answer_streams() {
        let a = Some(StitchAnswer {
            broker: NodeId(1),
            hops_s: 1,
            hops_t: 2,
        });
        let b = Some(StitchAnswer {
            broker: NodeId(1),
            hops_s: 2,
            hops_t: 1,
        });
        assert_ne!(answers_checksum([a, None]), answers_checksum([b, None]));
        assert_eq!(answers_checksum([a]), answers_checksum([a]));
    }
}
