//! Coverage-certificate checking ([`Validate`] impls).
//!
//! Selection algorithms *claim* coverage: every ordered pair inside one
//! dominated component is supposed to be joined by a B-dominating path.
//! [`CoverageCertificate`] re-verifies such claims from scratch — an
//! independent BFS over the dominated edge set `{(u, v) : u ∈ B ∨ v ∈ B}`
//! per claimed pair, optionally under the paper's l-hop bound — sharing
//! no code with [`crate::connectivity`]'s component-based evaluation, so
//! a bug in either implementation shows up as a disagreement.

use crate::connectivity::dominated_components;
use crate::problem::BrokerSelection;
use netgraph::{Graph, NodeId, NodeSet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

pub use netgraph::{debug_validate, AuditReport, Finding, Validate};

impl Validate for BrokerSelection {
    /// Selection representation sanity: the order list is duplicate-free
    /// and agrees exactly with the membership set.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("brokerset::BrokerSelection");
        let mut seen = NodeSet::new(self.brokers().capacity());
        let mut dupes = 0usize;
        let mut strays = 0usize;
        for &v in self.order() {
            if !seen.insert(v) {
                dupes += 1;
            }
            if !self.brokers().contains(v) {
                strays += 1;
            }
        }
        rep.check("selection.order-unique", dupes == 0, || {
            format!("{dupes} duplicated brokers in order")
        });
        rep.check("selection.order-in-set", strays == 0, || {
            format!("{strays} ordered brokers missing from the set")
        });
        rep.check(
            "selection.set-size",
            self.brokers().len() == self.order().len(),
            || {
                format!(
                    "set has {} brokers, order has {}",
                    self.brokers().len(),
                    self.order().len()
                )
            },
        );
        rep
    }
}

/// A claim that specific pairs are covered by a broker set, checkable
/// independently of the algorithm that made it.
#[derive(Debug)]
pub struct CoverageCertificate<'a> {
    g: &'a Graph,
    brokers: &'a NodeSet,
    pairs: Vec<(NodeId, NodeId)>,
    max_l: Option<usize>,
}

impl<'a> CoverageCertificate<'a> {
    /// Certificate over an explicit pair list. `max_l = None` checks
    /// saturated (unbounded-length) coverage.
    pub fn new(
        g: &'a Graph,
        brokers: &'a NodeSet,
        pairs: Vec<(NodeId, NodeId)>,
        max_l: Option<usize>,
    ) -> Self {
        CoverageCertificate {
            g,
            brokers,
            pairs,
            max_l,
        }
    }

    /// Sample up to `samples` pairs the component evaluation claims
    /// covered (same dominated component, deterministic seed) and build
    /// a certificate for them.
    pub fn sampled(
        g: &'a Graph,
        selection: &'a BrokerSelection,
        samples: usize,
        seed: u64,
    ) -> Self {
        let comps = dominated_components(g, selection.brokers());
        // Group the vertices of every non-singleton dominated component.
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); comps.count()];
        for v in g.nodes() {
            members[comps.label[v.index()] as usize].push(v);
        }
        members.retain(|m| m.len() >= 2);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pairs = Vec::with_capacity(samples);
        if !members.is_empty() {
            let mut guard = samples * 16 + 64;
            while pairs.len() < samples && guard > 0 {
                guard -= 1;
                let Some(comp) = members.choose(&mut rng) else {
                    break;
                };
                let (Some(&u), Some(&v)) = (comp.choose(&mut rng), comp.choose(&mut rng)) else {
                    break;
                };
                if u != v {
                    pairs.push((u, v));
                }
            }
        }
        CoverageCertificate::new(g, selection.brokers(), pairs, None)
    }

    /// Number of claimed pairs under check.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// BFS over dominated edges from `src`, returning whether `dst` is
    /// reached within `max_l` hops (unbounded when `None`).
    fn dominated_reach(&self, src: NodeId, dst: NodeId) -> bool {
        if src == dst {
            return true;
        }
        let n = self.g.node_count();
        let mut dist = vec![u32::MAX; n];
        dist[src.index()] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(src);
        let limit = self.max_l.map_or(u32::MAX, |l| l as u32);
        while let Some(u) = queue.pop_front() {
            let d = dist[u.index()];
            if d >= limit {
                continue;
            }
            let u_broker = self.brokers.contains(u);
            for &v in self.g.neighbors(u) {
                // Dominated edge: at least one endpoint is a broker.
                if !u_broker && !self.brokers.contains(v) {
                    continue;
                }
                if dist[v.index()] != u32::MAX {
                    continue;
                }
                if v == dst {
                    return true;
                }
                dist[v.index()] = d + 1;
                queue.push_back(v);
            }
        }
        false
    }
}

impl Validate for CoverageCertificate<'_> {
    /// Re-verify every claimed pair by an independent dominated-edge BFS.
    fn audit(&self) -> AuditReport {
        let mut rep = AuditReport::new("brokerset::CoverageCertificate");
        let mut unreachable = 0usize;
        let mut exemplars = Vec::new();
        for &(u, v) in &self.pairs {
            if !self.dominated_reach(u, v) {
                unreachable += 1;
                if exemplars.len() < 4 {
                    exemplars.push(format!("({u}, {v})"));
                }
            }
        }
        let what = match self.max_l {
            Some(l) => format!("within {l} hops"),
            None => "at any length".to_string(),
        };
        rep.check("coverage.pairs-reachable", unreachable == 0, || {
            format!(
                "{unreachable} of {} claimed pairs not B-dominating-reachable {what}: {}",
                self.pairs.len(),
                exemplars.join(", ")
            )
        });
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mcb;
    use netgraph::graph::from_edges;

    fn star() -> Graph {
        from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))))
    }

    #[test]
    fn selection_audit_passes() {
        let g = star();
        let sel = greedy_mcb(&g, 2);
        let rep = sel.audit();
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn valid_coverage_certificate_passes() {
        let g = star();
        let sel = greedy_mcb(&g, 1);
        let cert = CoverageCertificate::sampled(&g, &sel, 40, 9);
        assert!(cert.pair_count() > 0);
        let rep = cert.audit();
        assert!(rep.is_ok(), "{rep}");
    }

    #[test]
    fn bogus_claim_rejected() {
        // Path 0-1-2-3 with NO brokers: nothing is dominated, so any
        // claimed pair must fail re-verification.
        let g = from_edges(
            4,
            [(0, 1), (1, 2), (2, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let empty = NodeSet::new(4);
        let cert = CoverageCertificate::new(&g, &empty, vec![(NodeId(0), NodeId(3))], None);
        let rep = cert.audit();
        assert!(!rep.is_ok());
        assert!(
            rep.findings
                .iter()
                .any(|f| f.invariant == "coverage.pairs-reachable"),
            "{rep}"
        );
    }

    #[test]
    fn hop_bound_is_enforced() {
        // Path graph, middle vertices are brokers: 0 to 5 needs 5 hops.
        let g = from_edges(6, (0..5).map(|i| (NodeId(i), NodeId(i + 1))));
        let mut brokers = NodeSet::new(6);
        for i in 1..5 {
            brokers.insert(NodeId(i));
        }
        let pair = vec![(NodeId(0), NodeId(5))];
        let tight = CoverageCertificate::new(&g, &brokers, pair.clone(), Some(5));
        assert!(tight.audit().is_ok());
        let too_tight = CoverageCertificate::new(&g, &brokers, pair, Some(4));
        assert!(!too_tight.audit().is_ok());
    }
}
