//! Swap-based local search on top of a greedy selection.
//!
//! The paper's Remark after Theorem 4 notes the APX-hardness of MCBG
//! "leaves the research potential for developing approximation algorithms
//! with tighter ... ratios". The classic next step beyond greedy for
//! coverage objectives is (1-swap) local search: repeatedly replace one
//! broker with one non-broker whenever the swap increases `f(B)` (or,
//! in the guarantee-aware variant, the saturated connectivity). We
//! implement the coverage flavour as an optional refinement pass; the
//! ablation bench measures what it buys over pure greedy.

use crate::coverage::{coverage, dominated_set};
use crate::problem::BrokerSelection;
use netgraph::{Graph, NodeId, NodeSet};

/// Outcome of a local-search refinement.
#[derive(Debug, Clone)]
pub struct LocalSearchResult {
    /// The refined selection.
    pub selection: BrokerSelection,
    /// Coverage before refinement.
    pub coverage_before: usize,
    /// Coverage after refinement.
    pub coverage_after: usize,
    /// Number of improving swaps applied.
    pub swaps: usize,
}

/// Improve `sel` by 1-swaps until no improving swap exists or
/// `max_swaps` is reached.
///
/// Candidate replacements are restricted to vertices adjacent to the
/// currently uncovered set (no other vertex can increase coverage).
/// Each round still recomputes the dominated set once per broker slot,
/// so a round costs `O(|B| · (|V| + |E|) + |candidates| · deg)` — fine
/// for the refinement budgets used here (tens of swaps), not for |B| in
/// the thousands; this is a polish pass, not a selection algorithm.
pub fn local_search_coverage(
    g: &Graph,
    sel: &BrokerSelection,
    max_swaps: usize,
) -> LocalSearchResult {
    let n = g.node_count();
    let coverage_before = coverage(g, sel.brokers());
    let mut brokers: Vec<NodeId> = sel.order().to_vec();
    let mut swaps = 0usize;

    'outer: while swaps < max_swaps {
        let set = NodeSet::from_iter_with_capacity(n, brokers.iter().copied());
        let covered = dominated_set(g, &set);
        let current = covered.len();
        if current == n {
            break;
        }
        // Candidates: uncovered vertices and their neighbors.
        let mut cand = NodeSet::new(n);
        for v in g.nodes() {
            if covered.contains(v) {
                continue;
            }
            cand.insert(v);
            for &u in g.neighbors(v) {
                cand.insert(u);
            }
        }
        // Try swapping each broker out for each candidate in.
        #[allow(clippy::needless_range_loop)] // i is the swap slot, mutated below
        for i in 0..brokers.len() {
            let out = brokers[i];
            // Coverage without broker i.
            let mut reduced = set.clone();
            reduced.remove(out);
            let base_covered = dominated_set(g, &reduced);
            for w in cand.iter() {
                if set.contains(w) {
                    continue;
                }
                // Gain of w over the reduced set.
                let mut gain = usize::from(!base_covered.contains(w));
                for &u in g.neighbors(w) {
                    if !base_covered.contains(u) {
                        gain += 1;
                    }
                }
                if base_covered.len() + gain > current {
                    brokers[i] = w;
                    swaps += 1;
                    continue 'outer;
                }
            }
        }
        break; // no improving swap found
    }

    let selection = BrokerSelection::new(format!("{}+ls", sel.algorithm()), n, brokers);
    let coverage_after = coverage(g, selection.brokers());
    LocalSearchResult {
        selection,
        coverage_before,
        coverage_after,
        swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::degree_based;
    use crate::greedy::greedy_mcb;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn improves_a_bad_start() {
        // Two stars; a deliberately bad selection picks two leaves.
        let mut edges: Vec<(NodeId, NodeId)> = (1..6).map(|i| (NodeId(0), NodeId(i))).collect();
        edges.extend((7..12).map(|i| (NodeId(6), NodeId(i))));
        let g = netgraph::graph::from_edges(12, edges);
        let bad = BrokerSelection::new("bad", 12, vec![NodeId(1), NodeId(7)]);
        let out = local_search_coverage(&g, &bad, 20);
        assert!(out.coverage_after > out.coverage_before);
        assert_eq!(out.coverage_after, 12, "both hubs should be found");
        assert!(out.swaps >= 2);
        assert_eq!(out.selection.algorithm(), "bad+ls");
    }

    #[test]
    fn greedy_is_near_locally_optimal() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = netgraph::barabasi_albert(200, 3, &mut rng);
        let sel = greedy_mcb(&g, 10);
        let out = local_search_coverage(&g, &sel, 50);
        // Local search may still nudge greedy, but never regress.
        assert!(out.coverage_after >= out.coverage_before);
    }

    #[test]
    fn db_benefits_from_local_search() {
        // Degree-based selections overlap heavily; swaps should help on
        // a two-hub graph where DB picks redundant core nodes.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = netgraph::barabasi_albert(300, 2, &mut rng);
        let db = degree_based(&g, 8);
        let out = local_search_coverage(&g, &db, 60);
        assert!(out.coverage_after >= out.coverage_before);
    }

    #[test]
    fn zero_budget_noop() {
        let g = netgraph::graph::from_edges(3, [(NodeId(0), NodeId(1))]);
        let sel = BrokerSelection::new("x", 3, vec![NodeId(1)]);
        let out = local_search_coverage(&g, &sel, 0);
        assert_eq!(out.swaps, 0);
        assert_eq!(out.selection.order(), sel.order());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Local search never reduces coverage and preserves set size.
        #[test]
        fn monotone_and_size_preserving(seed in 0u64..50, k in 1usize..8) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(40, 70, &mut rng);
            let sel = degree_based(&g, k);
            let out = local_search_coverage(&g, &sel, 30);
            prop_assert!(out.coverage_after >= out.coverage_before);
            prop_assert_eq!(out.selection.len(), sel.len());
        }
    }
}
