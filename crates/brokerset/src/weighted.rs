//! Traffic-weighted coverage (extension).
//!
//! The paper counts E2E *pairs* uniformly; real brokerage revenue follows
//! traffic, and traffic follows AS size. This module generalizes the
//! coverage objective to `f_w(B) = Σ_{v ∈ B ∪ N(B)} w(v)`: `w` can be a
//! customer-cone proxy, announced address space, or measured demand.
//! `f_w` is still monotone submodular, so the lazy greedy keeps its
//! (1 − 1/e) guarantee; with unit weights everything reduces to the
//! paper's objective (property-tested below).

use crate::problem::BrokerSelection;
use netgraph::{Graph, NodeId, NodeSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Weighted coverage state: tracks `B`, the covered set, and the covered
/// weight.
#[derive(Debug, Clone)]
pub struct WeightedCoverage<'w> {
    weights: &'w [f64],
    brokers: NodeSet,
    covered: NodeSet,
    covered_weight: f64,
}

impl<'w> WeightedCoverage<'w> {
    /// Empty state over `g` with per-node `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != g.node_count()` or any weight is
    /// negative/non-finite.
    pub fn new(g: &Graph, weights: &'w [f64]) -> Self {
        assert_eq!(weights.len(), g.node_count(), "one weight per vertex");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        WeightedCoverage {
            weights,
            brokers: NodeSet::new(g.node_count()),
            covered: NodeSet::new(g.node_count()),
            covered_weight: 0.0,
        }
    }

    /// Covered weight `f_w(B)`.
    pub fn covered_weight(&self) -> f64 {
        self.covered_weight
    }

    /// The broker set.
    pub fn brokers(&self) -> &NodeSet {
        &self.brokers
    }

    /// Marginal weighted gain of candidate `v`.
    pub fn gain(&self, g: &Graph, v: NodeId) -> f64 {
        let mut gain = if self.covered.contains(v) {
            0.0
        } else {
            self.weights[v.index()]
        };
        for &u in g.neighbors(v) {
            if !self.covered.contains(u) {
                gain += self.weights[u.index()];
            }
        }
        gain
    }

    /// Add `v` as a broker; returns the realized gain.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already a broker.
    pub fn add(&mut self, g: &Graph, v: NodeId) -> f64 {
        assert!(self.brokers.insert(v), "{v} is already a broker");
        let mut gain = 0.0;
        if self.covered.insert(v) {
            gain += self.weights[v.index()];
        }
        for &u in g.neighbors(v) {
            if self.covered.insert(u) {
                gain += self.weights[u.index()];
            }
        }
        self.covered_weight += gain;
        gain
    }
}

/// Lazy greedy maximization of the weighted coverage with budget `k`.
pub fn greedy_mcb_weighted(g: &Graph, weights: &[f64], k: usize) -> BrokerSelection {
    let n = g.node_count();
    let mut cov = WeightedCoverage::new(g, weights);
    let mut order = Vec::with_capacity(k.min(n));
    // f64 keys are not Ord; quantize relative to the largest initial gain
    // so the resolution adapts to the weight scale (absolute milli-units
    // would collapse normalized weights like traffic shares to key 0 and
    // degrade the greedy into id-order selection).
    let max_gain = g.nodes().map(|v| cov.gain(g, v)).fold(0.0f64, f64::max);
    if max_gain <= 0.0 {
        return BrokerSelection::new("greedy-mcb-weighted", n, Vec::new());
    }
    let scale = (u32::MAX as f64) / max_gain;
    let quantize = move |x: f64| (x * scale) as u64;
    let mut heap: BinaryHeap<(u64, Reverse<NodeId>)> = g
        .nodes()
        .map(|v| (quantize(cov.gain(g, v)), Reverse(v)))
        .collect();
    let total: f64 = weights.iter().sum();
    while order.len() < k && cov.covered_weight() < total {
        let Some((cached, Reverse(v))) = heap.pop() else {
            break;
        };
        if cov.brokers().contains(v) {
            continue;
        }
        let fresh = cov.gain(g, v);
        let fresh_q = quantize(fresh);
        debug_assert!(fresh_q <= cached, "submodularity violated");
        let still_best = heap
            .peek()
            .is_none_or(|&(next, Reverse(u))| fresh_q > next || (fresh_q == next && v < u));
        if still_best {
            if fresh <= 0.0 {
                break;
            }
            cov.add(g, v);
            order.push(v);
        } else {
            heap.push((fresh_q, Reverse(v)));
        }
    }
    BrokerSelection::new("greedy-mcb-weighted", n, order)
}

/// A customer-cone proxy weight: each AS weighs 1 plus the number of
/// vertices strictly below it in the provider hierarchy that reach the
/// core only through it is expensive to compute exactly; as a practical
/// proxy we use `1 + degree(v)` which correlates with cone size on
/// hierarchical topologies.
pub fn degree_proxy_weights(g: &Graph) -> Vec<f64> {
    g.nodes().map(|v| 1.0 + g.degree(v) as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mcb;
    use netgraph::graph::from_edges;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn unit_weights_match_unweighted_greedy() {
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(120, 3, &mut rng);
            let w = vec![1.0; 120];
            let weighted = greedy_mcb_weighted(&g, &w, 10);
            let plain = greedy_mcb(&g, 10);
            assert_eq!(weighted.order(), plain.order(), "seed {seed}");
        }
    }

    #[test]
    fn heavy_vertex_attracts_selection() {
        // Path 0-1-2-3-4: with a huge weight on 4, greedy must cover it
        // first via broker 3 or 4 even though 1/2 cover more vertices.
        let g = from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))));
        let w = [1.0, 1.0, 1.0, 1.0, 100.0];
        let sel = greedy_mcb_weighted(&g, &w, 1);
        let first = sel.order()[0];
        assert!(
            first == NodeId(3) || first == NodeId(4),
            "first pick {first} ignores the heavy vertex"
        );
    }

    #[test]
    fn tiny_normalized_weights_not_degenerate() {
        // Weights summing to 1 over many nodes used to quantize to key 0,
        // collapsing the greedy into ascending-id selection.
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = netgraph::barabasi_albert(200, 3, &mut rng);
        let unit = greedy_mcb_weighted(&g, &vec![1.0; 200], 8);
        let scaled = greedy_mcb_weighted(&g, &vec![1.0 / 200.0; 200], 8);
        assert_eq!(
            unit.order(),
            scaled.order(),
            "selection must be scale-invariant in the weights"
        );
        assert_ne!(
            scaled.order()[0],
            NodeId(0),
            "degenerate id-order selection detected"
        );
    }

    #[test]
    fn gain_matches_realized() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = netgraph::erdos_renyi_gnm(50, 100, &mut rng);
        let w = degree_proxy_weights(&g);
        let mut cov = WeightedCoverage::new(&g, &w);
        for v in [5u32, 17, 33] {
            let predicted = cov.gain(&g, NodeId(v));
            let realized = cov.add(&g, NodeId(v));
            assert!((predicted - realized).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per vertex")]
    fn weight_length_mismatch() {
        let g = from_edges(3, [(NodeId(0), NodeId(1))]);
        WeightedCoverage::new(&g, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let g = from_edges(2, [(NodeId(0), NodeId(1))]);
        WeightedCoverage::new(&g, &[1.0, -2.0]);
    }

    proptest! {
        /// Weighted coverage is monotone: every greedy step increases
        /// the covered weight, and the total never exceeds the weight sum.
        #[test]
        fn monotone_and_bounded(seed in 0u64..60, k in 1usize..10) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(40, 80, &mut rng);
            let w = degree_proxy_weights(&g);
            let sel = greedy_mcb_weighted(&g, &w, k);
            let mut cov = WeightedCoverage::new(&g, &w);
            let mut last = 0.0;
            for &v in sel.order() {
                cov.add(&g, v);
                prop_assert!(cov.covered_weight() > last);
                last = cov.covered_weight();
            }
            prop_assert!(cov.covered_weight() <= w.iter().sum::<f64>() + 1e-9);
        }

        /// At budget 1 the weighted greedy is provably optimal for its
        /// own metric: its single pick covers at least as much weight as
        /// any other single broker — in particular the unweighted
        /// greedy's pick. (For k > 1 both greedies are heuristics and
        /// either can win; see the ablation bench for the empirical gap.)
        #[test]
        fn first_pick_weight_optimal(seed in 0u64..40) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(60, 2, &mut rng);
            let w = degree_proxy_weights(&g);
            let weighted = greedy_mcb_weighted(&g, &w, 1);
            let weight_of = |sel: &BrokerSelection| {
                let covered = crate::coverage::dominated_set(&g, sel.brokers());
                covered.iter().map(|v| w[v.index()]).sum::<f64>()
            };
            let ours = weight_of(&weighted);
            let plain = greedy_mcb(&g, 1);
            // Quantization at 1/1024 granularity can cost at most that
            // much per comparison.
            prop_assert!(ours + 1e-2 >= weight_of(&plain));
            for v in g.nodes() {
                let single = BrokerSelection::new("one", 60, vec![v]);
                prop_assert!(ours + 1e-2 >= weight_of(&single),
                    "vertex {v} beats the weighted pick");
            }
        }
    }
}
