//! Chaos harness: epoch-by-epoch connectivity under a
//! [`FaultSchedule`], with graceful degradation instead of errors.
//!
//! [`chaos_trace_threaded`] generalizes the fixed remove-k-brokers
//! traces in [`crate::resilience`]: the failure process is an arbitrary
//! serializable timeline — broker defections, node outages, link cuts,
//! correlated groups, recoveries — and every epoch is evaluated as a
//! pure function of the schedule state, so the trace is bit-identical at
//! every thread count and across a schedule save/load round trip.
//!
//! **Graceful degradation.** When faults mask part of the measurement
//! itself (a sampled BFS source goes down with its vertex), the
//! evaluator does not error and does not silently pretend: each
//! [`ChaosStep`] carries a [`Degradation`] record naming exactly which
//! brokers were out of service and which sources were unevaluable and
//! why, and a [`DegradationCertificate`] re-derives all of it
//! independently from the schedule through the standard [`Validate`]
//! machinery.
//!
//! Metric conventions at a degraded epoch:
//!
//! - saturated connectivity keeps the all-pairs denominator `n(n-1)` —
//!   a failed vertex reaches nobody, which *is* lost connectivity;
//! - the l-hop value averages over the surviving sources only (failed
//!   sources are skipped, not counted as zero), mirroring
//!   [`crate::connectivity::lhop_curve`]'s estimator over the sources it
//!   actually ran.

use crate::connectivity::{run_sources_over, sample_sources, SourceMode};
use crate::problem::BrokerSelection;
use crate::validate::{AuditReport, Validate};
use netgraph::components::view_components;
use netgraph::{par, DominatedView, FaultSchedule, FaultState, FaultView, Graph, NodeId};
use serde::{Deserialize, Serialize};

/// What one epoch's evaluation could not cover, and why. All fields are
/// re-derivable from the schedule — see [`DegradationCertificate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Degradation {
    /// Selected brokers out of service this epoch (defected via a
    /// broker-role event, or down with their vertex), ascending by id.
    pub failed_brokers: Vec<NodeId>,
    /// BFS sources that could not be evaluated because their vertex is
    /// down this epoch, in sample order.
    pub skipped_sources: Vec<NodeId>,
    /// Vertices masked from the graph this epoch.
    pub masked_nodes: usize,
    /// Undirected edges cut this epoch (beyond those lost to masked
    /// vertices).
    pub masked_edges: usize,
}

impl Degradation {
    /// Whether the epoch was evaluated at full fidelity (nothing failed,
    /// nothing skipped).
    pub fn is_clean(&self) -> bool {
        self.failed_brokers.is_empty()
            && self.skipped_sources.is_empty()
            && self.masked_nodes == 0
            && self.masked_edges == 0
    }
}

/// One epoch of a [`ChaosTrace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosStep {
    /// Epoch index in `0..schedule.horizon()`.
    pub epoch: u32,
    /// Brokers still in service.
    pub alive_brokers: usize,
    /// Saturated E2E connectivity over the degraded dominated edge set
    /// (denominator `n(n-1)`).
    pub saturated: f64,
    /// `F_B(max_l)` over the degraded dominated edge set, when a hop
    /// bound was requested; averaged over surviving sources.
    pub lhop: Option<f64>,
    /// What this epoch could not cover.
    pub degradation: Degradation,
}

/// A degradation/recovery curve: one [`ChaosStep`] per schedule epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosTrace {
    /// Per-epoch measurements, epoch order.
    pub steps: Vec<ChaosStep>,
    /// The hop bound the `lhop` column was evaluated at, if any.
    pub max_l: Option<usize>,
}

impl ChaosTrace {
    /// The saturated-connectivity curve, epoch order.
    pub fn saturated_curve(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.saturated).collect()
    }

    /// Connectivity lost between the first epoch and the worst epoch.
    pub fn max_degradation(&self) -> f64 {
        let first = self.steps.first().map_or(0.0, |s| s.saturated);
        let worst = self
            .steps
            .iter()
            .map(|s| s.saturated)
            .fold(f64::INFINITY, f64::min);
        if worst.is_finite() {
            first - worst
        } else {
            0.0
        }
    }

    /// Connectivity regained between the worst epoch and the last epoch
    /// (how much the recovery events bought back).
    pub fn recovered(&self) -> f64 {
        let last = self.steps.last().map_or(0.0, |s| s.saturated);
        let worst = self
            .steps
            .iter()
            .map(|s| s.saturated)
            .fold(f64::INFINITY, f64::min);
        if worst.is_finite() {
            last - worst
        } else {
            0.0
        }
    }
}

/// [`chaos_trace_threaded`] on one thread.
pub fn chaos_trace(
    g: &Graph,
    sel: &BrokerSelection,
    schedule: &FaultSchedule,
    max_l: Option<usize>,
    mode: SourceMode,
) -> ChaosTrace {
    chaos_trace_threaded(g, sel, schedule, max_l, mode, 1)
}

/// Evaluate `sel` under `schedule`, one [`ChaosStep`] per epoch, with
/// per-epoch evaluations fanned out on `threads` workers (`0` = all
/// hardware threads) via [`netgraph::par`].
///
/// Each epoch is a pure function of [`FaultSchedule::state_at`], so the
/// trace is bit-identical at every thread count. With `max_l = Some(l)`
/// every epoch also gets an l-hop value over the sources `mode` resolves
/// to (minus any masked this epoch).
pub fn chaos_trace_threaded(
    g: &Graph,
    sel: &BrokerSelection,
    schedule: &FaultSchedule,
    max_l: Option<usize>,
    mode: SourceMode,
    threads: usize,
) -> ChaosTrace {
    let sources_all: Vec<NodeId> = if max_l.is_some() {
        sample_sources(g, mode)
    } else {
        Vec::new()
    };
    let epochs: Vec<u32> = (0..schedule.horizon()).collect();
    // Pool jobs are 'static; epochs are few and heavy, so map_auto's
    // adaptive chunking (floor 1) fans them out instead of the old
    // fixed chunk-of-1 map. Each step is a pure function of its epoch,
    // so chunk boundaries cannot change the trace.
    let g_owned = g.clone();
    let sel_owned = sel.clone();
    let schedule_owned = schedule.clone();
    let steps: Vec<ChaosStep> = par::map_auto(&epochs, threads, move |&epoch| {
        let state = schedule_owned.state_at(epoch);
        netgraph::counter!("chaos.epochs", 1);
        netgraph::counter!("chaos.masked_nodes", state.failed_nodes().len() as u64);
        eval_epoch(&g_owned, &sel_owned, &state, max_l, &sources_all)
    });
    ChaosTrace { steps, max_l }
}

/// Evaluate one epoch: pure function of `(g, sel, state)`.
fn eval_epoch(
    g: &Graph,
    sel: &BrokerSelection,
    state: &FaultState,
    max_l: Option<usize>,
    sources_all: &[NodeId],
) -> ChaosStep {
    let n = g.node_count();
    // A broker is out of service if its role defected OR its vertex is
    // down — a dead vertex cannot supervise anything.
    let mut alive = sel.brokers().clone();
    alive.difference_with(state.failed_brokers());
    alive.difference_with(state.failed_nodes());
    let failed_brokers: Vec<NodeId> = sel
        .brokers()
        .iter()
        .filter(|&b| !alive.contains(b))
        .collect();

    let view = FaultView::new(DominatedView::new(g, &alive), state);
    let comps = view_components(&view);
    let connected = comps.connected_ordered_pairs();
    let total = (n as u64).saturating_mul((n as u64).saturating_sub(1));
    let saturated = if total == 0 {
        0.0
    } else {
        connected as f64 / total as f64
    };

    let mut skipped_sources = Vec::new();
    let lhop = max_l.map(|l| {
        if n < 2 || l == 0 {
            return 0.0;
        }
        let sources: Vec<NodeId> = sources_all
            .iter()
            .copied()
            .filter(|&s| {
                let up = !state.failed_nodes().contains(s);
                if !up {
                    skipped_sources.push(s);
                }
                up
            })
            .collect();
        if sources.is_empty() {
            return 0.0;
        }
        let (cum, _finals) = run_sources_over(view, n, l, &sources);
        let denom = sources.len() as f64 * (n as f64 - 1.0);
        cum[l - 1] as f64 / denom
    });

    ChaosStep {
        epoch: state.epoch(),
        alive_brokers: alive.len(),
        saturated,
        lhop,
        degradation: Degradation {
            failed_brokers,
            skipped_sources,
            masked_nodes: state.failed_nodes().len(),
            masked_edges: state.failed_edges().len(),
        },
    }
}

/// Machine-checkable claim that a [`ChaosTrace`]'s partial results are
/// exactly as partial as the schedule forces them to be — no more, no
/// less. The audit re-derives every [`Degradation`] record independently
/// from the schedule and cross-checks the trace against it.
#[derive(Debug, Clone, Copy)]
pub struct DegradationCertificate<'a> {
    g: &'a Graph,
    sel: &'a BrokerSelection,
    schedule: &'a FaultSchedule,
    mode: SourceMode,
    trace: &'a ChaosTrace,
}

impl<'a> DegradationCertificate<'a> {
    /// Certify `trace` as the evaluation of `sel` under `schedule` with
    /// sources drawn per `mode`.
    pub fn new(
        g: &'a Graph,
        sel: &'a BrokerSelection,
        schedule: &'a FaultSchedule,
        mode: SourceMode,
        trace: &'a ChaosTrace,
    ) -> Self {
        DegradationCertificate {
            g,
            sel,
            schedule,
            mode,
            trace,
        }
    }
}

impl Validate for DegradationCertificate<'_> {
    fn audit(&self) -> AuditReport {
        let mut report = AuditReport::new("DegradationCertificate");
        report.absorb(self.schedule.audit());
        report.check(
            "one step per schedule epoch",
            self.trace.steps.len() == self.schedule.horizon() as usize
                && self
                    .trace
                    .steps
                    .iter()
                    .enumerate()
                    .all(|(i, s)| s.epoch == i as u32),
            || {
                format!(
                    "trace has {} steps for horizon {}",
                    self.trace.steps.len(),
                    self.schedule.horizon()
                )
            },
        );
        let sources_all: Vec<NodeId> = if self.trace.max_l.is_some() {
            sample_sources(self.g, self.mode)
        } else {
            Vec::new()
        };
        for step in &self.trace.steps {
            let state = self.schedule.state_at(step.epoch);
            let d = &step.degradation;
            let expect_failed: Vec<NodeId> = self
                .sel
                .brokers()
                .iter()
                .filter(|&b| state.failed_brokers().contains(b) || state.failed_nodes().contains(b))
                .collect();
            report.check(
                "failed brokers match the schedule state",
                d.failed_brokers == expect_failed,
                || {
                    format!(
                        "epoch {}: claims {:?}, schedule forces {:?}",
                        step.epoch, d.failed_brokers, expect_failed
                    )
                },
            );
            report.check(
                "alive + failed partitions the selection",
                step.alive_brokers + d.failed_brokers.len() == self.sel.len(),
                || {
                    format!(
                        "epoch {}: alive {} + failed {} != selected {}",
                        step.epoch,
                        step.alive_brokers,
                        d.failed_brokers.len(),
                        self.sel.len()
                    )
                },
            );
            report.check(
                "masked element counts match the schedule state",
                d.masked_nodes == state.failed_nodes().len()
                    && d.masked_edges == state.failed_edges().len(),
                || {
                    format!(
                        "epoch {}: claims {}/{} masked, schedule forces {}/{}",
                        step.epoch,
                        d.masked_nodes,
                        d.masked_edges,
                        state.failed_nodes().len(),
                        state.failed_edges().len()
                    )
                },
            );
            let expect_skipped: Vec<NodeId> = sources_all
                .iter()
                .copied()
                .filter(|&s| state.failed_nodes().contains(s))
                .collect();
            report.check(
                "skipped sources are exactly the masked sources",
                d.skipped_sources == expect_skipped,
                || {
                    format!(
                        "epoch {}: claims {} skipped, schedule forces {}",
                        step.epoch,
                        d.skipped_sources.len(),
                        expect_skipped.len()
                    )
                },
            );
            report.check(
                "clean epochs carry clean records",
                !state.is_clear() || d.is_clean(),
                || format!("epoch {}: clear state but degraded record", step.epoch),
            );
            report.check(
                "metrics in range",
                (0.0..=1.0).contains(&step.saturated)
                    && step.lhop.is_none_or(|l| (0.0..=1.0).contains(&l))
                    && step.lhop.is_some() == self.trace.max_l.is_some(),
                || {
                    format!(
                        "epoch {}: saturated {} lhop {:?}",
                        step.epoch, step.saturated, step.lhop
                    )
                },
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{lhop_curve, saturated_connectivity};
    use crate::maxsg::max_subgraph_greedy;
    use netgraph::FaultGroup;
    use topology::{InternetConfig, Scale};

    fn setup() -> (Graph, BrokerSelection) {
        let net = InternetConfig::scaled(Scale::Tiny).generate(88);
        let g = net.graph().clone();
        let sel = max_subgraph_greedy(&g, 70);
        (g, sel)
    }

    fn mixed_schedule(g: &Graph, sel: &BrokerSelection) -> FaultSchedule {
        let mut sched = FaultSchedule::new(g.node_count());
        let order = sel.order();
        // Defect three brokers, fail a non-broker vertex, cut an edge,
        // drop a correlated pair, then recover everything.
        for (i, &b) in order.iter().take(3).enumerate() {
            sched.fail_broker(1 + i as u32, b);
        }
        let outsider = g
            .nodes()
            .find(|&v| !sel.brokers().contains(v))
            .unwrap_or(NodeId(0));
        sched.fail_node(2, outsider);
        let (u, v) = g.edges().next().unwrap();
        sched.fail_edge(3, u, v);
        let grp = sched.add_group(FaultGroup::new(
            "pair",
            vec![order[3], order[4]],
            std::iter::empty(),
        ));
        sched.fail_group(4, grp);
        sched.recover_group(6, grp);
        sched.recover_node(6, outsider);
        sched.recover_edge(7, u, v);
        for &b in order.iter().take(3) {
            sched.recover_broker(8, b);
        }
        sched.set_horizon(10);
        sched
    }

    #[test]
    fn clean_epoch_matches_legacy_evaluators() {
        let (g, sel) = setup();
        let mut sched = FaultSchedule::new(g.node_count());
        sched.set_horizon(1);
        let trace = chaos_trace(&g, &sel, &sched, Some(6), SourceMode::Exact);
        let step = &trace.steps[0];
        assert!(step.degradation.is_clean());
        let sat = saturated_connectivity(&g, sel.brokers()).fraction;
        assert_eq!(step.saturated, sat, "bit-identical saturated value");
        let curve = lhop_curve(&g, sel.brokers(), 6, SourceMode::Exact);
        assert_eq!(step.lhop, Some(curve.at(6)), "bit-identical l-hop value");
    }

    #[test]
    fn degradation_and_recovery_show_in_the_curve() {
        let (g, sel) = setup();
        let sched = mixed_schedule(&g, &sel);
        let trace = chaos_trace(&g, &sel, &sched, Some(6), SourceMode::Exact);
        assert_eq!(trace.steps.len(), 10);
        let first = trace.steps[0].saturated;
        let worst = trace
            .steps
            .iter()
            .map(|s| s.saturated)
            .fold(f64::INFINITY, f64::min);
        let last = trace.steps[9].saturated;
        assert!(worst < first, "faults must degrade connectivity");
        assert_eq!(last, first, "full recovery restores the exact value");
        assert!(trace.max_degradation() > 0.0);
        assert!(trace.recovered() > 0.0);
        // The degraded epochs carry non-clean records.
        assert!(!trace.steps[4].degradation.is_clean());
        assert_eq!(trace.steps[4].degradation.failed_brokers.len(), 5);
        // Masked vertices: the outsider plus the two group members.
        assert_eq!(trace.steps[4].degradation.masked_nodes, 3);
    }

    #[test]
    fn certificate_validates_and_detects_tampering() {
        let (g, sel) = setup();
        let sched = mixed_schedule(&g, &sel);
        let mode = SourceMode::Sampled { count: 64, seed: 9 };
        let trace = chaos_trace(&g, &sel, &sched, Some(5), mode);
        let cert = DegradationCertificate::new(&g, &sel, &sched, mode, &trace);
        let report = cert.audit();
        assert!(report.is_ok(), "clean trace must certify:\n{report}");

        // Tamper: claim one fewer failed broker than the schedule forces.
        let mut bad = trace.clone();
        bad.steps[4].degradation.failed_brokers.pop();
        let cert = DegradationCertificate::new(&g, &sel, &sched, mode, &bad);
        assert!(!cert.audit().is_ok(), "dropped broker must be caught");

        // Tamper: pretend a masked source was evaluated.
        let mut bad = trace.clone();
        bad.steps[2].degradation.skipped_sources.clear();
        bad.steps[2].degradation.masked_nodes = 0;
        let cert = DegradationCertificate::new(&g, &sel, &sched, mode, &bad);
        assert!(!cert.audit().is_ok(), "hidden skip must be caught");
    }

    #[test]
    fn node_outage_skips_sampled_sources() {
        let (g, sel) = setup();
        let mode = SourceMode::Exact; // every vertex a source
        let mut sched = FaultSchedule::new(g.node_count());
        sched.fail_node(0, NodeId(5));
        sched.fail_node(0, NodeId(9));
        let trace = chaos_trace(&g, &sel, &sched, Some(4), mode);
        let d = &trace.steps[0].degradation;
        assert_eq!(
            d.skipped_sources,
            vec![NodeId(5), NodeId(9)],
            "masked sources reported in sample order"
        );
        assert_eq!(d.masked_nodes, 2);
        let cert = DegradationCertificate::new(&g, &sel, &sched, mode, &trace);
        assert!(cert.audit().is_ok());
    }

    #[test]
    fn broker_vertex_outage_counts_as_failed_broker() {
        let (g, sel) = setup();
        let top = sel.order()[0];
        let mut sched = FaultSchedule::new(g.node_count());
        sched.fail_node(0, top);
        let trace = chaos_trace(&g, &sel, &sched, None, SourceMode::Exact);
        let step = &trace.steps[0];
        assert_eq!(step.degradation.failed_brokers, vec![top]);
        assert_eq!(step.alive_brokers, sel.len() - 1);
        assert!(step.lhop.is_none());

        // A *dominated-component* equivalent: vertex outage must hurt at
        // least as much as mere defection of the same broker.
        let mut defect = FaultSchedule::new(g.node_count());
        defect.fail_broker(0, top);
        let defect_trace = chaos_trace(&g, &sel, &defect, None, SourceMode::Exact);
        assert!(step.saturated <= defect_trace.steps[0].saturated + 1e-15);
        let mut alive = sel.brokers().clone();
        alive.remove(top);
        assert_eq!(
            defect_trace.steps[0].saturated,
            saturated_connectivity(&g, &alive).fraction,
            "defection == legacy broker removal, bit for bit"
        );
    }

    #[test]
    fn threaded_trace_is_bit_identical() {
        let (g, sel) = setup();
        let sched = mixed_schedule(&g, &sel);
        let mode = SourceMode::Sampled { count: 80, seed: 3 };
        let seq = chaos_trace(&g, &sel, &sched, Some(5), mode);
        for threads in [2usize, 4, 7] {
            let par = chaos_trace_threaded(&g, &sel, &sched, Some(5), mode, threads);
            assert_eq!(seq, par, "threads={threads}");
        }
    }
}
