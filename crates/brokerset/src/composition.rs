//! Broker-set composition analyses behind Table 5 and Fig. 5a.
//!
//! - [`composition_histogram`] — how many brokers of each
//!   [`NodeKind`] the set contains (Fig. 5a's "diversified composition").
//! - [`ranked_brokers`] — the Table 5 view: brokers with their selection
//!   rank, kind, category label and name.
//! - [`broker_only_connectivity`] — the fraction of connected pairs whose
//!   dominating path uses *only brokers* as intermediate vertices (the
//!   paper: "more than 90 percent of E2E connections can be carried out
//!   by the 3,540-alliance solely").

use crate::problem::BrokerSelection;
use netgraph::{NodeId, UnionFind};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use topology::{Internet, NodeKind};

/// Per-kind counts of a broker set, in [`NodeKind::all`] order.
pub fn composition_histogram(net: &Internet, sel: &BrokerSelection) -> [usize; 6] {
    let mut counts = [0usize; 6];
    for &v in sel.order() {
        // Every kind occurs in NodeKind::all(), so the fallback index is
        // unreachable; it just keeps the lookup total.
        let idx = NodeKind::all()
            .iter()
            .position(|&k| k == net.kind(v))
            .unwrap_or(0);
        counts[idx] += 1;
    }
    counts
}

/// One row of the Table 5 style ranking.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedBroker {
    /// 1-based selection rank.
    pub rank: usize,
    /// Vertex id.
    pub node: NodeId,
    /// Node kind.
    pub kind: NodeKind,
    /// Table 5 category label ("IXP", "T/A", "C", "E").
    pub category: String,
    /// Synthetic name.
    pub name: String,
    /// Degree in the combined graph.
    pub degree: usize,
}

/// Brokers with rank/kind/name metadata, in selection order.
pub fn ranked_brokers(net: &Internet, sel: &BrokerSelection) -> Vec<RankedBroker> {
    sel.order()
        .iter()
        .enumerate()
        .map(|(i, &v)| RankedBroker {
            rank: i + 1,
            node: v,
            kind: net.kind(v),
            category: net.kind(v).category_label().to_string(),
            name: net.name(v).to_string(),
            degree: net.graph().degree(v),
        })
        .collect()
}

/// Result of [`broker_only_connectivity`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrokerOnlyReport {
    /// Fraction of *B-dominating-connected* pairs that are also reachable
    /// with all intermediate vertices inside `B`.
    pub fraction_of_connected: f64,
    /// Pairs sampled.
    pub sampled_pairs: usize,
}

/// Estimate the share of connected pairs whose dominating path needs no
/// non-broker intermediary.
///
/// A pair `(u, v)` counts as broker-only reachable when `u` and `v` are
/// adjacent, or there are brokers `b_u ∈ N(u) ∪ {u}` and
/// `b_v ∈ N(v) ∪ {v}` lying in the same component of the broker-induced
/// subgraph. Sampling is uniform over connected pairs (sources drawn
/// uniformly, partners drawn from each source's dominated component).
pub fn broker_only_connectivity(
    net: &Internet,
    sel: &BrokerSelection,
    sample_pairs: usize,
    seed: u64,
) -> BrokerOnlyReport {
    let g = net.graph();
    let n = g.node_count();
    let brokers = sel.brokers();

    // Components of the broker-induced subgraph.
    let mut uf = UnionFind::new(n);
    for b in brokers.iter() {
        for &v in g.neighbors(b) {
            if brokers.contains(v) {
                uf.union(b.index(), v.index());
            }
        }
    }
    // For each vertex, the set of broker components it touches; stored as
    // a sorted smallvec-ish Vec (vertex degree bounded in practice).
    let mut touch: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in g.nodes() {
        let mut comps: Vec<u32> = Vec::new();
        if brokers.contains(v) {
            comps.push(uf.find(v.index()) as u32);
        }
        for &b in g.neighbors(v) {
            if brokers.contains(b) {
                comps.push(uf.find(b.index()) as u32);
            }
        }
        comps.sort_unstable();
        comps.dedup();
        touch[v.index()] = comps;
    }

    // Sample connected pairs from the dominated edge graph.
    let dom = crate::connectivity::dominated_components(g, brokers);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut members_of: std::collections::BTreeMap<u32, Vec<NodeId>> =
        std::collections::BTreeMap::new();
    for v in g.nodes() {
        members_of.entry(dom.label[v.index()]).or_default().push(v);
    }
    let sources: Vec<NodeId> = {
        let mut all: Vec<NodeId> = g
            .nodes()
            .filter(|v| dom.sizes[dom.label[v.index()] as usize] > 1)
            .collect();
        all.shuffle(&mut rng);
        all
    };
    if sources.is_empty() {
        return BrokerOnlyReport {
            fraction_of_connected: 0.0,
            sampled_pairs: 0,
        };
    }

    let mut hits = 0usize;
    let mut total = 0usize;
    let mut si = 0usize;
    while total < sample_pairs {
        let u = sources[si % sources.len()];
        si += 1;
        let comp = &members_of[&dom.label[u.index()]];
        // `u`'s own component always contains at least `u` itself.
        let Some(&v) = comp.choose(&mut rng) else {
            continue;
        };
        if v == u {
            continue;
        }
        total += 1;
        if g.has_edge(u, v) || shares_component(&touch[u.index()], &touch[v.index()]) {
            hits += 1;
        }
    }
    BrokerOnlyReport {
        fraction_of_connected: hits as f64 / total as f64,
        sampled_pairs: total,
    }
}

fn shares_component(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_mcb;
    use crate::maxsg::max_subgraph_greedy;
    use topology::{InternetConfig, Scale};

    fn tiny_net() -> Internet {
        InternetConfig::scaled(Scale::Tiny).generate(17)
    }

    #[test]
    fn histogram_counts_sum_to_selection() {
        let net = tiny_net();
        let sel = max_subgraph_greedy(net.graph(), 30);
        let hist = composition_histogram(&net, &sel);
        assert_eq!(hist.iter().sum::<usize>(), sel.len());
    }

    #[test]
    fn diversified_composition_on_internet() {
        // The selected set should not be all of one kind: hubs include
        // tier-1s, transit providers and IXPs.
        let net = tiny_net();
        let sel = max_subgraph_greedy(net.graph(), 40);
        let hist = composition_histogram(&net, &sel);
        let kinds_present = hist.iter().filter(|&&c| c > 0).count();
        assert!(kinds_present >= 3, "only {kinds_present} kinds selected");
    }

    #[test]
    fn ranked_brokers_match_order() {
        let net = tiny_net();
        let sel = greedy_mcb(net.graph(), 10);
        let ranks = ranked_brokers(&net, &sel);
        assert_eq!(ranks.len(), 10);
        for (i, r) in ranks.iter().enumerate() {
            assert_eq!(r.rank, i + 1);
            assert_eq!(r.node, sel.order()[i]);
            assert_eq!(r.name, net.name(r.node));
            assert_eq!(r.category, r.kind.category_label());
        }
    }

    #[test]
    fn broker_only_high_for_good_selection() {
        let net = tiny_net();
        let g = net.graph();
        let sel = max_subgraph_greedy(g, 120);
        let rep = broker_only_connectivity(&net, &sel, 400, 5);
        assert!(rep.sampled_pairs > 0);
        assert!(
            rep.fraction_of_connected > 0.6,
            "broker-only fraction {}",
            rep.fraction_of_connected
        );
    }

    #[test]
    fn broker_only_zero_for_empty_selection() {
        let net = tiny_net();
        let sel = BrokerSelection::new("none", net.graph().node_count(), vec![]);
        let rep = broker_only_connectivity(&net, &sel, 100, 1);
        assert_eq!(rep.sampled_pairs, 0);
        assert_eq!(rep.fraction_of_connected, 0.0);
    }

    #[test]
    fn shares_component_merge_logic() {
        assert!(shares_component(&[1, 3, 5], &[2, 3]));
        assert!(!shares_component(&[1, 3], &[2, 4]));
        assert!(!shares_component(&[], &[1]));
    }
}
