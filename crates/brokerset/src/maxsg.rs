//! Algorithm 3: MaxSubGraph-Greedy (MaxSG).
//!
//! Each iteration adds the vertex that maximizes the size of the largest
//! connected subgraph reachable through dominated edges — i.e. the giant
//! component of `(V, E_B)` with `E_B = {(u, v) : u ∈ B ∨ v ∈ B}`. The
//! selection stops at the budget `k` or as soon as `V − (B ∪ N(B)) = ∅`
//! (everything dominated), whichever comes first.
//!
//! Implementation: a union-find over the dominated edge graph. Adding `w`
//! to `B` activates exactly the edges incident to `w`, so the candidate
//! score — the size of the merged component around `w` — is the sum of
//! the distinct component sizes among `{w} ∪ N(w)`, computable in
//! `O(deg(w))`. A full scan per iteration costs `O(|V| + |E|)`, so the
//! whole run is the paper's `O(k(|V| + |E|))`.

use crate::coverage::CoverageState;
use crate::problem::BrokerSelection;
use netgraph::{Graph, NodeId, UnionFind};

/// Run MaxSubGraph-Greedy with budget `k`.
///
/// The growing dominated subgraph stays connected (each pick merges into
/// the current giant once one exists), matching the paper's observation
/// that the MaxSG broker set "totally dominates the maximum connected
/// subgraph".
pub fn max_subgraph_greedy(g: &Graph, k: usize) -> BrokerSelection {
    let n = g.node_count();
    let mut uf = UnionFind::new(n);
    let mut cov = CoverageState::new(g);
    let mut order: Vec<NodeId> = Vec::with_capacity(k.min(n));
    // Scratch: per-candidate stamps marking component roots already
    // counted. A Vec scan here would cost O(deg(w)^2) on power-law hubs
    // (thousands of distinct roots early on); the stamp array keeps the
    // documented O(deg(w)) per candidate.
    let mut root_stamp: Vec<u64> = vec![0; n];
    let mut stamp: u64 = 0;

    while order.len() < k && cov.covered_count() < n {
        let mut best: Option<(usize, NodeId)> = None;
        for w in g.nodes() {
            if cov.brokers().contains(w) {
                continue;
            }
            // Merged-component size if w became a broker: distinct
            // components among {w} ∪ N(w).
            stamp += 1;
            let mut score = 0usize;
            let rw = uf.find(w.index());
            root_stamp[rw] = stamp;
            score += uf.component_size(w.index());
            for &v in g.neighbors(w) {
                let rv = uf.find(v.index());
                if root_stamp[rv] != stamp {
                    root_stamp[rv] = stamp;
                    score += uf.component_size(v.index());
                }
            }
            let better = match best {
                None => true,
                Some((bs, bv)) => score > bs || (score == bs && w < bv),
            };
            if better {
                best = Some((score, w));
            }
        }
        let Some((_, w)) = best else { break };
        // Commit: activate w's incident edges.
        for &v in g.neighbors(w) {
            uf.union(w.index(), v.index());
        }
        cov.add(g, w);
        order.push(w);
    }
    BrokerSelection::new("maxsg", n, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{dominated_components, saturated_connectivity};
    use crate::coverage::dominated_set;
    use netgraph::graph::from_edges;
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn star_hub_first() {
        let g = from_edges(6, (1..6).map(|i| (NodeId(0), NodeId(i))));
        let sel = max_subgraph_greedy(&g, 3);
        assert_eq!(sel.order(), &[NodeId(0)]); // hub dominates all, stop
    }

    #[test]
    fn path_dominating_selection() {
        // 0-1-2-3-4: picking 1 then 3 dominates everything.
        let g = from_edges(5, (0..4).map(|i| (NodeId(i), NodeId(i + 1))));
        let sel = max_subgraph_greedy(&g, 5);
        let covered = dominated_set(&g, sel.brokers());
        assert_eq!(covered.len(), 5);
        assert!(sel.len() <= 3);
        // The dominated graph must be fully connected.
        let comps = dominated_components(&g, sel.brokers());
        assert_eq!(comps.giant().unwrap().1, 5);
    }

    #[test]
    fn budget_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = netgraph::erdos_renyi_gnm(100, 150, &mut rng);
        let sel = max_subgraph_greedy(&g, 7);
        assert!(sel.len() <= 7);
    }

    #[test]
    fn stops_when_everything_dominated() {
        let g = from_edges(
            4,
            [(0, 1), (0, 2), (0, 3)].map(|(a, b)| (NodeId(a), NodeId(b))),
        );
        let sel = max_subgraph_greedy(&g, 4);
        assert_eq!(sel.len(), 1);
    }

    #[test]
    fn empty_and_trivial_graphs() {
        assert!(max_subgraph_greedy(&from_edges(0, std::iter::empty()), 3).is_empty());
        let sel = max_subgraph_greedy(&from_edges(1, std::iter::empty()), 3);
        assert_eq!(sel.len(), 1); // the lone vertex covers itself
    }

    #[test]
    fn connectivity_close_to_greedy_mcb() {
        // The paper reports MaxSG within 0.5% of the approximation
        // algorithm; on random scale-free graphs the two should at least
        // be in the same ballpark.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = netgraph::barabasi_albert(300, 3, &mut rng);
        let k = 20;
        let maxsg = saturated_connectivity(&g, max_subgraph_greedy(&g, k).brokers());
        let greedy = saturated_connectivity(&g, crate::greedy_mcb(&g, k).brokers());
        assert!(
            maxsg.fraction > greedy.fraction - 0.10,
            "maxsg {} vs greedy {}",
            maxsg.fraction,
            greedy.fraction
        );
    }

    proptest! {
        /// The dominated subgraph grows into a single giant component:
        /// after every prefix of the selection, the dominated edges form
        /// exactly one nontrivial component (on connected input graphs).
        #[test]
        fn dominated_subgraph_connected(seed in 0u64..60) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::barabasi_albert(60, 2, &mut rng);
            let sel = max_subgraph_greedy(&g, 10);
            for k in 1..=sel.len() {
                let prefix = sel.truncated(k);
                let comps = dominated_components(&g, prefix.brokers());
                let nontrivial = comps.sizes.iter().filter(|&&s| s > 1).count();
                prop_assert!(nontrivial <= 1, "k={k}: {nontrivial} nontrivial components");
            }
        }

        /// MaxSG never exceeds its budget and never duplicates.
        #[test]
        fn budget_and_uniqueness(seed in 0u64..60, k in 1usize..15) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = netgraph::erdos_renyi_gnm(50, 90, &mut rng);
            let sel = max_subgraph_greedy(&g, k);
            prop_assert!(sel.len() <= k);
            // BrokerSelection::new would have panicked on duplicates.
        }
    }
}
