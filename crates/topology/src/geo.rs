//! Geographic region model.
//!
//! The paper's broker set spans the globe (Table 5: Palo Alto, Frankfurt,
//! London, Chicago …); latency between regions is dominated by geography,
//! and alliances must cover every region to serve regional eyeballs.
//! This module assigns a region to every vertex — propagated down the
//! provider hierarchy so customer cones stay geographically coherent,
//! with IXPs placed by member plurality — and provides the per-region
//! histograms used by placement analyses.

use crate::taxonomy::{NodeKind, Relationship};
use crate::Internet;
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse world regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Asia.
    Asia,
    /// Africa.
    Africa,
    /// Oceania.
    Oceania,
}

impl Region {
    /// All regions, declaration order.
    pub fn all() -> [Region; 6] {
        [
            Region::NorthAmerica,
            Region::SouthAmerica,
            Region::Europe,
            Region::Asia,
            Region::Africa,
            Region::Oceania,
        ]
    }

    /// Index in [`Region::all`].
    pub fn index(self) -> usize {
        // Every variant is listed in all(); the fallback keeps it total.
        Region::all().iter().position(|&r| r == self).unwrap_or(0)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Region::NorthAmerica => "NA",
            Region::SouthAmerica => "SA",
            Region::Europe => "EU",
            Region::Asia => "AS",
            Region::Africa => "AF",
            Region::Oceania => "OC",
        };
        f.write_str(s)
    }
}

/// Per-vertex region assignment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeoModel {
    regions: Vec<Region>,
}

impl GeoModel {
    /// Region of vertex `v`.
    pub fn region(&self, v: NodeId) -> Region {
        self.regions[v.index()]
    }

    /// All assignments, indexed by vertex id.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Histogram over [`Region::all`] for an arbitrary vertex iterator.
    pub fn histogram<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> [usize; 6] {
        let mut h = [0usize; 6];
        for v in nodes {
            h[self.region(v).index()] += 1;
        }
        h
    }

    /// Assign regions to a topology.
    ///
    /// Tier-1s are spread round-robin (weighted toward NA/EU/Asia, like
    /// the real backbone market); every other AS inherits the region of
    /// its first provider with probability `coherence`, otherwise draws
    /// a weighted-random region; IXPs take the plurality region of their
    /// members.
    pub fn assign(net: &Internet, coherence: f64, seed: u64) -> GeoModel {
        assert!(
            (0.0..=1.0).contains(&coherence),
            "coherence must be in [0, 1], got {coherence}"
        );
        let g = net.graph();
        let n = g.node_count();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Region market shares, roughly by AS census.
        let weighted: [(Region, f64); 6] = [
            (Region::NorthAmerica, 0.30),
            (Region::Europe, 0.28),
            (Region::Asia, 0.22),
            (Region::SouthAmerica, 0.10),
            (Region::Africa, 0.05),
            (Region::Oceania, 0.05),
        ];
        let draw = |rng: &mut ChaCha8Rng| -> Region {
            let x: f64 = rng.gen_range(0.0..1.0);
            let mut acc = 0.0;
            for &(r, w) in &weighted {
                acc += w;
                if x < acc {
                    return r;
                }
            }
            Region::Oceania
        };

        let mut regions = vec![None::<Region>; n];
        // Tier-1s: deterministic round-robin over the big three + EU
        // twice to mimic backbone concentration.
        let t1_cycle = [
            Region::NorthAmerica,
            Region::Europe,
            Region::Asia,
            Region::NorthAmerica,
            Region::Europe,
        ];
        for (i, v) in net.tier1s().into_iter().enumerate() {
            regions[v.index()] = Some(t1_cycle[i % t1_cycle.len()]);
        }
        // Providers first (ids ascend the hierarchy by construction of
        // the generator; for hand-built topologies the fallback draw
        // covers orphans).
        let provider_of = |v: NodeId| -> Option<NodeId> {
            g.neighbors(v)
                .iter()
                .copied()
                .find(|&u| net.relationship(v, u) == Some(Relationship::CustomerOfB))
        };
        for v in g.nodes() {
            if regions[v.index()].is_some() || net.kind(v) == NodeKind::Ixp {
                continue;
            }
            let inherited = provider_of(v)
                .and_then(|p| regions[p.index()])
                .filter(|_| rng.gen_range(0.0..1.0) < coherence);
            regions[v.index()] = Some(inherited.unwrap_or_else(|| draw(&mut rng)));
        }
        // IXPs: plurality of member regions.
        for v in g.nodes() {
            if net.kind(v) != NodeKind::Ixp {
                continue;
            }
            let mut counts = [0usize; 6];
            for &m in g.neighbors(v) {
                if let Some(r) = regions[m.index()] {
                    counts[r.index()] += 1;
                }
            }
            let best = counts
                .iter()
                .enumerate()
                .max_by_key(|&(_, c)| *c)
                .map(|(i, _)| Region::all()[i])
                .unwrap_or(Region::NorthAmerica);
            regions[v.index()] = Some(best);
        }
        // Any remaining orphans (isolated vertices).
        let mut shuffled_regions: Vec<Region> = Region::all().to_vec();
        shuffled_regions.shuffle(&mut rng);
        let regions = regions
            .into_iter()
            .map(|r| r.unwrap_or(shuffled_regions[0]))
            .collect();
        GeoModel { regions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetConfig, Scale};

    fn model() -> (Internet, GeoModel) {
        let net = InternetConfig::scaled(Scale::Tiny).generate(23);
        let geo = GeoModel::assign(&net, 0.85, 7);
        (net, geo)
    }

    #[test]
    fn every_vertex_assigned() {
        let (net, geo) = model();
        assert_eq!(geo.regions().len(), net.graph().node_count());
        let hist = geo.histogram(net.graph().nodes());
        assert_eq!(hist.iter().sum::<usize>(), net.graph().node_count());
        // Major regions populated.
        assert!(hist[Region::NorthAmerica.index()] > 0);
        assert!(hist[Region::Europe.index()] > 0);
        assert!(hist[Region::Asia.index()] > 0);
    }

    #[test]
    fn customer_cones_geographically_coherent() {
        // With high coherence most customer->provider edges connect
        // same-region endpoints.
        let (net, geo) = model();
        let g = net.graph();
        let mut same = 0usize;
        let mut total = 0usize;
        for &(a, b, rel) in net.relationships() {
            if rel == Relationship::CustomerOfB || rel == Relationship::ProviderOfB {
                total += 1;
                if geo.region(a) == geo.region(b) {
                    same += 1;
                }
            }
        }
        let _ = g;
        let frac = same as f64 / total as f64;
        assert!(frac > 0.6, "hierarchy same-region fraction {frac}");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(23);
        let a = GeoModel::assign(&net, 0.85, 7);
        let b = GeoModel::assign(&net, 0.85, 7);
        assert_eq!(a, b);
        let c = GeoModel::assign(&net, 0.85, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ixps_follow_member_plurality() {
        let (net, geo) = model();
        let g = net.graph();
        let mut checked = 0;
        for v in g.nodes() {
            if net.kind(v) != NodeKind::Ixp || g.degree(v) < 10 {
                continue;
            }
            let hist = geo.histogram(g.neighbors(v).iter().copied());
            let max = hist.iter().max().copied().unwrap();
            assert_eq!(
                hist[geo.region(v).index()],
                max,
                "IXP {v} not in its plurality region"
            );
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    #[should_panic(expected = "coherence")]
    fn bad_coherence_rejected() {
        let net = InternetConfig::scaled(Scale::Tiny).generate(23);
        GeoModel::assign(&net, 1.5, 7);
    }

    #[test]
    fn region_display_and_index() {
        assert_eq!(Region::Europe.to_string(), "EU");
        for (i, r) in Region::all().into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
