//! # topology — AS-level Internet topology model
//!
//! The paper's evaluation runs on a 2014 snapshot of the AS-level Internet:
//! 51,757 ASes plus 322 IXPs treated as independent vertices, ~347 k
//! direct AS–AS connections and ~55 k AS–IXP memberships. That dataset is
//! not publicly redistributable, so this crate provides:
//!
//! - a taxonomy of node kinds and business relationships
//!   ([`NodeKind`], [`Relationship`]),
//! - the [`Internet`] container pairing a [`netgraph::Graph`] with that
//!   metadata,
//! - a deterministic, seedable synthetic generator
//!   ([`InternetConfig::generate`]) calibrated to the dataset's *published
//!   aggregate statistics* (Table 2 of the paper, tier structure,
//!   heavy-tailed degrees, IXP membership distribution, the (0.99, 4)
//!   small-world property),
//! - dataset statistics mirroring Table 2 ([`stats::TopologyStats`]), and
//! - snapshot save/load so experiments can pin an exact topology.
//!
//! ```
//! use topology::{InternetConfig, Scale};
//!
//! // A small but structurally faithful Internet (fast enough for tests).
//! let net = InternetConfig::scaled(Scale::Tiny).generate(42);
//! let stats = net.stats();
//! assert!(stats.giant_component_fraction() > 0.95);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod builder;
pub mod evolve;
pub mod geo;
pub mod internet;
pub mod outage;
pub mod snapshot;
pub mod stats;
pub mod taxonomy;
pub mod validate;

pub use evolve::{
    evolve, historical_snapshot, materialize, selection_jaccard, DeltaOp, DeltaStream,
    GrowthConfig, TopoDelta,
};
pub use geo::{GeoModel, Region};
pub use internet::{Internet, InternetConfig, Scale};
pub use outage::{ixp_outage_group, largest_ixp, region_outage_group};
pub use snapshot::{load_snapshot, save_snapshot};
pub use stats::TopologyStats;
pub use taxonomy::{NodeKind, Relationship, Tier};
pub use validate::{AuditReport, Validate};
