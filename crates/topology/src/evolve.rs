//! Topology evolution: historical snapshots of a grown Internet.
//!
//! The broker set is a long-lived institution, but the Internet grows by
//! tens of ASes a day. How stable is a selected alliance as the edge
//! expands? [`historical_snapshot`] derives an "earlier" Internet from a
//! generated one by removing the most recently attached stubs — under
//! preferential attachment the stub tail is exactly where growth happens
//! — so a selection made "last year" can be re-evaluated against
//! "today's" topology.

use crate::taxonomy::NodeKind;
use crate::{Internet, InternetConfig};
use netgraph::{NodeId, NodeSet};

/// Derive the historical snapshot of `net` containing all providers and
/// IXPs but only the first `stub_fraction` of its stub ASes.
///
/// Returns the smaller topology plus the mapping from its vertex ids to
/// `net`'s ids (needed to compare selections across snapshots).
///
/// # Panics
///
/// Panics unless `0 < stub_fraction <= 1`, or if `net`'s vertex layout
/// does not match `cfg` (the snapshot relies on the generator's
/// providers-stubs-IXPs id ordering).
pub fn historical_snapshot(
    net: &Internet,
    cfg: &InternetConfig,
    stub_fraction: f64,
) -> (Internet, Vec<NodeId>) {
    assert!(
        stub_fraction > 0.0 && stub_fraction <= 1.0,
        "stub_fraction must be in (0, 1], got {stub_fraction}"
    );
    let g = net.graph();
    assert_eq!(
        g.node_count(),
        cfg.node_count(),
        "topology does not match the config"
    );
    let n_providers = cfg.n_tier1 + cfg.n_transit;
    let keep_stubs = ((cfg.n_stub as f64 * stub_fraction).round() as usize).max(1);

    let mut keep = NodeSet::new(g.node_count());
    for v in g.nodes() {
        let idx = v.index();
        let is_provider = idx < n_providers;
        let is_kept_stub = idx >= n_providers && idx < n_providers + keep_stubs;
        let is_ixp = net.kind(v) == NodeKind::Ixp;
        if is_provider || is_kept_stub || is_ixp {
            keep.insert(v);
        }
    }

    let (sub, map) = g.induced_subgraph(&keep);
    // Remap metadata and relationships.
    let mut new_of_old = vec![u32::MAX; g.node_count()];
    for (new, &old) in map.iter().enumerate() {
        new_of_old[old.index()] = new as u32;
    }
    let kinds = map.iter().map(|&v| net.kind(v)).collect();
    let names = map.iter().map(|&v| net.name(v).to_string()).collect();
    let rels = net
        .relationships()
        .iter()
        .filter(|&&(a, b, _)| keep.contains(a) && keep.contains(b))
        .map(|&(a, b, rel)| {
            (
                NodeId(new_of_old[a.index()]),
                NodeId(new_of_old[b.index()]),
                rel,
            )
        })
        .collect();
    (Internet::from_parts(sub, kinds, names, rels), map)
}

/// Jaccard similarity of two broker sets expressed in a *common* id
/// space (use the snapshot map to translate).
pub fn selection_jaccard(a: &NodeSet, b: &NodeSet) -> f64 {
    let union = a.union_len(b);
    if union == 0 {
        return 1.0;
    }
    let inter = a.len() + b.len() - union;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetConfig, Scale};

    fn setup() -> (Internet, InternetConfig) {
        let cfg = InternetConfig::scaled(Scale::Tiny);
        (cfg.generate(77), cfg)
    }

    #[test]
    fn snapshot_keeps_providers_and_ixps() {
        let (net, cfg) = setup();
        let (old, map) = historical_snapshot(&net, &cfg, 0.5);
        // All providers and IXPs survive; about half the stubs.
        let kinds = old.kinds();
        let providers = kinds
            .iter()
            .filter(|k| matches!(k, NodeKind::Tier1 | NodeKind::Transit))
            .count();
        assert_eq!(providers, cfg.n_tier1 + cfg.n_transit);
        assert_eq!(old.ixp_count(), cfg.n_ixp);
        let stubs = old.as_count() - providers;
        assert!(
            (stubs as f64 - cfg.n_stub as f64 * 0.5).abs() < 2.0,
            "stub count {stubs}"
        );
        // Map is consistent.
        for (new, &oldid) in map.iter().enumerate() {
            assert_eq!(old.kind(NodeId(new as u32)), net.kind(oldid));
            assert_eq!(old.name(NodeId(new as u32)), net.name(oldid));
        }
    }

    #[test]
    fn snapshot_relationships_consistent() {
        let (net, cfg) = setup();
        let (old, map) = historical_snapshot(&net, &cfg, 0.6);
        assert_eq!(old.relationships().len(), old.graph().edge_count());
        // Spot-check relationship preservation through the map.
        for &(a, b, rel) in old.relationships().iter().take(200) {
            let (oa, ob) = (map[a.index()], map[b.index()]);
            assert_eq!(net.relationship(oa, ob), Some(rel));
        }
    }

    #[test]
    fn full_fraction_is_identity() {
        let (net, cfg) = setup();
        let (old, _) = historical_snapshot(&net, &cfg, 1.0);
        assert_eq!(old.graph().node_count(), net.graph().node_count());
        assert_eq!(old.graph().edge_count(), net.graph().edge_count());
    }

    #[test]
    fn selection_stable_across_growth() {
        // Brokers selected on the historical snapshot should overlap
        // heavily with brokers selected on the grown topology: the core
        // doesn't churn.
        let (net, cfg) = setup();
        let (old, map) = historical_snapshot(&net, &cfg, 0.7);
        let k = 40;
        let now = brokerset::max_subgraph_greedy(net.graph(), k);
        let then = brokerset::max_subgraph_greedy(old.graph(), k);
        // Translate the old selection into current ids.
        let then_now = NodeSet::from_iter_with_capacity(
            net.graph().node_count(),
            then.order().iter().map(|&v| map[v.index()]),
        );
        let j = selection_jaccard(now.brokers(), &then_now);
        assert!(j > 0.5, "alliance churn too high: jaccard {j}");
    }

    #[test]
    fn jaccard_edges() {
        let a = NodeSet::from_iter_with_capacity(10, [NodeId(1), NodeId(2)]);
        let b = NodeSet::from_iter_with_capacity(10, [NodeId(2), NodeId(3)]);
        assert!((selection_jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(selection_jaccard(&a, &a), 1.0);
        let empty = NodeSet::new(10);
        assert_eq!(selection_jaccard(&empty, &empty), 1.0);
    }

    #[test]
    #[should_panic(expected = "stub_fraction")]
    fn zero_fraction_rejected() {
        let (net, cfg) = setup();
        historical_snapshot(&net, &cfg, 0.0);
    }
}
